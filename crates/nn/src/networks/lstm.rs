//! The LSTM acoustic model (Sak et al., 2014 style) the paper evaluates
//! on TIMIT: one 1024-unit LSTM layer over 39-dimensional MFCC frames,
//! followed by a 61-phoneme softmax classifier. Table II reports 4.3M
//! parameters and 4.35M multiplies (per timestep); Table III runs a
//! sequence length of 300.

use crate::layers::{Act, LayerOp, LayerSpec, Network};
use crate::tensor::TensorShape;

/// Sequence length used in the paper's Table III runtime comparison.
pub const LSTM_TIMIT_SEQ_LEN: usize = 300;

/// MFCC feature width of the TIMIT front end.
const INPUT_FEATURES: usize = 39;

/// Hidden width of the evaluated LSTM.
const HIDDEN: usize = 1024;

/// TIMIT phoneme classes.
const CLASSES: usize = 61;

/// Builds a GRU variant of the TIMIT acoustic model (§IV-B1 names GRUs
/// as the other widely used RNN; the paper evaluates the heavier LSTM,
/// this network supports the extension experiments).
pub fn gru_timit() -> Network {
    let layers = vec![
        LayerSpec::new(
            "gru",
            LayerOp::Gru { hidden: HIDDEN },
            TensorShape::new(vec![LSTM_TIMIT_SEQ_LEN, INPUT_FEATURES]),
        )
        .expect("static GRU table is valid"),
        LayerSpec::new(
            "classifier",
            LayerOp::Linear {
                out_features: CLASSES,
            },
            TensorShape::new(vec![LSTM_TIMIT_SEQ_LEN, HIDDEN]),
        )
        .expect("static GRU table is valid"),
        LayerSpec::new(
            "softmax",
            LayerOp::Activation(Act::Softmax),
            TensorShape::new(vec![LSTM_TIMIT_SEQ_LEN, CLASSES]),
        )
        .expect("static GRU table is valid"),
    ];
    Network::new("GRU", layers)
}

/// Builds the LSTM-1024 TIMIT network over a 300-step sequence.
pub fn lstm_timit() -> Network {
    let layers = vec![
        LayerSpec::new(
            "lstm",
            LayerOp::Lstm { hidden: HIDDEN },
            TensorShape::new(vec![LSTM_TIMIT_SEQ_LEN, INPUT_FEATURES]),
        )
        .expect("static LSTM table is valid"),
        LayerSpec::new(
            "classifier",
            LayerOp::Linear {
                out_features: CLASSES,
            },
            TensorShape::new(vec![LSTM_TIMIT_SEQ_LEN, HIDDEN]),
        )
        .expect("static LSTM table is valid"),
        LayerSpec::new(
            "softmax",
            LayerOp::Activation(Act::Softmax),
            TensorShape::new(vec![LSTM_TIMIT_SEQ_LEN, CLASSES]),
        )
        .expect("static LSTM table is valid"),
    ];
    Network::new("LSTM", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_table2() {
        // 4 * (1024 * (39 + 1024) + 1024) = 4.36M for the LSTM itself.
        let net = lstm_timit();
        let lstm_params = net.layers()[0].params() as f64;
        assert!(
            (lstm_params / 4.3e6 - 1.0).abs() < 0.02,
            "got {lstm_params:.4e}"
        );
    }

    #[test]
    fn per_step_mults_match_table2() {
        // Table II's 4.35M mults is per timestep: total / seq.
        let net = lstm_timit();
        let per_step = net.layers()[0].macs() as f64 / LSTM_TIMIT_SEQ_LEN as f64;
        assert!((per_step / 4.35e6 - 1.0).abs() < 0.02, "got {per_step:.4e}");
    }

    #[test]
    fn one_recurrent_weight_layer_plus_classifier() {
        let net = lstm_timit();
        assert_eq!(net.weight_layer_count(), 2);
        assert!(matches!(
            net.layers()[0].op(),
            LayerOp::Lstm { hidden: 1024 }
        ));
    }

    #[test]
    fn gru_is_three_quarters_of_lstm() {
        // Three gates instead of four: params and MACs scale by 3/4.
        let lstm = lstm_timit();
        let gru = gru_timit();
        let ratio = gru.layers()[0].params() as f64 / lstm.layers()[0].params() as f64;
        assert!((ratio - 0.75).abs() < 1e-6, "param ratio {ratio}");
        let mac_ratio = gru.layers()[0].macs() as f64 / lstm.layers()[0].macs() as f64;
        assert!((mac_ratio - 0.75).abs() < 1e-6, "mac ratio {mac_ratio}");
    }

    #[test]
    fn whole_model_fits_a_35mb_cache_at_int8() {
        // §V-D: "the whole LSTM model fits within the SRAM cache".
        let net = lstm_timit();
        assert!(net.weight_bytes(8) < 35 * 1024 * 1024);
    }
}
