//! ResNet-18 (He et al., 2016) over 3 x 224 x 224 input — an extension
//! network beyond the paper's Table II, exercising the residual-add
//! path of the LUT datapath (the BCE's element-wise adder) and the
//! mixed stride/shortcut mapping. 11.7M parameters, 1.8G multiplies.

use crate::layers::{Act, LayerOp, LayerSpec, Network, PoolKind};
use crate::tensor::TensorShape;

struct Builder {
    layers: Vec<LayerSpec>,
}

impl Builder {
    #[allow(clippy::too_many_arguments)]
    fn conv(
        &mut self,
        name: String,
        input: (usize, usize, usize),
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        relu: bool,
    ) -> (usize, usize, usize) {
        let spec = LayerSpec::new(
            name.clone(),
            LayerOp::Conv2d {
                out_channels: out_c,
                kernel: (k, k),
                stride: (stride, stride),
                padding: (pad, pad),
            },
            TensorShape::chw(input.0, input.1, input.2),
        )
        .expect("static ResNet-18 table is valid");
        let out = spec.output_shape();
        let dims = (out.dims()[0], out.dims()[1], out.dims()[2]);
        self.layers.push(spec);
        if relu {
            self.layers.push(
                LayerSpec::new(
                    format!("{name}_relu"),
                    LayerOp::Activation(Act::Relu),
                    TensorShape::chw(dims.0, dims.1, dims.2),
                )
                .expect("static ResNet-18 table is valid"),
            );
        }
        dims
    }

    /// A basic block: two 3x3 convs plus the residual add (a 1x1
    /// shortcut conv when the shape changes).
    fn basic_block(
        &mut self,
        name: &str,
        input: (usize, usize, usize),
        out_c: usize,
        stride: usize,
    ) -> (usize, usize, usize) {
        let a = self.conv(format!("{name}_conv1"), input, out_c, 3, stride, 1, true);
        let b = self.conv(format!("{name}_conv2"), a, out_c, 3, 1, 1, false);
        if stride != 1 || input.0 != out_c {
            self.conv(
                format!("{name}_downsample"),
                input,
                out_c,
                1,
                stride,
                0,
                false,
            );
        }
        self.layers.push(
            LayerSpec::new(
                format!("{name}_add"),
                LayerOp::Add,
                TensorShape::chw(b.0, b.1, b.2),
            )
            .expect("static ResNet-18 table is valid"),
        );
        self.layers.push(
            LayerSpec::new(
                format!("{name}_relu"),
                LayerOp::Activation(Act::Relu),
                TensorShape::chw(b.0, b.1, b.2),
            )
            .expect("static ResNet-18 table is valid"),
        );
        b
    }
}

/// Builds ResNet-18.
pub fn resnet18() -> Network {
    let mut b = Builder { layers: Vec::new() };
    let x = b.conv("conv1".into(), (3, 224, 224), 64, 7, 2, 3, true);
    b.layers.push(
        LayerSpec::new(
            "maxpool",
            LayerOp::Pool {
                kind: PoolKind::Max,
                kernel: (3, 3),
                stride: (2, 2),
                padding: (1, 1),
            },
            TensorShape::chw(x.0, x.1, x.2),
        )
        .expect("static ResNet-18 table is valid"),
    );
    let x = (64, 56, 56);

    let x = b.basic_block("layer1_0", x, 64, 1);
    let x = b.basic_block("layer1_1", x, 64, 1);
    let x = b.basic_block("layer2_0", x, 128, 2);
    let x = b.basic_block("layer2_1", x, 128, 1);
    let x = b.basic_block("layer3_0", x, 256, 2);
    let x = b.basic_block("layer3_1", x, 256, 1);
    let x = b.basic_block("layer4_0", x, 512, 2);
    let x = b.basic_block("layer4_1", x, 512, 1);

    b.layers.push(
        LayerSpec::new(
            "avgpool",
            LayerOp::GlobalAvgPool,
            TensorShape::chw(x.0, x.1, x.2),
        )
        .expect("static ResNet-18 table is valid"),
    );
    b.layers.push(
        LayerSpec::new(
            "fc",
            LayerOp::Linear { out_features: 1000 },
            TensorShape::vector(x.0),
        )
        .expect("static ResNet-18 table is valid"),
    );
    b.layers.push(
        LayerSpec::new(
            "softmax",
            LayerOp::Activation(Act::Softmax),
            TensorShape::vector(1000),
        )
        .expect("static ResNet-18 table is valid"),
    );
    Network::new("ResNet-18", b.layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_published_11_7m() {
        let p = resnet18().total_params() as f64;
        assert!((p / 11.69e6 - 1.0).abs() < 0.01, "got {p:.4e}");
    }

    #[test]
    fn macs_match_published_1_8g() {
        let m = resnet18().total_macs() as f64;
        assert!((m / 1.82e9 - 1.0).abs() < 0.02, "got {m:.4e}");
    }

    #[test]
    fn twenty_weight_layers() {
        // 17 main convs + 3 downsample convs + 1 fc = 21.
        assert_eq!(resnet18().weight_layer_count(), 21);
    }

    #[test]
    fn spatial_pyramid_shapes() {
        let net = resnet18();
        let shape_of = |name: &str| {
            net.layers()
                .iter()
                .find(|l| l.name() == name)
                .unwrap()
                .output_shape()
        };
        assert_eq!(shape_of("conv1").dims(), &[64, 112, 112]);
        assert_eq!(shape_of("layer2_0_conv1").dims(), &[128, 28, 28]);
        assert_eq!(shape_of("layer4_1_conv2").dims(), &[512, 7, 7]);
        let fc = net.layers().iter().find(|l| l.name() == "fc").unwrap();
        assert_eq!(fc.input_shape().volume(), 512);
    }

    #[test]
    fn residual_adds_present_in_every_block() {
        let net = resnet18();
        let adds = net
            .layers()
            .iter()
            .filter(|l| matches!(l.op(), LayerOp::Add))
            .count();
        assert_eq!(adds, 8);
    }
}
