//! Inception-v3 (Szegedy et al., 2016) over 3 x 299 x 299 ImageNet
//! input, transcribed module by module (stem, three InceptionA, one
//! reduction, four InceptionB/C, one reduction, two InceptionE, head) —
//! the network the paper uses for the Neural Cache comparison
//! (Fig. 12).
//!
//! Branch layers are flattened into the layer list with their concrete
//! input shapes; concatenation is free data placement and carries no
//! spec. Layer names are prefixed with their module (`Mixed_5b_...`) so
//! experiments can report per-module runtimes as Fig. 12(a) does.

use crate::layers::{Act, LayerOp, LayerSpec, Network, PoolKind};
use crate::tensor::TensorShape;

struct Builder {
    layers: Vec<LayerSpec>,
}

impl Builder {
    fn conv(
        &mut self,
        name: String,
        input: (usize, usize, usize),
        out_c: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> (usize, usize, usize) {
        let spec = LayerSpec::new(
            name.clone(),
            LayerOp::Conv2d {
                out_channels: out_c,
                kernel,
                stride,
                padding,
            },
            TensorShape::chw(input.0, input.1, input.2),
        )
        .expect("static Inception-v3 table is valid");
        let out = spec.output_shape();
        let dims = (out.dims()[0], out.dims()[1], out.dims()[2]);
        self.layers.push(spec);
        self.layers.push(
            LayerSpec::new(
                format!("{name}_relu"),
                LayerOp::Activation(Act::Relu),
                TensorShape::chw(dims.0, dims.1, dims.2),
            )
            .expect("static Inception-v3 table is valid"),
        );
        dims
    }

    fn pool(
        &mut self,
        name: String,
        input: (usize, usize, usize),
        kind: PoolKind,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> (usize, usize, usize) {
        let spec = LayerSpec::new(
            name,
            LayerOp::Pool {
                kind,
                kernel: (kernel, kernel),
                stride: (stride, stride),
                padding: (padding, padding),
            },
            TensorShape::chw(input.0, input.1, input.2),
        )
        .expect("static Inception-v3 table is valid");
        let out = spec.output_shape();
        let dims = (out.dims()[0], out.dims()[1], out.dims()[2]);
        self.layers.push(spec);
        dims
    }

    /// InceptionA (Mixed_5b/5c/5d): 1x1, 5x5, double-3x3 and pool
    /// branches; output 224 + pool_features channels.
    fn inception_a(
        &mut self,
        m: &str,
        input: (usize, usize, usize),
        pool_features: usize,
    ) -> (usize, usize, usize) {
        let (_, h, w) = input;
        self.conv(format!("{m}_1x1"), input, 64, (1, 1), (1, 1), (0, 0));
        let b5 = self.conv(format!("{m}_5x5_1"), input, 48, (1, 1), (1, 1), (0, 0));
        self.conv(format!("{m}_5x5_2"), b5, 64, (5, 5), (1, 1), (2, 2));
        let b3 = self.conv(format!("{m}_3x3dbl_1"), input, 64, (1, 1), (1, 1), (0, 0));
        let b3 = self.conv(format!("{m}_3x3dbl_2"), b3, 96, (3, 3), (1, 1), (1, 1));
        self.conv(format!("{m}_3x3dbl_3"), b3, 96, (3, 3), (1, 1), (1, 1));
        let bp = self.pool(format!("{m}_pool"), input, PoolKind::Avg, 3, 1, 1);
        self.conv(
            format!("{m}_pool_proj"),
            bp,
            pool_features,
            (1, 1),
            (1, 1),
            (0, 0),
        );
        (64 + 64 + 96 + pool_features, h, w)
    }

    /// InceptionB reduction (Mixed_6a): stride-2 3x3, double-3x3 and max
    /// pool branches halving the spatial extent.
    fn inception_b(&mut self, m: &str, input: (usize, usize, usize)) -> (usize, usize, usize) {
        let b3 = self.conv(format!("{m}_3x3"), input, 384, (3, 3), (2, 2), (0, 0));
        let d = self.conv(format!("{m}_3x3dbl_1"), input, 64, (1, 1), (1, 1), (0, 0));
        let d = self.conv(format!("{m}_3x3dbl_2"), d, 96, (3, 3), (1, 1), (1, 1));
        self.conv(format!("{m}_3x3dbl_3"), d, 96, (3, 3), (2, 2), (0, 0));
        self.pool(format!("{m}_pool"), input, PoolKind::Max, 3, 2, 0);
        (384 + 96 + input.0, b3.1, b3.2)
    }

    /// InceptionC (Mixed_6b..6e): factorized 7x7 branches with `c7`
    /// intermediate channels.
    fn inception_c(
        &mut self,
        m: &str,
        input: (usize, usize, usize),
        c7: usize,
    ) -> (usize, usize, usize) {
        let (_, h, w) = input;
        self.conv(format!("{m}_1x1"), input, 192, (1, 1), (1, 1), (0, 0));
        let b = self.conv(format!("{m}_7x7_1"), input, c7, (1, 1), (1, 1), (0, 0));
        let b = self.conv(format!("{m}_7x7_2"), b, c7, (1, 7), (1, 1), (0, 3));
        self.conv(format!("{m}_7x7_3"), b, 192, (7, 1), (1, 1), (3, 0));
        let d = self.conv(format!("{m}_7x7dbl_1"), input, c7, (1, 1), (1, 1), (0, 0));
        let d = self.conv(format!("{m}_7x7dbl_2"), d, c7, (7, 1), (1, 1), (3, 0));
        let d = self.conv(format!("{m}_7x7dbl_3"), d, c7, (1, 7), (1, 1), (0, 3));
        let d = self.conv(format!("{m}_7x7dbl_4"), d, c7, (7, 1), (1, 1), (3, 0));
        self.conv(format!("{m}_7x7dbl_5"), d, 192, (1, 7), (1, 1), (0, 3));
        let bp = self.pool(format!("{m}_pool"), input, PoolKind::Avg, 3, 1, 1);
        self.conv(format!("{m}_pool_proj"), bp, 192, (1, 1), (1, 1), (0, 0));
        (192 * 4, h, w)
    }

    /// InceptionD reduction (Mixed_7a).
    fn inception_d(&mut self, m: &str, input: (usize, usize, usize)) -> (usize, usize, usize) {
        let b = self.conv(format!("{m}_3x3_1"), input, 192, (1, 1), (1, 1), (0, 0));
        let b = self.conv(format!("{m}_3x3_2"), b, 320, (3, 3), (2, 2), (0, 0));
        let d = self.conv(format!("{m}_7x7x3_1"), input, 192, (1, 1), (1, 1), (0, 0));
        let d = self.conv(format!("{m}_7x7x3_2"), d, 192, (1, 7), (1, 1), (0, 3));
        let d = self.conv(format!("{m}_7x7x3_3"), d, 192, (7, 1), (1, 1), (3, 0));
        self.conv(format!("{m}_7x7x3_4"), d, 192, (3, 3), (2, 2), (0, 0));
        self.pool(format!("{m}_pool"), input, PoolKind::Max, 3, 2, 0);
        (320 + 192 + input.0, b.1, b.2)
    }

    /// InceptionE (Mixed_7b/7c): expanded 3x3 branches that split into
    /// parallel 1x3 and 3x1 convolutions.
    fn inception_e(&mut self, m: &str, input: (usize, usize, usize)) -> (usize, usize, usize) {
        let (_, h, w) = input;
        self.conv(format!("{m}_1x1"), input, 320, (1, 1), (1, 1), (0, 0));
        let b = self.conv(format!("{m}_3x3_1"), input, 384, (1, 1), (1, 1), (0, 0));
        self.conv(format!("{m}_3x3_2a"), b, 384, (1, 3), (1, 1), (0, 1));
        self.conv(format!("{m}_3x3_2b"), b, 384, (3, 1), (1, 1), (1, 0));
        let d = self.conv(format!("{m}_3x3dbl_1"), input, 448, (1, 1), (1, 1), (0, 0));
        let d = self.conv(format!("{m}_3x3dbl_2"), d, 384, (3, 3), (1, 1), (1, 1));
        self.conv(format!("{m}_3x3dbl_3a"), d, 384, (1, 3), (1, 1), (0, 1));
        self.conv(format!("{m}_3x3dbl_3b"), d, 384, (3, 1), (1, 1), (1, 0));
        let bp = self.pool(format!("{m}_pool"), input, PoolKind::Avg, 3, 1, 1);
        self.conv(format!("{m}_pool_proj"), bp, 192, (1, 1), (1, 1), (0, 0));
        (320 + 768 + 768 + 192, h, w)
    }
}

/// Builds Inception-v3.
pub fn inception_v3() -> Network {
    let mut b = Builder { layers: Vec::new() };

    // Stem.
    let x = b.conv(
        "Conv2d_1a_3x3".into(),
        (3, 299, 299),
        32,
        (3, 3),
        (2, 2),
        (0, 0),
    );
    let x = b.conv("Conv2d_2a_3x3".into(), x, 32, (3, 3), (1, 1), (0, 0));
    let x = b.conv("Conv2d_2b_3x3".into(), x, 64, (3, 3), (1, 1), (1, 1));
    let x = b.pool("maxpool1".into(), x, PoolKind::Max, 3, 2, 0);
    let x = b.conv("Conv2d_3b_1x1".into(), x, 80, (1, 1), (1, 1), (0, 0));
    let x = b.conv("Conv2d_4a_3x3".into(), x, 192, (3, 3), (1, 1), (0, 0));
    let x = b.pool("maxpool2".into(), x, PoolKind::Max, 3, 2, 0);

    // Inception blocks.
    let x = b.inception_a("Mixed_5b", x, 32);
    let x = b.inception_a("Mixed_5c", x, 64);
    let x = b.inception_a("Mixed_5d", x, 64);
    let x = b.inception_b("Mixed_6a", x);
    let x = b.inception_c("Mixed_6b", x, 128);
    let x = b.inception_c("Mixed_6c", x, 160);
    let x = b.inception_c("Mixed_6d", x, 160);
    let x = b.inception_c("Mixed_6e", x, 192);
    let x = b.inception_d("Mixed_7a", x);
    let x = b.inception_e("Mixed_7b", x);
    let x = b.inception_e("Mixed_7c", x);

    // Head.
    b.layers.push(
        LayerSpec::new(
            "avgpool",
            LayerOp::GlobalAvgPool,
            TensorShape::chw(x.0, x.1, x.2),
        )
        .expect("static Inception-v3 table is valid"),
    );
    b.layers.push(
        LayerSpec::new(
            "fc",
            LayerOp::Linear { out_features: 1000 },
            TensorShape::vector(x.0),
        )
        .expect("static Inception-v3 table is valid"),
    );
    b.layers.push(
        LayerSpec::new(
            "softmax",
            LayerOp::Activation(Act::Softmax),
            TensorShape::vector(1000),
        )
        .expect("static Inception-v3 table is valid"),
    );

    Network::new("Inception-v3", b.layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stem_shapes_match_torchvision() {
        let net = inception_v3();
        let find = |name: &str| {
            net.layers()
                .iter()
                .find(|l| l.name() == name)
                .unwrap()
                .output_shape()
        };
        assert_eq!(find("Conv2d_1a_3x3").dims(), &[32, 149, 149]);
        assert_eq!(find("Conv2d_2a_3x3").dims(), &[32, 147, 147]);
        assert_eq!(find("Conv2d_4a_3x3").dims(), &[192, 71, 71]);
        assert_eq!(find("maxpool2").dims(), &[192, 35, 35]);
    }

    #[test]
    fn module_output_channels() {
        let net = inception_v3();
        // The last conv of each stage must see the concatenated channel
        // counts as input.
        let mixed_5c_first = net
            .layers()
            .iter()
            .find(|l| l.name() == "Mixed_5c_1x1")
            .unwrap();
        assert_eq!(mixed_5c_first.input_shape().dims()[0], 256);
        let mixed_6b_first = net
            .layers()
            .iter()
            .find(|l| l.name() == "Mixed_6b_1x1")
            .unwrap();
        assert_eq!(mixed_6b_first.input_shape().dims(), &[768, 17, 17]);
        let mixed_7b_first = net
            .layers()
            .iter()
            .find(|l| l.name() == "Mixed_7b_1x1")
            .unwrap();
        assert_eq!(mixed_7b_first.input_shape().dims(), &[1280, 8, 8]);
        let fc = net.layers().iter().find(|l| l.name() == "fc").unwrap();
        assert_eq!(fc.input_shape().volume(), 2048);
    }

    #[test]
    fn params_near_published_24m() {
        // Torchvision inception_v3 without the aux head: 23.8M; paper
        // Table II rounds to 24M.
        let p = inception_v3().total_params() as f64;
        assert!((p / 23.8e6 - 1.0).abs() < 0.05, "got {p:.4e}");
    }

    #[test]
    fn macs_in_published_band() {
        // The Inception-v3 paper reports ~5.72G multiply-adds at 299x299;
        // our transcription reproduces that. BFree's Table II quotes
        // 4.7G "mults" (-18%); the deviation is recorded in
        // EXPERIMENTS.md.
        let m = inception_v3().total_macs() as f64;
        assert!((m / 5.72e9 - 1.0).abs() < 0.05, "got {m:.4e}");
    }

    #[test]
    fn has_many_conv_layers() {
        let net = inception_v3();
        // 94 convolutions including all branch convs, plus the fc layer.
        assert!(
            net.weight_layer_count() >= 90,
            "got {}",
            net.weight_layer_count()
        );
    }

    #[test]
    fn per_module_grouping_works() {
        let net = inception_v3();
        let mixed_6b_macs: u64 = net
            .layers()
            .iter()
            .filter(|l| l.name().starts_with("Mixed_6b"))
            .map(|l| l.macs())
            .sum();
        assert!(mixed_6b_macs > 0);
    }
}
