//! The paper's evaluation networks (Table II), transcribed layer by
//! layer from their original papers:
//!
//! | network      | layers | params | mults  | dataset  |
//! |--------------|--------|--------|--------|----------|
//! | Inception-v3 | 48     | 24M    | 4.7G   | ImageNet |
//! | VGG-16       | 16     | 138M   | 15.5G  | ImageNet |
//! | LSTM         | 1      | 4.3M   | 4.35M  | TIMIT    |
//! | BERT-base    | 12     | 87M    | 11.1G  | MRPC     |
//! | BERT-large   | 24     | 324M   | 39.5G  | MRPC     |
//!
//! Our transcriptions recompute those statistics from the layer tables;
//! the `table2` experiment prints paper-vs-computed rows and
//! EXPERIMENTS.md records the deviations (the largest is Inception-v3's
//! multiply count, where the paper's 4.7G sits between the 2.85G MAC and
//! 5.7G FLOP conventions for the 299x299 input).

mod bert;
mod inception;
mod lstm;
mod resnet;
mod vgg;

pub use bert::{bert, bert_base, bert_large, BertConfig};
pub use inception::inception_v3;
pub use lstm::{gru_timit, lstm_timit, LSTM_TIMIT_SEQ_LEN};
pub use resnet::resnet18;
pub use vgg::vgg16;

use crate::layers::Network;
use crate::request::NetworkKind;

/// One row of the canonical workload catalog: the single source of
/// truth binding a [`NetworkKind`] to its layer-graph builder and (for
/// the Table II workloads) the paper-reported statistics. Every
/// consumer that needs "which networks exist and how are they built" —
/// [`table2_networks`], [`NetworkKind::instantiate`], the model
/// artifact writer — goes through this table rather than keeping its
/// own kind→builder mapping.
#[derive(Debug, Clone, Copy)]
pub struct CatalogEntry {
    /// The nameable network.
    pub kind: NetworkKind,
    /// Builds the network's layer graph.
    pub build: fn() -> Network,
    /// The paper's Table II row; `None` for extension workloads.
    pub paper: Option<PaperStats>,
}

/// The canonical workload catalog: the five Table II workloads in the
/// paper's row order, then the extension workloads.
pub const CATALOG: [CatalogEntry; 7] = [
    CatalogEntry {
        kind: NetworkKind::InceptionV3,
        build: inception_v3,
        paper: Some(PaperStats {
            layers: 48,
            params: 24.0e6,
            mults: 4.7e9,
            dataset: "ImageNet",
        }),
    },
    CatalogEntry {
        kind: NetworkKind::Vgg16,
        build: vgg16,
        paper: Some(PaperStats {
            layers: 16,
            params: 138.0e6,
            mults: 15.5e9,
            dataset: "ImageNet",
        }),
    },
    CatalogEntry {
        kind: NetworkKind::LstmTimit,
        build: lstm_timit,
        paper: Some(PaperStats {
            layers: 1,
            params: 4.3e6,
            mults: 4.35e6,
            dataset: "TIMIT",
        }),
    },
    CatalogEntry {
        kind: NetworkKind::BertBase,
        build: bert_base,
        paper: Some(PaperStats {
            layers: 12,
            params: 87.0e6,
            mults: 11.1e9,
            dataset: "MRPC",
        }),
    },
    CatalogEntry {
        kind: NetworkKind::BertLarge,
        build: bert_large,
        paper: Some(PaperStats {
            layers: 24,
            params: 324.0e6,
            mults: 39.5e9,
            dataset: "MRPC",
        }),
    },
    CatalogEntry {
        kind: NetworkKind::GruTimit,
        build: gru_timit,
        paper: None,
    },
    CatalogEntry {
        kind: NetworkKind::ResNet18,
        build: resnet18,
        paper: None,
    },
];

/// The catalog entry for `kind` (every [`NetworkKind`] has one).
pub fn catalog_entry(kind: NetworkKind) -> &'static CatalogEntry {
    CATALOG
        .iter()
        .find(|e| e.kind == kind)
        .expect("every NetworkKind has a catalog entry")
}

/// Builds `kind`'s layer graph via its catalog entry.
pub fn build(kind: NetworkKind) -> Network {
    (catalog_entry(kind).build)()
}

/// All five evaluation networks with their paper-reported statistics,
/// for Table II style reports (catalog rows carrying paper stats, in
/// the paper's order).
pub fn table2_networks() -> Vec<(Network, PaperStats)> {
    CATALOG
        .iter()
        .filter_map(|e| e.paper.map(|p| ((e.build)(), p)))
        .collect()
}

/// The Table II row the paper reports for a network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperStats {
    /// Reported layer count (depth for Inception, weight layers for VGG,
    /// encoder blocks for BERT).
    pub layers: u64,
    /// Reported parameters.
    pub params: f64,
    /// Reported multiplies (per inference; per timestep for the LSTM).
    pub mults: f64,
    /// Evaluation dataset.
    pub dataset: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_networks_construct() {
        let nets = table2_networks();
        assert_eq!(nets.len(), 5);
        for (net, _) in &nets {
            assert!(net.total_macs() > 0, "{} has no work", net.name());
            assert!(net.total_params() > 0, "{} has no params", net.name());
        }
    }

    #[test]
    fn param_counts_close_to_table2() {
        for (net, paper) in table2_networks() {
            let computed = net.total_params() as f64;
            let ratio = computed / paper.params;
            assert!(
                (0.9..=1.1).contains(&ratio),
                "{}: computed {computed:.3e} vs paper {:.3e}",
                net.name(),
                paper.params
            );
        }
    }

    #[test]
    fn catalog_covers_every_kind_exactly_once() {
        assert_eq!(CATALOG.len(), NetworkKind::ALL.len());
        for kind in NetworkKind::ALL {
            let entries = CATALOG.iter().filter(|e| e.kind == kind).count();
            assert_eq!(entries, 1, "{kind} must appear exactly once");
            // The catalog builder and the request-layer wrapper agree.
            assert_eq!(build(kind).name(), kind.instantiate().name());
        }
        // Table II rows are exactly the paper-stat-carrying entries.
        assert_eq!(
            CATALOG.iter().filter(|e| e.paper.is_some()).count(),
            table2_networks().len()
        );
    }

    #[test]
    fn network_names_are_distinct() {
        let mut names: Vec<String> = table2_networks()
            .iter()
            .map(|(n, _)| n.name().to_string())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
