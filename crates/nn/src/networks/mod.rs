//! The paper's evaluation networks (Table II), transcribed layer by
//! layer from their original papers:
//!
//! | network      | layers | params | mults  | dataset  |
//! |--------------|--------|--------|--------|----------|
//! | Inception-v3 | 48     | 24M    | 4.7G   | ImageNet |
//! | VGG-16       | 16     | 138M   | 15.5G  | ImageNet |
//! | LSTM         | 1      | 4.3M   | 4.35M  | TIMIT    |
//! | BERT-base    | 12     | 87M    | 11.1G  | MRPC     |
//! | BERT-large   | 24     | 324M   | 39.5G  | MRPC     |
//!
//! Our transcriptions recompute those statistics from the layer tables;
//! the `table2` experiment prints paper-vs-computed rows and
//! EXPERIMENTS.md records the deviations (the largest is Inception-v3's
//! multiply count, where the paper's 4.7G sits between the 2.85G MAC and
//! 5.7G FLOP conventions for the 299x299 input).

mod bert;
mod inception;
mod lstm;
mod resnet;
mod vgg;

pub use bert::{bert, bert_base, bert_large, BertConfig};
pub use inception::inception_v3;
pub use lstm::{gru_timit, lstm_timit, LSTM_TIMIT_SEQ_LEN};
pub use resnet::resnet18;
pub use vgg::vgg16;

use crate::layers::Network;

/// All five evaluation networks with their paper-reported statistics,
/// for Table II style reports.
pub fn table2_networks() -> Vec<(Network, PaperStats)> {
    vec![
        (
            inception_v3(),
            PaperStats {
                layers: 48,
                params: 24.0e6,
                mults: 4.7e9,
                dataset: "ImageNet",
            },
        ),
        (
            vgg16(),
            PaperStats {
                layers: 16,
                params: 138.0e6,
                mults: 15.5e9,
                dataset: "ImageNet",
            },
        ),
        (
            lstm_timit(),
            PaperStats {
                layers: 1,
                params: 4.3e6,
                mults: 4.35e6,
                dataset: "TIMIT",
            },
        ),
        (
            bert_base(),
            PaperStats {
                layers: 12,
                params: 87.0e6,
                mults: 11.1e9,
                dataset: "MRPC",
            },
        ),
        (
            bert_large(),
            PaperStats {
                layers: 24,
                params: 324.0e6,
                mults: 39.5e9,
                dataset: "MRPC",
            },
        ),
    ]
}

/// The Table II row the paper reports for a network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperStats {
    /// Reported layer count (depth for Inception, weight layers for VGG,
    /// encoder blocks for BERT).
    pub layers: u64,
    /// Reported parameters.
    pub params: f64,
    /// Reported multiplies (per inference; per timestep for the LSTM).
    pub mults: f64,
    /// Evaluation dataset.
    pub dataset: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_networks_construct() {
        let nets = table2_networks();
        assert_eq!(nets.len(), 5);
        for (net, _) in &nets {
            assert!(net.total_macs() > 0, "{} has no work", net.name());
            assert!(net.total_params() > 0, "{} has no params", net.name());
        }
    }

    #[test]
    fn param_counts_close_to_table2() {
        for (net, paper) in table2_networks() {
            let computed = net.total_params() as f64;
            let ratio = computed / paper.params;
            assert!(
                (0.9..=1.1).contains(&ratio),
                "{}: computed {computed:.3e} vs paper {:.3e}",
                net.name(),
                paper.params
            );
        }
    }

    #[test]
    fn network_names_are_distinct() {
        let mut names: Vec<String> = table2_networks()
            .iter()
            .map(|(n, _)| n.name().to_string())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
