//! VGG-16 (Simonyan & Zisserman, 2014) over 3 x 224 x 224 ImageNet
//! input: thirteen 3x3 convolutions in five blocks separated by 2x2 max
//! pooling, then three fully-connected layers. 138M parameters, 15.5G
//! multiplies — the network the paper uses for the Eyeriss and
//! memory-bandwidth experiments (Figs. 13, 14) because its huge filters
//! favor the matmul formulation (§V-D).

use crate::layers::{Act, LayerOp, LayerSpec, Network, PoolKind};
use crate::tensor::TensorShape;

/// Builds VGG-16.
pub fn vgg16() -> Network {
    let mut layers = Vec::new();
    let mut c = 3usize;
    let mut h = 224usize;
    let mut w = 224usize;
    let blocks: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];

    for (block, &(out_c, convs)) in blocks.iter().enumerate() {
        for conv in 0..convs {
            let name = format!("conv{}_{}", block + 1, conv + 1);
            layers.push(
                LayerSpec::new(
                    name.clone(),
                    LayerOp::Conv2d {
                        out_channels: out_c,
                        kernel: (3, 3),
                        stride: (1, 1),
                        padding: (1, 1),
                    },
                    TensorShape::chw(c, h, w),
                )
                .expect("static VGG-16 table is valid"),
            );
            c = out_c;
            layers.push(
                LayerSpec::new(
                    format!("{name}_relu"),
                    LayerOp::Activation(Act::Relu),
                    TensorShape::chw(c, h, w),
                )
                .expect("static VGG-16 table is valid"),
            );
        }
        layers.push(
            LayerSpec::new(
                format!("pool{}", block + 1),
                LayerOp::Pool {
                    kind: PoolKind::Max,
                    kernel: (2, 2),
                    stride: (2, 2),
                    padding: (0, 0),
                },
                TensorShape::chw(c, h, w),
            )
            .expect("static VGG-16 table is valid"),
        );
        h /= 2;
        w /= 2;
    }

    let mut features = c * h * w; // 512 * 7 * 7 = 25088
    for (i, out) in [(1usize, 4096usize), (2, 4096), (3, 1000)] {
        layers.push(
            LayerSpec::new(
                format!("fc{i}"),
                LayerOp::Linear { out_features: out },
                TensorShape::vector(features),
            )
            .expect("static VGG-16 table is valid"),
        );
        features = out;
        if i < 3 {
            layers.push(
                LayerSpec::new(
                    format!("fc{i}_relu"),
                    LayerOp::Activation(Act::Relu),
                    TensorShape::vector(features),
                )
                .expect("static VGG-16 table is valid"),
            );
        }
    }
    layers.push(
        LayerSpec::new(
            "softmax",
            LayerOp::Activation(Act::Softmax),
            TensorShape::vector(1000),
        )
        .expect("static VGG-16 table is valid"),
    );

    Network::new("VGG-16", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_weight_layers() {
        assert_eq!(vgg16().weight_layer_count(), 16);
    }

    #[test]
    fn params_match_published_138m() {
        let p = vgg16().total_params() as f64;
        assert!((p / 138.36e6 - 1.0).abs() < 0.005, "got {p:.4e}");
    }

    #[test]
    fn macs_match_published_15_5g() {
        let m = vgg16().total_macs() as f64;
        assert!((m / 15.47e9 - 1.0).abs() < 0.02, "got {m:.4e}");
    }

    #[test]
    fn fc_layers_dominate_params_conv_dominates_macs() {
        let net = vgg16();
        let fc_params: u64 = net
            .layers()
            .iter()
            .filter(|l| l.name().starts_with("fc"))
            .map(|l| l.params())
            .sum();
        let conv_macs: u64 = net
            .layers()
            .iter()
            .filter(|l| l.name().starts_with("conv"))
            .map(|l| l.macs())
            .sum();
        assert!(fc_params as f64 > 0.85 * net.total_params() as f64);
        assert!(conv_macs as f64 > 0.95 * net.total_macs() as f64);
    }

    #[test]
    fn spatial_shapes_shrink_to_7x7() {
        let net = vgg16();
        let last_conv = net
            .layers()
            .iter()
            .rfind(|l| l.name().starts_with("conv"))
            .unwrap();
        assert_eq!(last_conv.output_shape().dims(), &[512, 14, 14]);
        let fc1 = net.layers().iter().find(|l| l.name() == "fc1").unwrap();
        assert_eq!(fc1.input_shape().volume(), 25088);
    }
}
