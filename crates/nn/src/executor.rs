//! A reference executor for sequential networks: walks a [`Network`]'s
//! layer specs with real tensors, so the same static tables that drive
//! the cost models can also be *run* (on small inputs) and validated
//! against the LUT datapath.
//!
//! Only the sequential subset is supported — convolutions, pooling,
//! activations, linear layers and global pooling. Branching networks
//! (Inception modules, residual blocks) carry explicit per-layer input
//! shapes instead of a single data flow and are rejected.

use std::collections::HashMap;

use crate::error::NnError;
use crate::layers::{Act, LayerOp, Network, PoolKind};
use crate::reference;
use crate::tensor::{Tensor, TensorShape};
use crate::workload::WorkloadGen;

/// Weights for one executable network, keyed by layer name.
#[derive(Debug, Clone, Default)]
pub struct NetworkWeights {
    /// Per conv layer: `(filters (N,C,KH,KW), bias)`.
    pub conv: HashMap<String, (Tensor<f32>, Vec<f32>)>,
    /// Per linear layer: `(weights (out, in), bias)`.
    pub linear: HashMap<String, (Tensor<f32>, Vec<f32>)>,
}

impl NetworkWeights {
    /// Generates random weights for every weight layer of a sequential
    /// network, bounded to `[-amax, amax)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] for unsupported weight layers.
    pub fn random(net: &Network, gen: &mut WorkloadGen, amax: f32) -> Result<Self, NnError> {
        let mut weights = NetworkWeights::default();
        for layer in net.weight_layers() {
            match *layer.op() {
                LayerOp::Conv2d {
                    out_channels,
                    kernel,
                    ..
                } => {
                    let in_c = layer.input_shape().dims()[0];
                    let filters = gen.uniform_f32(
                        TensorShape::new(vec![out_channels, in_c, kernel.0, kernel.1]),
                        -amax,
                        amax,
                    );
                    let bias = gen.vector_f32(out_channels, -amax / 10.0, amax / 10.0);
                    weights
                        .conv
                        .insert(layer.name().to_string(), (filters, bias));
                }
                LayerOp::Linear { out_features } => {
                    let in_f = *layer.input_shape().dims().last().expect("non-empty");
                    let w =
                        gen.uniform_f32(TensorShape::new(vec![out_features, in_f]), -amax, amax);
                    let bias = gen.vector_f32(out_features, -amax / 10.0, amax / 10.0);
                    weights.linear.insert(layer.name().to_string(), (w, bias));
                }
                _ => {
                    return Err(NnError::InvalidLayer {
                        layer: layer.name().to_string(),
                        reason: "executor supports conv and linear weight layers".to_string(),
                    })
                }
            }
        }
        Ok(weights)
    }
}

/// Runs a sequential network on an input, producing the final tensor.
///
/// # Errors
///
/// Returns [`NnError::InvalidLayer`] for unsupported operators (Add,
/// attention, recurrent layers) and [`NnError::ShapeMismatch`] when the
/// data flow disagrees with the layer table.
pub fn run_sequential(
    net: &Network,
    weights: &NetworkWeights,
    input: &Tensor<f32>,
) -> Result<Tensor<f32>, NnError> {
    let mut x = input.clone();
    for layer in net.layers() {
        // Implicit flatten at the feature-map -> vector boundary (the
        // fc layers consume the flattened pooled map).
        if x.shape() != layer.input_shape()
            && x.len() == layer.input_shape().volume()
            && layer.input_shape().rank() == 1
        {
            x.reshape(layer.input_shape().clone())?;
        }
        if x.shape() != layer.input_shape() {
            return Err(NnError::ShapeMismatch {
                context: "sequential execution",
                detail: format!(
                    "layer {} expects {}, data flow carries {}",
                    layer.name(),
                    layer.input_shape(),
                    x.shape()
                ),
            });
        }
        x = match *layer.op() {
            LayerOp::Conv2d {
                stride, padding, ..
            } => {
                let (filters, bias) =
                    weights
                        .conv
                        .get(layer.name())
                        .ok_or_else(|| NnError::InvalidLayer {
                            layer: layer.name().to_string(),
                            reason: "missing conv weights".to_string(),
                        })?;
                reference::conv2d(&x, filters, bias, stride, padding)?
            }
            LayerOp::Linear { .. } => {
                let (w, bias) =
                    weights
                        .linear
                        .get(layer.name())
                        .ok_or_else(|| NnError::InvalidLayer {
                            layer: layer.name().to_string(),
                            reason: "missing linear weights".to_string(),
                        })?;
                let out = reference::linear(x.data(), w, bias)?;
                Tensor::from_vec(TensorShape::vector(out.len()), out)?
            }
            LayerOp::Pool {
                kind,
                kernel,
                stride,
                padding,
            } => {
                if padding != (0, 0) {
                    return Err(NnError::InvalidLayer {
                        layer: layer.name().to_string(),
                        reason: "executor supports unpadded pooling only".to_string(),
                    });
                }
                match kind {
                    PoolKind::Max => reference::max_pool2d(&x, kernel, stride)?,
                    PoolKind::Avg => reference::avg_pool2d(&x, kernel, stride)?,
                }
            }
            LayerOp::GlobalAvgPool => {
                let dims = x.shape().dims();
                let (c, hw) = (dims[0], dims[1] * dims[2]);
                let pooled: Vec<f32> = (0..c)
                    .map(|ch| x.data()[ch * hw..(ch + 1) * hw].iter().sum::<f32>() / hw as f32)
                    .collect();
                Tensor::from_vec(TensorShape::vector(c), pooled)?
            }
            LayerOp::Activation(act) => {
                let data: Vec<f32> = match act {
                    Act::Relu => reference::relu(x.data()),
                    Act::Sigmoid => x.data().iter().map(|&v| reference::sigmoid(v)).collect(),
                    Act::Tanh => x.data().iter().map(|&v| v.tanh()).collect(),
                    Act::Gelu => x.data().iter().map(|&v| reference::gelu(v)).collect(),
                    Act::Softmax => reference::softmax(x.data()),
                };
                Tensor::from_vec(x.shape().clone(), data)?
            }
            _ => {
                return Err(NnError::InvalidLayer {
                    layer: layer.name().to_string(),
                    reason: format!("operator {:?} is not sequential-executable", layer.op()),
                })
            }
        };
        // Linear flattens implicitly: accept a flattened predecessor.
        let expected = layer.output_shape();
        if x.shape() != &expected && x.len() == expected.volume() {
            x.reshape(expected)?;
        }
    }
    Ok(x)
}

/// Builds a small sequential CNN (conv-relu-pool-conv-relu-pool-fc-softmax)
/// used by the executor tests and the end-to-end validation suite.
///
/// # Panics
///
/// Never panics for the fixed, valid layer table.
pub fn tiny_cnn(input_hw: usize, classes: usize) -> Network {
    use crate::layers::LayerSpec;
    let c1 = 4usize;
    let c2 = 8usize;
    let after_pool1 = input_hw / 2;
    let after_pool2 = after_pool1 / 2;
    let layers = vec![
        LayerSpec::new(
            "conv1",
            LayerOp::Conv2d {
                out_channels: c1,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
            },
            TensorShape::chw(1, input_hw, input_hw),
        )
        .expect("valid"),
        LayerSpec::new(
            "relu1",
            LayerOp::Activation(Act::Relu),
            TensorShape::chw(c1, input_hw, input_hw),
        )
        .expect("valid"),
        LayerSpec::new(
            "pool1",
            LayerOp::Pool {
                kind: PoolKind::Max,
                kernel: (2, 2),
                stride: (2, 2),
                padding: (0, 0),
            },
            TensorShape::chw(c1, input_hw, input_hw),
        )
        .expect("valid"),
        LayerSpec::new(
            "conv2",
            LayerOp::Conv2d {
                out_channels: c2,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
            },
            TensorShape::chw(c1, after_pool1, after_pool1),
        )
        .expect("valid"),
        LayerSpec::new(
            "relu2",
            LayerOp::Activation(Act::Relu),
            TensorShape::chw(c2, after_pool1, after_pool1),
        )
        .expect("valid"),
        LayerSpec::new(
            "pool2",
            LayerOp::Pool {
                kind: PoolKind::Avg,
                kernel: (2, 2),
                stride: (2, 2),
                padding: (0, 0),
            },
            TensorShape::chw(c2, after_pool1, after_pool1),
        )
        .expect("valid"),
        LayerSpec::new(
            "fc",
            LayerOp::Linear {
                out_features: classes,
            },
            TensorShape::vector(c2 * after_pool2 * after_pool2),
        )
        .expect("valid"),
        LayerSpec::new(
            "softmax",
            LayerOp::Activation(Act::Softmax),
            TensorShape::vector(classes),
        )
        .expect("valid"),
    ];
    Network::new("tiny-cnn", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cnn_runs_end_to_end() {
        let net = tiny_cnn(8, 5);
        let mut gen = WorkloadGen::new(1);
        let weights = NetworkWeights::random(&net, &mut gen, 0.5).unwrap();
        let input = gen.uniform_f32(TensorShape::chw(1, 8, 8), -1.0, 1.0);
        let out = run_sequential(&net, &weights, &input).unwrap();
        assert_eq!(out.shape().dims(), &[5]);
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "softmax output sums to {sum}");
    }

    #[test]
    fn output_shape_matches_layer_table_at_every_step() {
        let net = tiny_cnn(16, 3);
        let mut gen = WorkloadGen::new(2);
        let weights = NetworkWeights::random(&net, &mut gen, 0.4).unwrap();
        let input = gen.uniform_f32(TensorShape::chw(1, 16, 16), -1.0, 1.0);
        // run_sequential itself asserts shape agreement layer by layer;
        // reaching the end proves the static table is consistent.
        let out = run_sequential(&net, &weights, &input).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let net = tiny_cnn(8, 5);
        let mut gen = WorkloadGen::new(3);
        let weights = NetworkWeights::random(&net, &mut gen, 0.5).unwrap();
        let input = gen.uniform_f32(TensorShape::chw(1, 6, 6), -1.0, 1.0);
        assert!(matches!(
            run_sequential(&net, &weights, &input),
            Err(NnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn branching_networks_rejected() {
        // A residual Add has no single sequential data flow.
        use crate::layers::LayerSpec;
        let net = Network::new(
            "residual",
            vec![LayerSpec::new("add", LayerOp::Add, TensorShape::chw(2, 4, 4)).unwrap()],
        );
        let mut gen = WorkloadGen::new(4);
        let weights = NetworkWeights::random(&net, &mut gen, 0.3).unwrap();
        let input = gen.uniform_f32(TensorShape::chw(2, 4, 4), -1.0, 1.0);
        assert!(matches!(
            run_sequential(&net, &weights, &input),
            Err(NnError::InvalidLayer { .. })
        ));
    }

    #[test]
    fn recurrent_weights_rejected() {
        let net = crate::networks::lstm_timit();
        let mut gen = WorkloadGen::new(5);
        assert!(NetworkWeights::random(&net, &mut gen, 0.3).is_err());
    }
}
