//! Float32 reference implementations of every kernel BFree executes.
//!
//! These are the ground truth the LUT datapath is validated against: a
//! small quantized network run through the BFree functional pipeline
//! must agree with these references within quantization tolerance.

use crate::error::NnError;
use crate::tensor::{Tensor, TensorShape};

/// Direct 2-D convolution: `input` is `(C, H, W)`, `filters` is
/// `(N, C, KH, KW)`, `bias` has `N` entries.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] for incompatible shapes.
pub fn conv2d(
    input: &Tensor<f32>,
    filters: &Tensor<f32>,
    bias: &[f32],
    stride: (usize, usize),
    padding: (usize, usize),
) -> Result<Tensor<f32>, NnError> {
    let idims = input.shape().dims();
    let fdims = filters.shape().dims();
    if idims.len() != 3 || fdims.len() != 4 || idims[0] != fdims[1] || bias.len() != fdims[0] {
        return Err(NnError::ShapeMismatch {
            context: "conv2d",
            detail: format!("input {} filters {}", input.shape(), filters.shape()),
        });
    }
    let (c, h, w) = (idims[0], idims[1], idims[2]);
    let (n, kh, kw) = (fdims[0], fdims[2], fdims[3]);
    let oh = (h + 2 * padding.0 - kh) / stride.0 + 1;
    let ow = (w + 2 * padding.1 - kw) / stride.1 + 1;
    let mut out = Tensor::zeros(TensorShape::chw(n, oh, ow));
    for (f, &bias_f) in bias.iter().enumerate() {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bias_f;
                for ch in 0..c {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let iy = (oy * stride.0 + ky) as isize - padding.0 as isize;
                            let ix = (ox * stride.1 + kx) as isize - padding.1 as isize;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                acc += input.get(&[ch, iy as usize, ix as usize])?
                                    * filters.get(&[f, ch, ky, kx])?;
                            }
                        }
                    }
                }
                out.set(&[f, oy, ox], acc)?;
            }
        }
    }
    Ok(out)
}

/// Fully-connected layer: `input` is `(in)`, `weights` is `(out, in)`.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] for incompatible shapes.
pub fn linear(input: &[f32], weights: &Tensor<f32>, bias: &[f32]) -> Result<Vec<f32>, NnError> {
    let wdims = weights.shape().dims();
    if wdims.len() != 2 || wdims[1] != input.len() || bias.len() != wdims[0] {
        return Err(NnError::ShapeMismatch {
            context: "linear",
            detail: format!("input {} weights {}", input.len(), weights.shape()),
        });
    }
    Ok((0..wdims[0])
        .map(|o| {
            bias[o]
                + input
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| x * weights.data()[o * wdims[1] + i])
                    .sum::<f32>()
        })
        .collect())
}

/// Matrix product `a (m x k) * b (k x n)`.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] for incompatible shapes.
pub fn matmul(a: &Tensor<f32>, b: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
    let (ad, bd) = (a.shape().dims(), b.shape().dims());
    if ad.len() != 2 || bd.len() != 2 || ad[1] != bd[0] {
        return Err(NnError::ShapeMismatch {
            context: "matmul",
            detail: format!("{} x {}", a.shape(), b.shape()),
        });
    }
    let (m, k, n) = (ad[0], ad[1], bd[1]);
    let mut out = Tensor::zeros(TensorShape::new(vec![m, n]));
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a.data()[i * k + l] * b.data()[l * n + j];
            }
            out.data_mut()[i * n + j] = acc;
        }
    }
    Ok(out)
}

/// Spatial max pooling over a `(C, H, W)` input.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] for a non-rank-3 input.
pub fn max_pool2d(
    input: &Tensor<f32>,
    kernel: (usize, usize),
    stride: (usize, usize),
) -> Result<Tensor<f32>, NnError> {
    pool2d(input, kernel, stride, true)
}

/// Spatial average pooling over a `(C, H, W)` input.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] for a non-rank-3 input.
pub fn avg_pool2d(
    input: &Tensor<f32>,
    kernel: (usize, usize),
    stride: (usize, usize),
) -> Result<Tensor<f32>, NnError> {
    pool2d(input, kernel, stride, false)
}

fn pool2d(
    input: &Tensor<f32>,
    kernel: (usize, usize),
    stride: (usize, usize),
    take_max: bool,
) -> Result<Tensor<f32>, NnError> {
    let dims = input.shape().dims();
    if dims.len() != 3 {
        return Err(NnError::ShapeMismatch {
            context: "pool2d",
            detail: format!("expected (C,H,W), got {}", input.shape()),
        });
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let oh = (h - kernel.0) / stride.0 + 1;
    let ow = (w - kernel.1) / stride.1 + 1;
    let mut out = Tensor::zeros(TensorShape::chw(c, oh, ow));
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = if take_max { f32::NEG_INFINITY } else { 0.0 };
                for ky in 0..kernel.0 {
                    for kx in 0..kernel.1 {
                        let v = input.get(&[ch, oy * stride.0 + ky, ox * stride.1 + kx])?;
                        if take_max {
                            acc = acc.max(v);
                        } else {
                            acc += v;
                        }
                    }
                }
                if !take_max {
                    acc /= (kernel.0 * kernel.1) as f32;
                }
                out.set(&[ch, oy, ox], acc)?;
            }
        }
    }
    Ok(out)
}

/// Rectified linear unit.
pub fn relu(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Tanh-approximated GELU, as used by BERT.
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + ((2.0 / std::f32::consts::PI).sqrt() * (x + 0.044715 * x * x * x)).tanh())
}

/// Numerically stable softmax.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = x.iter().map(|&v| (v - max).exp()).collect();
    let denom: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / denom).collect()
}

/// Layer normalization over the last axis with scale `gamma` and shift
/// `beta`.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] when `gamma`/`beta` do not match
/// the last axis.
pub fn layer_norm(
    input: &Tensor<f32>,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> Result<Tensor<f32>, NnError> {
    let width = *input.shape().dims().last().unwrap_or(&0);
    if gamma.len() != width || beta.len() != width {
        return Err(NnError::ShapeMismatch {
            context: "layer_norm",
            detail: format!("gamma/beta {} vs width {width}", gamma.len()),
        });
    }
    let mut out = input.clone();
    for row in out.data_mut().chunks_mut(width) {
        let mean: f32 = row.iter().sum::<f32>() / width as f32;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / width as f32;
        let denom = (var + eps).sqrt();
        for (i, v) in row.iter_mut().enumerate() {
            *v = (*v - mean) / denom * gamma[i] + beta[i];
        }
    }
    Ok(out)
}

/// Weights of one LSTM layer: per gate, input and recurrent matrices plus
/// bias (gate order: input, forget, cell, output).
#[derive(Debug, Clone)]
pub struct LstmWeights {
    /// `(4*hidden, input)` input weights.
    pub w_input: Tensor<f32>,
    /// `(4*hidden, hidden)` recurrent weights.
    pub w_hidden: Tensor<f32>,
    /// `4*hidden` biases.
    pub bias: Vec<f32>,
}

/// One LSTM step: returns `(h_next, c_next)`.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] for incompatible shapes.
pub fn lstm_cell(
    x: &[f32],
    h: &[f32],
    c: &[f32],
    weights: &LstmWeights,
) -> Result<(Vec<f32>, Vec<f32>), NnError> {
    let hidden = h.len();
    let wi = weights.w_input.shape().dims();
    let wh = weights.w_hidden.shape().dims();
    if wi != [4 * hidden, x.len()] || wh != [4 * hidden, hidden] || weights.bias.len() != 4 * hidden
    {
        return Err(NnError::ShapeMismatch {
            context: "lstm_cell",
            detail: format!(
                "x={} h={} w_input={} w_hidden={}",
                x.len(),
                hidden,
                weights.w_input.shape(),
                weights.w_hidden.shape()
            ),
        });
    }
    let gates_x = linear(x, &weights.w_input, &weights.bias)?;
    let zero_bias = vec![0.0; 4 * hidden];
    let gates_h = linear(h, &weights.w_hidden, &zero_bias)?;
    let gates: Vec<f32> = gates_x.iter().zip(&gates_h).map(|(a, b)| a + b).collect();
    let mut h_next = vec![0.0; hidden];
    let mut c_next = vec![0.0; hidden];
    for j in 0..hidden {
        let i_gate = sigmoid(gates[j]);
        let f_gate = sigmoid(gates[hidden + j]);
        let g_gate = gates[2 * hidden + j].tanh();
        let o_gate = sigmoid(gates[3 * hidden + j]);
        c_next[j] = f_gate * c[j] + i_gate * g_gate;
        h_next[j] = o_gate * c_next[j].tanh();
    }
    Ok((h_next, c_next))
}

/// Weights of one GRU layer: per gate, input and recurrent matrices plus
/// bias (gate order: reset, update, candidate).
#[derive(Debug, Clone)]
pub struct GruWeights {
    /// `(3*hidden, input)` input weights.
    pub w_input: Tensor<f32>,
    /// `(3*hidden, hidden)` recurrent weights.
    pub w_hidden: Tensor<f32>,
    /// `3*hidden` biases.
    pub bias: Vec<f32>,
}

/// One GRU step (Cho et al. formulation): returns `h_next`.
///
/// ```text
/// r = sigmoid(Wr x + Ur h + br)
/// z = sigmoid(Wz x + Uz h + bz)
/// n = tanh(Wn x + r * (Un h) + bn)
/// h' = (1 - z) * n + z * h
/// ```
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] for incompatible shapes.
pub fn gru_cell(x: &[f32], h: &[f32], weights: &GruWeights) -> Result<Vec<f32>, NnError> {
    let hidden = h.len();
    let wi = weights.w_input.shape().dims();
    let wh = weights.w_hidden.shape().dims();
    if wi != [3 * hidden, x.len()] || wh != [3 * hidden, hidden] || weights.bias.len() != 3 * hidden
    {
        return Err(NnError::ShapeMismatch {
            context: "gru_cell",
            detail: format!(
                "x={} h={} w_input={} w_hidden={}",
                x.len(),
                hidden,
                weights.w_input.shape(),
                weights.w_hidden.shape()
            ),
        });
    }
    let gates_x = linear(x, &weights.w_input, &weights.bias)?;
    let zero_bias = vec![0.0; 3 * hidden];
    let gates_h = linear(h, &weights.w_hidden, &zero_bias)?;
    let mut h_next = vec![0.0; hidden];
    for j in 0..hidden {
        let r = sigmoid(gates_x[j] + gates_h[j]);
        let z = sigmoid(gates_x[hidden + j] + gates_h[hidden + j]);
        let n = (gates_x[2 * hidden + j] + r * gates_h[2 * hidden + j]).tanh();
        h_next[j] = (1.0 - z) * n + z * h[j];
    }
    Ok(h_next)
}

/// Weights of one self-attention block: QKV and output projections, each
/// `(hidden, hidden)` with a bias.
#[derive(Debug, Clone)]
pub struct AttentionWeights {
    /// Query projection.
    pub w_q: Tensor<f32>,
    /// Key projection.
    pub w_k: Tensor<f32>,
    /// Value projection.
    pub w_v: Tensor<f32>,
    /// Output projection.
    pub w_o: Tensor<f32>,
}

/// Multi-head self-attention over `(seq, hidden)` input (Fig. 10's
/// dataflow: Q/K/V projections, scaled scores P, softmax P', context,
/// output projection).
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] for incompatible shapes.
pub fn self_attention(
    input: &Tensor<f32>,
    weights: &AttentionWeights,
    heads: usize,
) -> Result<Tensor<f32>, NnError> {
    let dims = input.shape().dims();
    if dims.len() != 2 {
        return Err(NnError::ShapeMismatch {
            context: "self_attention",
            detail: format!("expected (seq, hidden), got {}", input.shape()),
        });
    }
    let (seq, hidden) = (dims[0], dims[1]);
    if !hidden.is_multiple_of(heads) {
        return Err(NnError::ShapeMismatch {
            context: "self_attention",
            detail: format!("hidden {hidden} not divisible by {heads} heads"),
        });
    }
    let head_dim = hidden / heads;
    let q = matmul(input, &weights.w_q)?;
    let k = matmul(input, &weights.w_k)?;
    let v = matmul(input, &weights.w_v)?;

    let mut context = Tensor::zeros(TensorShape::new(vec![seq, hidden]));
    let scale = 1.0 / (head_dim as f32).sqrt();
    for head in 0..heads {
        let base = head * head_dim;
        for i in 0..seq {
            // Scores for row i of this head.
            let mut scores = Vec::with_capacity(seq);
            for j in 0..seq {
                let mut dot = 0.0f32;
                for d in 0..head_dim {
                    dot += q.data()[i * hidden + base + d] * k.data()[j * hidden + base + d];
                }
                scores.push(dot * scale);
            }
            let probs = softmax(&scores);
            for d in 0..head_dim {
                let acc: f32 = probs
                    .iter()
                    .enumerate()
                    .map(|(j, &p)| p * v.data()[j * hidden + base + d])
                    .sum();
                context.data_mut()[i * hidden + base + d] = acc;
            }
        }
    }
    matmul(&context, &weights.w_o)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(shape: TensorShape) -> Tensor<f32> {
        let mut i = 0;
        Tensor::from_fn(shape, |_| {
            i += 1;
            ((i * 37) % 11) as f32 / 11.0 - 0.5
        })
    }

    #[test]
    fn conv2d_identity_kernel() {
        let input = seq_tensor(TensorShape::chw(1, 4, 4));
        let mut filters = Tensor::zeros(TensorShape::new(vec![1, 1, 3, 3]));
        filters.set(&[0, 0, 1, 1], 1.0).unwrap(); // center tap
        let out = conv2d(&input, &filters, &[0.0], (1, 1), (1, 1)).unwrap();
        assert_eq!(out.shape().dims(), &[1, 4, 4]);
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv2d_shape_mismatch_rejected() {
        let input = seq_tensor(TensorShape::chw(2, 4, 4));
        let filters = Tensor::zeros(TensorShape::new(vec![1, 3, 3, 3]));
        assert!(conv2d(&input, &filters, &[0.0], (1, 1), (0, 0)).is_err());
    }

    #[test]
    fn linear_matches_hand_computation() {
        let w = Tensor::from_vec(
            TensorShape::new(vec![2, 3]),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap();
        let out = linear(&[1.0, 0.0, -1.0], &w, &[0.5, -0.5]).unwrap();
        assert_eq!(out, vec![1.0 - 3.0 + 0.5, 4.0 - 6.0 - 0.5]);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(TensorShape::new(vec![2, 2]), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(TensorShape::new(vec![2, 2]), vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn pooling_flavors() {
        let input = Tensor::from_vec(TensorShape::chw(1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mx = max_pool2d(&input, (2, 2), (2, 2)).unwrap();
        assert_eq!(mx.data(), &[4.0]);
        let avg = avg_pool2d(&input, (2, 2), (2, 2)).unwrap();
        assert_eq!(avg.data(), &[2.5]);
    }

    #[test]
    fn softmax_properties() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with large logits.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let input = seq_tensor(TensorShape::new(vec![3, 8]));
        let out = layer_norm(&input, &[1.0; 8], &[0.0; 8], 1e-5).unwrap();
        for row in out.data().chunks(8) {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn lstm_cell_gates_behave() {
        let hidden = 4;
        let input = 3;
        // Zero weights: c_next = f*c + i*g with f = i = sigmoid(0) = 0.5,
        // g = tanh(0) = 0 -> c halves each step.
        let weights = LstmWeights {
            w_input: Tensor::zeros(TensorShape::new(vec![4 * hidden, input])),
            w_hidden: Tensor::zeros(TensorShape::new(vec![4 * hidden, hidden])),
            bias: vec![0.0; 4 * hidden],
        };
        let (h, c) = lstm_cell(&[1.0, -1.0, 0.5], &[0.0; 4], &[1.0; 4], &weights).unwrap();
        for j in 0..hidden {
            assert!((c[j] - 0.5).abs() < 1e-6);
            assert!((h[j] - 0.5 * 0.5f32.tanh()).abs() < 1e-6);
        }
    }

    #[test]
    fn gru_cell_zero_weights_decay_state() {
        // Zero weights: r = z = sigmoid(0) = 0.5, n = tanh(0) = 0,
        // so h' = 0.5 * h.
        let hidden = 4;
        let weights = GruWeights {
            w_input: Tensor::zeros(TensorShape::new(vec![3 * hidden, 2])),
            w_hidden: Tensor::zeros(TensorShape::new(vec![3 * hidden, hidden])),
            bias: vec![0.0; 3 * hidden],
        };
        let h = gru_cell(&[1.0, -1.0], &[0.8; 4], &weights).unwrap();
        for &v in &h {
            assert!((v - 0.4).abs() < 1e-6);
        }
    }

    #[test]
    fn gru_cell_update_gate_interpolates() {
        // Huge positive update-gate bias: z ~ 1, so h' ~ h regardless of
        // input.
        let hidden = 3;
        let mut bias = vec![0.0; 3 * hidden];
        for j in 0..hidden {
            bias[hidden + j] = 50.0;
        }
        let weights = GruWeights {
            w_input: Tensor::zeros(TensorShape::new(vec![3 * hidden, 2])),
            w_hidden: Tensor::zeros(TensorShape::new(vec![3 * hidden, hidden])),
            bias,
        };
        let h0 = [0.3, -0.7, 0.1];
        let h = gru_cell(&[5.0, -5.0], &h0, &weights).unwrap();
        for j in 0..hidden {
            assert!((h[j] - h0[j]).abs() < 1e-6);
        }
    }

    #[test]
    fn gru_cell_shape_mismatch_rejected() {
        let weights = GruWeights {
            w_input: Tensor::zeros(TensorShape::new(vec![9, 2])),
            w_hidden: Tensor::zeros(TensorShape::new(vec![9, 3])),
            bias: vec![0.0; 9],
        };
        assert!(gru_cell(&[1.0], &[0.0; 3], &weights).is_err());
        assert!(gru_cell(&[1.0, 2.0], &[0.0; 4], &weights).is_err());
    }

    #[test]
    fn gelu_reference_points() {
        assert!(gelu(0.0).abs() < 1e-6);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-5.0).abs() < 1e-3);
    }

    #[test]
    fn attention_uniform_when_keys_equal() {
        // If all rows are identical, attention output equals the value
        // projection of any row through the output projection.
        let seq = 4;
        let hidden = 8;
        let row: Vec<f32> = (0..hidden).map(|i| (i as f32 / 8.0) - 0.4).collect();
        let input = Tensor::from_fn(TensorShape::new(vec![seq, hidden]), |idx| row[idx[1]]);
        let eye = Tensor::from_fn(TensorShape::new(vec![hidden, hidden]), |idx| {
            if idx[0] == idx[1] {
                1.0
            } else {
                0.0
            }
        });
        let weights = AttentionWeights {
            w_q: eye.clone(),
            w_k: eye.clone(),
            w_v: eye.clone(),
            w_o: eye,
        };
        let out = self_attention(&input, &weights, 2).unwrap();
        for i in 0..seq {
            for (d, &expected) in row.iter().enumerate() {
                assert!((out.data()[i * hidden + d] - expected).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn attention_rejects_bad_heads() {
        let input = Tensor::zeros(TensorShape::new(vec![4, 6]));
        let w = Tensor::zeros(TensorShape::new(vec![6, 6]));
        let weights = AttentionWeights {
            w_q: w.clone(),
            w_k: w.clone(),
            w_v: w.clone(),
            w_o: w,
        };
        assert!(self_attention(&input, &weights, 4).is_err());
    }
}
