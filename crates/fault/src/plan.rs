//! The declarative fault model: *what* can go wrong, and how often.
//!
//! A [`FaultPlan`] names rates, not outcomes. Concrete outcomes (which
//! slice fails when, which request attempt errors) are resolved by the
//! [`crate::FaultInjector`] as pure functions of the plan plus an
//! explicit seed — the plan itself carries no randomness and no clock.
//!
//! The taxonomy follows where a commodity-SRAM PIM cache actually
//! breaks (paper §IV, Fig. 4): the decoupled-bitline LUT rows are extra
//! analog machinery inside every subarray (stuck-at cells corrupt
//! entries at boot), a slice is the failure and power domain of the
//! pool (marginal sense amps or a controller fault take out all 320
//! subarrays at once), process variation makes some slices chronically
//! slow, and charge-sharing compute on live bitlines occasionally just
//! reads wrong (a transient, retryable error).

use crate::error::{check_rate, FaultError};

/// Configurable fault rates for one run. All rates are probabilities;
/// [`FaultPlan::none`] — every rate zero — is the fault-free machine
/// and must reproduce it bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability each LUT row is corrupted at boot (stuck-at cells).
    /// Corrupted rows are rewritten from DRAM the first time their
    /// slice is dispatched, costing
    /// [`lut_repair_ns_per_row`](FaultPlan::lut_repair_ns_per_row) each.
    pub lut_corruption_rate: f64,
    /// Service-time penalty per corrupted LUT row on the first dispatch
    /// that touches the slice (one DRAM fill plus a row write).
    pub lut_repair_ns_per_row: u64,
    /// Probability each slice fails outright at some instant inside
    /// [`failure_horizon_ns`](FaultPlan::failure_horizon_ns).
    pub slice_failure_rate: f64,
    /// Virtual-clock window in which slice failures are scheduled.
    pub failure_horizon_ns: u64,
    /// If set, a failed slice recovers (rejoins the pool) this long
    /// after failing; `None` means failures are permanent for the run.
    pub slice_recovery_ns: Option<u64>,
    /// Probability each slice is a chronic straggler (marginal sense
    /// amps / process variation).
    pub straggler_rate: f64,
    /// Latency multiplier a straggler slice imposes on every dispatch
    /// that includes it (>= 1).
    pub straggler_multiplier: f64,
    /// Probability one service attempt of one request hits a transient
    /// compute error and must be retried.
    pub transient_error_rate: f64,
    /// Probability each LUT row takes a soft-error bit flip per scrub
    /// epoch. Two independent draws are made per (row, epoch), so at
    /// high rates a row can accumulate a *double* flip between scrubs —
    /// the case parity detection misses and SECDED detects but cannot
    /// correct.
    pub lut_bitflip_rate: f64,
    /// Probability each model weight payload byte takes a bit flip
    /// while resident (registry re-verification catches these through
    /// the artifact checksum).
    pub weight_bitflip_rate: f64,
    /// Probability each in-flight nibble operand takes a bit flip on
    /// its way to the LUT index. Storage ECC cannot see these: a
    /// flipped operand indexes a *valid* row and reads a plausible but
    /// wrong product, so they are accounted as datapath SDC.
    pub operand_bitflip_rate: f64,
}

impl FaultPlan {
    /// The fault-free plan: every rate zero. Running under this plan is
    /// guaranteed byte-identical to running without a fault layer at
    /// all — the zero-fault-equivalence anchor.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            lut_corruption_rate: 0.0,
            lut_repair_ns_per_row: 0,
            slice_failure_rate: 0.0,
            failure_horizon_ns: 0,
            slice_recovery_ns: None,
            straggler_rate: 0.0,
            straggler_multiplier: 1.0,
            transient_error_rate: 0.0,
            lut_bitflip_rate: 0.0,
            weight_bitflip_rate: 0.0,
            operand_bitflip_rate: 0.0,
        }
    }

    /// Whether this plan injects nothing (every rate is zero).
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.lut_corruption_rate == 0.0
            && self.slice_failure_rate == 0.0
            && self.straggler_rate == 0.0
            && self.transient_error_rate == 0.0
            && self.lut_bitflip_rate == 0.0
            && self.weight_bitflip_rate == 0.0
            && self.operand_bitflip_rate == 0.0
    }

    /// Sets the LUT-row corruption rate and per-row repair cost.
    #[must_use]
    pub fn with_lut_corruption(mut self, rate: f64, repair_ns_per_row: u64) -> Self {
        self.lut_corruption_rate = rate;
        self.lut_repair_ns_per_row = repair_ns_per_row;
        self
    }

    /// Sets the slice-failure rate over a scheduling horizon, with an
    /// optional recovery delay.
    #[must_use]
    pub fn with_slice_failures(
        mut self,
        rate: f64,
        horizon_ns: u64,
        recovery_ns: Option<u64>,
    ) -> Self {
        self.slice_failure_rate = rate;
        self.failure_horizon_ns = horizon_ns;
        self.slice_recovery_ns = recovery_ns;
        self
    }

    /// Sets the straggler rate and latency multiplier.
    #[must_use]
    pub fn with_stragglers(mut self, rate: f64, multiplier: f64) -> Self {
        self.straggler_rate = rate;
        self.straggler_multiplier = multiplier;
        self
    }

    /// Sets the per-attempt transient compute-error rate.
    #[must_use]
    pub fn with_transient_errors(mut self, rate: f64) -> Self {
        self.transient_error_rate = rate;
        self
    }

    /// Sets the silent-data-corruption rates: LUT-row flips per scrub
    /// epoch, weight payload flips per byte, and in-flight operand
    /// flips per nibble.
    #[must_use]
    pub fn with_bit_flips(mut self, lut_rate: f64, weight_rate: f64, operand_rate: f64) -> Self {
        self.lut_bitflip_rate = lut_rate;
        self.weight_bitflip_rate = weight_rate;
        self.operand_bitflip_rate = operand_rate;
        self
    }

    /// This plan with every rate multiplied by `severity` (clamped to
    /// probability range) — the knob chaos sweeps turn. Severity 0
    /// yields a plan equivalent to [`FaultPlan::none`].
    #[must_use]
    pub fn scaled(&self, severity: f64) -> Self {
        let scale = |r: f64| (r * severity).clamp(0.0, 1.0);
        FaultPlan {
            lut_corruption_rate: scale(self.lut_corruption_rate),
            slice_failure_rate: scale(self.slice_failure_rate),
            straggler_rate: scale(self.straggler_rate),
            transient_error_rate: scale(self.transient_error_rate),
            lut_bitflip_rate: scale(self.lut_bitflip_rate),
            weight_bitflip_rate: scale(self.weight_bitflip_rate),
            operand_bitflip_rate: scale(self.operand_bitflip_rate),
            ..self.clone()
        }
    }

    /// Checks every parameter.
    ///
    /// # Errors
    ///
    /// [`FaultError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<(), FaultError> {
        check_rate("lut_corruption_rate", self.lut_corruption_rate)?;
        check_rate("slice_failure_rate", self.slice_failure_rate)?;
        check_rate("straggler_rate", self.straggler_rate)?;
        check_rate("transient_error_rate", self.transient_error_rate)?;
        check_rate("lut_bitflip_rate", self.lut_bitflip_rate)?;
        check_rate("weight_bitflip_rate", self.weight_bitflip_rate)?;
        check_rate("operand_bitflip_rate", self.operand_bitflip_rate)?;
        if !self.straggler_multiplier.is_finite() || self.straggler_multiplier < 1.0 {
            return Err(FaultError::InvalidParameter {
                parameter: "straggler_multiplier",
                reason: format!("must be finite and >= 1, got {}", self.straggler_multiplier),
            });
        }
        if self.slice_failure_rate > 0.0 && self.failure_horizon_ns == 0 {
            return Err(FaultError::InvalidParameter {
                parameter: "failure_horizon_ns",
                reason: "slice failures need a non-zero horizon to be scheduled in".to_string(),
            });
        }
        if self.slice_recovery_ns == Some(0) {
            return Err(FaultError::InvalidParameter {
                parameter: "slice_recovery_ns",
                reason: "zero-delay recovery would be a no-op failure; use None".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_valid_and_empty() {
        let plan = FaultPlan::none();
        assert!(plan.validate().is_ok());
        assert!(plan.is_none());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn builders_compose_and_validate() {
        let plan = FaultPlan::none()
            .with_lut_corruption(0.01, 50)
            .with_slice_failures(0.2, 100_000_000, Some(40_000_000))
            .with_stragglers(0.1, 3.0)
            .with_transient_errors(0.02);
        assert!(plan.validate().is_ok());
        assert!(!plan.is_none());
    }

    #[test]
    fn invalid_parameters_are_named() {
        let bad = FaultPlan::none().with_stragglers(0.1, 0.5);
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("straggler_multiplier"));

        let bad = FaultPlan::none().with_transient_errors(f64::NAN);
        assert!(bad.validate().is_err());

        let bad = FaultPlan {
            slice_failure_rate: 0.5,
            failure_horizon_ns: 0,
            ..FaultPlan::none()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn severity_zero_scales_back_to_none() {
        let base = FaultPlan::none()
            .with_stragglers(0.5, 4.0)
            .with_transient_errors(0.3);
        assert!(base.scaled(0.0).is_none());
        let double = base.scaled(2.0);
        assert!((double.transient_error_rate - 0.6).abs() < 1e-12);
        assert_eq!(base.scaled(10.0).straggler_rate, 1.0, "rates clamp at 1");
    }
}
