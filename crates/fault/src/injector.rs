//! Resolving a [`FaultPlan`] into concrete, queryable outcomes.
//!
//! The injector is built once per run from `(plan, seed, pool shape)`
//! and precomputes every per-slice outcome: which slices fail and when,
//! which are stragglers, how many LUT rows each slice boots with
//! corrupted. Per-request outcomes (transient errors) stay lazy but are
//! counter-based — `(seed, request, attempt)` fully determines the
//! answer — so nothing depends on query order or thread scheduling.

use crate::error::FaultError;
use crate::plan::FaultPlan;
use crate::rng::{chance, draw, Stream};

/// One scheduled whole-slice failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceFault {
    /// The failing slice.
    pub slice: usize,
    /// Virtual-clock instant the slice fails.
    pub fail_at_ns: u64,
    /// Virtual-clock instant it recovers, if the plan allows recovery.
    pub recover_at_ns: Option<u64>,
}

/// Deterministic resolved outcomes of one [`FaultPlan`] at one seed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    failures: Vec<SliceFault>,
    straggler_multipliers: Vec<f64>,
    corrupted_lut_rows: Vec<u32>,
}

impl FaultInjector {
    /// Resolves `plan` for a pool of `slices` slices, each carrying
    /// `lut_rows_per_slice` LUT rows, under `seed`.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::validate`] failures.
    pub fn new(
        plan: FaultPlan,
        seed: u64,
        slices: usize,
        lut_rows_per_slice: u32,
    ) -> Result<Self, FaultError> {
        plan.validate()?;
        let mut failures = Vec::new();
        let mut straggler_multipliers = vec![1.0; slices];
        let mut corrupted_lut_rows = vec![0u32; slices];
        for slice in 0..slices {
            let id = slice as u64;
            if chance(seed, Stream::SliceFailure, id, plan.slice_failure_rate) {
                // Uniform instant in [0, horizon): a failure exactly at 0
                // would never let the slice serve, which is just a
                // smaller pool, so keep it possible but not special.
                let fail_at_ns = draw(seed, Stream::SliceFailureTime, id) % plan.failure_horizon_ns;
                failures.push(SliceFault {
                    slice,
                    fail_at_ns,
                    recover_at_ns: plan.slice_recovery_ns.map(|r| fail_at_ns.saturating_add(r)),
                });
            }
            if chance(seed, Stream::Straggler, id, plan.straggler_rate) {
                straggler_multipliers[slice] = plan.straggler_multiplier;
            }
            if plan.lut_corruption_rate > 0.0 {
                let base = id.wrapping_mul(1 << 20);
                corrupted_lut_rows[slice] = (0..lut_rows_per_slice)
                    .filter(|&row| {
                        chance(
                            seed,
                            Stream::LutCorruption,
                            base.wrapping_add(u64::from(row)),
                            plan.lut_corruption_rate,
                        )
                    })
                    .count() as u32;
            }
        }
        failures.sort_unstable_by_key(|f| (f.fail_at_ns, f.slice));
        Ok(FaultInjector {
            plan,
            seed,
            failures,
            straggler_multipliers,
            corrupted_lut_rows,
        })
    }

    /// The fault-free injector for a pool of `slices` slices — injects
    /// nothing, perturbs nothing.
    #[must_use]
    pub fn none(slices: usize) -> Self {
        FaultInjector {
            plan: FaultPlan::none(),
            seed: 0,
            failures: Vec::new(),
            straggler_multipliers: vec![1.0; slices],
            corrupted_lut_rows: vec![0; slices],
        }
    }

    /// The plan this injector resolved.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The seed outcomes were resolved under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The slice-pool size this injector was resolved for.
    #[must_use]
    pub fn slices(&self) -> usize {
        self.straggler_multipliers.len()
    }

    /// Whether this injector perturbs nothing.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.plan.is_none()
    }

    /// Every scheduled slice failure, ordered by failure time.
    pub fn slice_failures(&self) -> &[SliceFault] {
        &self.failures
    }

    /// The latency multiplier `slice` imposes on dispatches that include
    /// it (exactly 1.0 for healthy slices).
    #[must_use]
    pub fn straggler_multiplier(&self, slice: usize) -> f64 {
        self.straggler_multipliers
            .get(slice)
            .copied()
            .unwrap_or(1.0)
    }

    /// LUT rows of `slice` that boot corrupted and need a rewrite before
    /// its first dispatch.
    #[must_use]
    pub fn corrupted_lut_rows(&self, slice: usize) -> u32 {
        self.corrupted_lut_rows.get(slice).copied().unwrap_or(0)
    }

    /// One-time repair cost of `slice`: rewriting every corrupted LUT
    /// row from the golden copy in DRAM.
    #[must_use]
    pub fn lut_repair_ns(&self, slice: usize) -> u64 {
        u64::from(self.corrupted_lut_rows(slice)).saturating_mul(self.plan.lut_repair_ns_per_row)
    }

    /// Whether service attempt number `attempt` (0-based) of request
    /// `request_id` hits a transient compute error. Pure in
    /// `(seed, request_id, attempt)` — query order never matters.
    #[must_use]
    pub fn transient_error(&self, request_id: u64, attempt: u32) -> bool {
        chance(
            self.seed,
            Stream::TransientError,
            request_id.wrapping_mul(64).wrapping_add(u64::from(attempt)),
            self.plan.transient_error_rate,
        )
    }

    /// Up to two independent soft-error bit flips landing on LUT row
    /// `row` of `slice` during scrub epoch `epoch`, as bit positions in
    /// `0..word_bits`. Two draws at the plan rate, so at high rates a
    /// row can take a *double* flip inside one epoch — the case parity
    /// misses and SECDED detects but cannot correct.
    ///
    /// The flip *decisions* ignore `word_bits`: whether a row flips (and
    /// how often) is identical whatever ECC geometry protects it, so
    /// protection schemes in a sweep face the same error process and
    /// differ only in the landing bit's position within their code word.
    #[must_use]
    pub fn lut_row_flips(
        &self,
        slice: usize,
        row: u32,
        epoch: u64,
        word_bits: u32,
    ) -> [Option<u32>; 2] {
        if self.plan.lut_bitflip_rate <= 0.0 || word_bits == 0 {
            return [None, None];
        }
        // One disjoint index per (slice, row, epoch, draw): epochs are
        // bounded by the sweep, rows by the geometry, so the packing
        // cannot collide for any realistic run.
        let base = (slice as u64)
            .wrapping_mul(1 << 40)
            .wrapping_add(u64::from(row) << 20)
            .wrapping_add(epoch << 1);
        std::array::from_fn(|k| {
            let index = base.wrapping_add(k as u64);
            chance(
                self.seed,
                Stream::LutBitFlip,
                index,
                self.plan.lut_bitflip_rate,
            )
            .then(|| (draw(self.seed, Stream::LutBitPosition, index) % u64::from(word_bits)) as u32)
        })
    }

    /// The bit (0..8) flipped in resident model-weight payload byte
    /// `byte_index`, if any. Pure in `(seed, byte_index)`.
    #[must_use]
    pub fn weight_byte_flip(&self, byte_index: u64) -> Option<u32> {
        chance(
            self.seed,
            Stream::WeightBitFlip,
            byte_index,
            self.plan.weight_bitflip_rate,
        )
        .then(|| (draw(self.seed, Stream::WeightBitPosition, byte_index) % 8) as u32)
    }

    /// The bit (0..4) flipped in nibble operand number `operand` of
    /// request `request_id` while in flight, if any. Storage ECC cannot
    /// see these — the flipped operand indexes a valid LUT row — so the
    /// consumer accounts them as datapath SDC.
    #[must_use]
    pub fn operand_flip(&self, request_id: u64, operand: u64) -> Option<u32> {
        if self.plan.operand_bitflip_rate <= 0.0 {
            return None;
        }
        let index = request_id.wrapping_mul(1 << 24).wrapping_add(operand);
        chance(
            self.seed,
            Stream::OperandBitFlip,
            index,
            self.plan.operand_bitflip_rate,
        )
        .then(|| (draw(self.seed, Stream::OperandBitPosition, index) % 4) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::none()
            .with_lut_corruption(0.05, 50)
            .with_slice_failures(0.5, 100_000_000, Some(40_000_000))
            .with_stragglers(0.3, 3.0)
            .with_transient_errors(0.1)
    }

    #[test]
    fn resolution_is_seed_deterministic() {
        let a = FaultInjector::new(plan(), 42, 14, 640).unwrap();
        let b = FaultInjector::new(plan(), 42, 14, 640).unwrap();
        assert_eq!(a.slice_failures(), b.slice_failures());
        for s in 0..14 {
            assert_eq!(a.straggler_multiplier(s), b.straggler_multiplier(s));
            assert_eq!(a.corrupted_lut_rows(s), b.corrupted_lut_rows(s));
        }
        let c = FaultInjector::new(plan(), 43, 14, 640).unwrap();
        assert_ne!(
            (a.slice_failures(), a.corrupted_lut_rows(0)),
            (c.slice_failures(), c.corrupted_lut_rows(0)),
            "different seeds must resolve different outcomes"
        );
    }

    #[test]
    fn transient_errors_are_query_order_independent() {
        let inj = FaultInjector::new(plan(), 7, 14, 640).unwrap();
        let forward: Vec<bool> = (0..200).map(|r| inj.transient_error(r, 0)).collect();
        let backward: Vec<bool> = (0..200).rev().map(|r| inj.transient_error(r, 0)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "order of queries must not change outcomes"
        );
        assert!(forward.iter().any(|&e| e), "10% over 200 draws should hit");
        assert!(!forward.iter().all(|&e| e));
    }

    #[test]
    fn failures_land_inside_the_horizon_with_recovery_after() {
        let inj = FaultInjector::new(plan(), 11, 14, 640).unwrap();
        assert!(!inj.slice_failures().is_empty(), "50% of 14 slices");
        for f in inj.slice_failures() {
            assert!(f.fail_at_ns < 100_000_000);
            assert_eq!(f.recover_at_ns, Some(f.fail_at_ns + 40_000_000));
        }
        // Sorted by failure time.
        for pair in inj.slice_failures().windows(2) {
            assert!(pair[0].fail_at_ns <= pair[1].fail_at_ns);
        }
    }

    #[test]
    fn none_injector_perturbs_nothing() {
        let inj = FaultInjector::none(14);
        assert!(inj.is_none());
        assert!(inj.slice_failures().is_empty());
        for s in 0..14 {
            assert_eq!(inj.straggler_multiplier(s), 1.0);
            assert_eq!(inj.lut_repair_ns(s), 0);
        }
        assert!(!inj.transient_error(0, 0));
        assert!(!inj.transient_error(u64::MAX, u32::MAX));
    }

    #[test]
    fn bit_flips_are_pure_and_respect_their_ranges() {
        let plan = FaultPlan::none().with_bit_flips(0.2, 0.05, 0.05);
        let inj = FaultInjector::new(plan, 99, 14, 640).unwrap();
        let mut lut_hits = 0u32;
        for slice in 0..14 {
            for row in 0..64u32 {
                for epoch in 0..8u64 {
                    let flips = inj.lut_row_flips(slice, row, epoch, 72);
                    assert_eq!(flips, inj.lut_row_flips(slice, row, epoch, 72));
                    for bit in flips.into_iter().flatten() {
                        assert!(bit < 72);
                        lut_hits += 1;
                    }
                }
            }
        }
        assert!(lut_hits > 0, "20% over 14*64*8*2 draws should hit");
        let weight_hits = (0..4_000u64)
            .filter_map(|b| inj.weight_byte_flip(b))
            .inspect(|&bit| assert!(bit < 8))
            .count();
        assert!(weight_hits > 0);
        let operand_hits = (0..4_000u64)
            .filter_map(|r| inj.operand_flip(r, 0))
            .inspect(|&bit| assert!(bit < 4))
            .count();
        assert!(operand_hits > 0);
    }

    #[test]
    fn flip_decisions_are_independent_of_word_bits() {
        // Whether a row flips must not depend on the protection scheme's
        // code-word width — only the bit's position within it may.
        let plan = FaultPlan::none().with_bit_flips(0.3, 0.0, 0.0);
        let inj = FaultInjector::new(plan, 17, 4, 64).unwrap();
        for row in 0..256u32 {
            for (narrow, wide) in inj
                .lut_row_flips(1, row, 3, 64)
                .into_iter()
                .zip(inj.lut_row_flips(1, row, 3, 72))
            {
                assert_eq!(narrow.is_some(), wide.is_some());
            }
        }
    }

    #[test]
    fn none_injector_never_flips_bits() {
        let inj = FaultInjector::none(14);
        for row in 0..640u32 {
            assert_eq!(inj.lut_row_flips(0, row, 0, 72), [None, None]);
        }
        assert_eq!(inj.weight_byte_flip(12345), None);
        assert_eq!(inj.operand_flip(7, 3), None);
    }

    #[test]
    fn lut_repair_cost_scales_with_corrupted_rows() {
        let inj = FaultInjector::new(plan(), 3, 14, 640).unwrap();
        let total: u64 = (0..14).map(|s| inj.lut_repair_ns(s)).sum();
        let rows: u64 = (0..14).map(|s| u64::from(inj.corrupted_lut_rows(s))).sum();
        assert_eq!(total, rows * 50);
        assert!(rows > 0, "5% of 14*640 rows should corrupt some");
    }
}
