//! Resilience policies: how the serving stack responds to faults.
//!
//! A [`RetryPolicy`] turns a failed service attempt into a capped
//! exponential backoff schedule with *deterministic* jitter: the delay
//! of attempt `a` of request `r` under seed `s` is a pure function of
//! `(s, r, a)`, so identical seeds produce identical retry schedules on
//! one worker or sixteen.

use crate::error::{check_rate, FaultError};
use crate::rng::{unit, Stream};

/// Retry with capped exponential backoff and deterministic jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total service attempts allowed per request, including the first
    /// (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff_ns: u64,
    /// Hard ceiling on any single backoff delay, jitter included.
    pub max_backoff_ns: u64,
    /// Fraction of the pre-jitter delay that deterministic jitter may
    /// add (`0.0` = pure exponential, `0.25` = up to +25%).
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// No retries at all: every transient failure is terminal.
    #[must_use]
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ns: 0,
            max_backoff_ns: 0,
            jitter_frac: 0.0,
        }
    }

    /// The default production posture: up to 4 attempts, 100 us base
    /// backoff doubling to a 10 ms ceiling, 25% jitter.
    #[must_use]
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ns: 100_000,
            max_backoff_ns: 10_000_000,
            jitter_frac: 0.25,
        }
    }

    /// Whether any retry is ever allowed.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Checks parameter sanity.
    ///
    /// # Errors
    ///
    /// [`FaultError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<(), FaultError> {
        if self.max_attempts == 0 {
            return Err(FaultError::InvalidParameter {
                parameter: "max_attempts",
                reason: "must be at least 1 (the first attempt)".to_string(),
            });
        }
        check_rate("jitter_frac", self.jitter_frac)?;
        if self.enabled() && self.base_backoff_ns > self.max_backoff_ns {
            return Err(FaultError::InvalidParameter {
                parameter: "base_backoff_ns",
                reason: format!(
                    "base {} exceeds ceiling {}",
                    self.base_backoff_ns, self.max_backoff_ns
                ),
            });
        }
        Ok(())
    }

    /// The backoff delay before retry attempt `attempt` (1-based: the
    /// first retry is attempt 1) of `request_id`, under `seed`.
    ///
    /// Exponential (`base * 2^(attempt-1)`) plus up to
    /// [`jitter_frac`](RetryPolicy::jitter_frac) deterministic jitter,
    /// capped at [`max_backoff_ns`](RetryPolicy::max_backoff_ns) — the
    /// ceiling holds jitter included.
    #[must_use]
    pub fn backoff_ns(&self, seed: u64, request_id: u64, attempt: u32) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let exponent = attempt.saturating_sub(1).min(62);
        let raw = self
            .base_backoff_ns
            .saturating_mul(1u64 << exponent)
            .min(self.max_backoff_ns);
        let jitter = if self.jitter_frac > 0.0 {
            let u = unit(
                seed,
                Stream::BackoffJitter,
                request_id.wrapping_mul(64).wrapping_add(u64::from(attempt)),
            );
            (raw as f64 * self.jitter_frac * u) as u64
        } else {
            0
        };
        raw.saturating_add(jitter).min(self.max_backoff_ns)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_never_backs_off() {
        let p = RetryPolicy::disabled();
        assert!(!p.enabled());
        assert!(p.validate().is_ok());
        assert_eq!(p.backoff_ns(1, 2, 3), 0);
    }

    #[test]
    fn backoff_doubles_until_the_ceiling() {
        let p = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::standard()
        };
        assert_eq!(p.backoff_ns(0, 0, 1), 100_000);
        assert_eq!(p.backoff_ns(0, 0, 2), 200_000);
        assert_eq!(p.backoff_ns(0, 0, 3), 400_000);
        // Far past the doubling range the ceiling holds.
        assert_eq!(p.backoff_ns(0, 0, 30), 10_000_000);
        assert_eq!(p.backoff_ns(0, 0, u32::MAX), 10_000_000);
    }

    #[test]
    fn jitter_is_deterministic_and_capped() {
        let p = RetryPolicy::standard();
        for attempt in 1..40 {
            for request in 0..50u64 {
                let a = p.backoff_ns(42, request, attempt);
                let b = p.backoff_ns(42, request, attempt);
                assert_eq!(a, b, "identical inputs must give identical backoff");
                assert!(a <= p.max_backoff_ns, "ceiling violated: {a}");
            }
        }
        // Jitter actually varies across requests.
        let delays: std::collections::BTreeSet<u64> =
            (0..50u64).map(|r| p.backoff_ns(42, r, 1)).collect();
        assert!(delays.len() > 10, "jitter should spread the schedule");
        // And across seeds.
        assert_ne!(p.backoff_ns(1, 0, 1), p.backoff_ns(2, 0, 1));
    }

    #[test]
    fn invalid_policies_are_rejected() {
        let mut p = RetryPolicy::standard();
        p.max_attempts = 0;
        assert!(p.validate().is_err());

        let mut p = RetryPolicy::standard();
        p.jitter_frac = f64::NAN;
        assert!(p.validate().is_err());

        let mut p = RetryPolicy::standard();
        p.base_backoff_ns = p.max_backoff_ns + 1;
        assert!(p.validate().is_err());
    }
}
