//! # bfree-fault
//!
//! Deterministic fault injection and resilience policies for the BFree
//! stack. BFree's LUT rows and decoupled-bitline partitions live inside
//! commodity SRAM subarrays (paper §IV, Fig. 4), where stuck-at cells,
//! marginal sense amps and slice-level failures are first-order
//! concerns for a deployed PIM cache — this crate models them without
//! giving up the workspace's bit-determinism guarantee.
//!
//! The pieces:
//!
//! * [`FaultPlan`] — declarative fault rates (LUT-row corruption, whole
//!   slice failures with optional recovery, straggler slices, transient
//!   per-attempt compute errors, and soft-error bit flips in LUT rows,
//!   model weight bytes, and in-flight nibble operands);
//!   [`FaultPlan::none`] is the fault-free machine and reproduces it
//!   byte-for-byte.
//! * [`FaultInjector`] — the plan resolved under an explicit seed into
//!   concrete outcomes. Every decision is a *pure function* of
//!   `(seed, stream, index)` (counter-based SplitMix64, see [`rng`]),
//!   so outcomes never depend on query order, thread count, or a wall
//!   clock.
//! * [`RetryPolicy`] — capped exponential backoff with deterministic
//!   jitter: identical seeds yield identical retry schedules at any
//!   `--jobs` value.
//!
//! The serving integration (quarantine, remapping, load shedding,
//! deadlines) lives in `bfree-serve`; this crate stays a pure model so
//! any layer of the stack can consume it.
//!
//! ```
//! use bfree_fault::{FaultInjector, FaultPlan, RetryPolicy};
//!
//! let plan = FaultPlan::none()
//!     .with_stragglers(0.2, 3.0)
//!     .with_transient_errors(0.05);
//! let injector = FaultInjector::new(plan, 42, 14, 640)?;
//! // Same seed, same outcomes — wherever and whenever this is asked.
//! assert_eq!(
//!     injector.transient_error(17, 0),
//!     injector.transient_error(17, 0),
//! );
//! let retry = RetryPolicy::standard();
//! assert!(retry.backoff_ns(42, 17, 1) <= retry.max_backoff_ns);
//! # Ok::<(), bfree_fault::FaultError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod injector;
pub mod plan;
pub mod policy;
pub mod rng;

pub use error::FaultError;
pub use injector::{FaultInjector, SliceFault};
pub use plan::FaultPlan;
pub use policy::RetryPolicy;

/// Convenient glob import for chaos experiments and tests.
pub mod prelude {
    pub use crate::{FaultError, FaultInjector, FaultPlan, RetryPolicy, SliceFault};
}
