//! Typed failures of the fault layer itself.

use std::error::Error;
use std::fmt;

/// An invalid fault plan or resilience policy.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// A plan or policy parameter was out of range.
    InvalidParameter {
        /// The offending parameter.
        parameter: &'static str,
        /// Why it is invalid.
        reason: String,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidParameter { parameter, reason } => {
                write!(f, "invalid fault parameter {parameter}: {reason}")
            }
        }
    }
}

impl Error for FaultError {}

/// Checks that a rate is a finite probability in `[0, 1]`.
///
/// # Errors
///
/// [`FaultError::InvalidParameter`] naming `parameter`.
pub(crate) fn check_rate(parameter: &'static str, rate: f64) -> Result<(), FaultError> {
    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
        return Err(FaultError::InvalidParameter {
            parameter,
            reason: format!("must be a finite probability in [0, 1], got {rate}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_outside_the_unit_interval_are_rejected() {
        assert!(check_rate("r", 0.0).is_ok());
        assert!(check_rate("r", 1.0).is_ok());
        assert!(check_rate("r", -0.1).is_err());
        assert!(check_rate("r", 1.1).is_err());
        assert!(check_rate("r", f64::NAN).is_err());
        assert!(check_rate("r", f64::INFINITY).is_err());
        let err = check_rate("transient_error_rate", 2.0).unwrap_err();
        assert!(err.to_string().contains("transient_error_rate"));
    }
}
