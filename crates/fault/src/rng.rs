//! Counter-based deterministic randomness for fault decisions.
//!
//! Every fault decision in the stack is a *pure function* of
//! `(seed, stream, index)` — there is no sequential generator state to
//! advance, so the answer to "does request 17 fail on attempt 2?" does
//! not depend on how many other questions were asked first, in what
//! order, or on which worker thread. That property is what makes the
//! whole fault layer bit-identical at any `--jobs` value: parallel
//! sweeps may interleave their queries arbitrarily and still see the
//! same coin flips.
//!
//! The mixer is the SplitMix64 finalizer (Steele et al., "Fast
//! splittable pseudorandom number generators"), the same construction
//! the vendored `rand` stand-in uses sequentially.

/// Disjoint decision streams, so a slice-failure draw can never collide
/// with a transient-error draw for the same index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stream {
    /// Per-slice: does this slice fail during the run?
    SliceFailure,
    /// Per-slice: when (within the horizon) does it fail?
    SliceFailureTime,
    /// Per-slice: is this slice a straggler?
    Straggler,
    /// Per-(slice, row): is this LUT row corrupted at boot?
    LutCorruption,
    /// Per-(request, attempt): does the attempt hit a transient error?
    TransientError,
    /// Per-(request, attempt): backoff jitter for the retry schedule.
    BackoffJitter,
    /// Per-(slice, row, epoch, draw): does this LUT row take a soft-error
    /// bit flip during this scrub epoch?
    LutBitFlip,
    /// Per-(slice, row, epoch, draw): which bit of the coded row flips.
    LutBitPosition,
    /// Per-byte: does this model weight payload byte take a bit flip?
    WeightBitFlip,
    /// Per-byte: which of the eight bits flips.
    WeightBitPosition,
    /// Per-(request, operand): does this in-flight nibble operand take a
    /// bit flip on the H-tree between the analyzer and the LUT index?
    OperandBitFlip,
    /// Per-(request, operand): which of the four nibble bits flips.
    OperandBitPosition,
}

impl Stream {
    fn tag(self) -> u64 {
        match self {
            Stream::SliceFailure => 0x511C_EFA1,
            Stream::SliceFailureTime => 0x511C_E71A,
            Stream::Straggler => 0x574A_661E,
            Stream::LutCorruption => 0x107C_0440,
            Stream::TransientError => 0x74A1_157E,
            Stream::BackoffJitter => 0xBAC0_FF11,
            Stream::LutBitFlip => 0x107B_17F1,
            Stream::LutBitPosition => 0x107B_1705,
            Stream::WeightBitFlip => 0x3E16_87F1,
            Stream::WeightBitPosition => 0x3E16_8705,
            Stream::OperandBitFlip => 0x09E4_A7F1,
            Stream::OperandBitPosition => 0x09E4_A705,
        }
    }
}

/// The SplitMix64 finalizer: a bijective avalanche mixer on u64.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The 64 random bits assigned to `(seed, stream, index)`.
#[must_use]
pub fn draw(seed: u64, stream: Stream, index: u64) -> u64 {
    // Mix the seed and stream tag first so indices of different streams
    // land in unrelated cycles, then fold in the index through a second
    // full avalanche.
    mix64(mix64(seed ^ stream.tag().rotate_left(17)).wrapping_add(index))
}

/// The draw mapped to a uniform `f64` in `[0, 1)` (53 mantissa bits).
#[must_use]
pub fn unit(seed: u64, stream: Stream, index: u64) -> f64 {
    (draw(seed, stream, index) >> 11) as f64 / (1u64 << 53) as f64
}

/// A Bernoulli trial: true with probability `p` for this exact
/// `(seed, stream, index)` triple, regardless of query order.
#[must_use]
pub fn chance(seed: u64, stream: Stream, index: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    unit(seed, stream, index) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_functions_of_their_inputs() {
        assert_eq!(
            draw(42, Stream::TransientError, 7),
            draw(42, Stream::TransientError, 7)
        );
        assert_ne!(
            draw(42, Stream::TransientError, 7),
            draw(42, Stream::TransientError, 8)
        );
        assert_ne!(
            draw(42, Stream::TransientError, 7),
            draw(43, Stream::TransientError, 7)
        );
        assert_ne!(
            draw(42, Stream::TransientError, 7),
            draw(42, Stream::BackoffJitter, 7)
        );
    }

    #[test]
    fn unit_is_in_the_half_open_interval() {
        for i in 0..1_000 {
            let u = unit(0xBFEE, Stream::Straggler, i);
            assert!((0.0..1.0).contains(&u), "unit draw {u} out of range");
        }
    }

    #[test]
    fn chance_edge_probabilities_are_exact() {
        for i in 0..100 {
            assert!(!chance(1, Stream::SliceFailure, i, 0.0));
            assert!(chance(1, Stream::SliceFailure, i, 1.0));
        }
    }

    #[test]
    fn chance_rate_is_roughly_honoured() {
        let hits = (0..10_000)
            .filter(|&i| chance(7, Stream::LutCorruption, i, 0.1))
            .count();
        assert!(
            (800..1_200).contains(&hits),
            "10% rate drew {hits}/10000 hits"
        );
    }

    #[test]
    fn mix64_is_a_bijection_on_a_sample() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }
}
