//! The sharded MPMC admission queue behind the realtime front-end.
//!
//! Capacity is one global atomic ticket counter (so backpressure is a
//! single `fetch_add`, never a lock sweep), while the requests
//! themselves live in per-shard FIFO segments. A request's *home*
//! shard is `request_id & mask`; workers pop starting from their own
//! home shard and sweep forward, so disjoint workers touch disjoint
//! locks until imbalance forces them to steal. Each shard keeps an
//! occupancy hint so the sweep skips empty shards without taking their
//! locks.
//!
//! The crate forbids `unsafe`, so shards are `Mutex<VecDeque>` —
//! mutual exclusion per shard, lock-free *routing* across shards. The
//! queue-stress test hammers this structure from many threads and
//! checks the exactly-once pop invariant.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::error::RejectReason;
use crate::scheduler::QueuedRequest;

#[derive(Debug)]
struct Shard {
    items: Mutex<VecDeque<QueuedRequest>>,
    /// Occupancy hint: incremented after a push lands, decremented
    /// after a pop removes. Zero means "very probably empty" — a racing
    /// sweep may skip a shard mid-push, but the pusher's own follow-up
    /// pop (or any later sweep) observes it, so nothing is lost.
    occupied: AtomicUsize,
}

/// A sharded multi-producer multi-consumer FIFO with one global
/// capacity bound.
#[derive(Debug)]
pub struct ShardedQueue {
    shards: Vec<Shard>,
    mask: usize,
    len: AtomicUsize,
    capacity: usize,
}

impl ShardedQueue {
    /// A queue with `shards` segments (rounded up to a power of two)
    /// and a global bound of `capacity` queued requests.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ShardedQueue {
            shards: (0..shards)
                .map(|_| Shard {
                    items: Mutex::new(VecDeque::new()),
                    occupied: AtomicUsize::new(0),
                })
                .collect(),
            mask: shards - 1,
            len: AtomicUsize::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Number of shards (a power of two).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Requests currently queued (racy snapshot).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the queue is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `request` on its home shard.
    ///
    /// # Errors
    ///
    /// [`RejectReason::QueueFull`] when the global capacity is reached;
    /// the request is handed back untouched in spirit (it is `Copy`).
    pub fn push(&self, request: QueuedRequest) -> Result<(), RejectReason> {
        // One ticket per queued request: claim before touching a shard
        // so capacity is a single global bound, not per-shard.
        if self.len.fetch_add(1, Ordering::AcqRel) >= self.capacity {
            self.len.fetch_sub(1, Ordering::AcqRel);
            return Err(RejectReason::QueueFull);
        }
        let shard = &self.shards[request.request_id as usize & self.mask];
        shard
            .items
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push_back(request);
        shard.occupied.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Dequeues one request, sweeping shards from `home` forward.
    /// Returns the request and whether it was *stolen* (taken from a
    /// shard other than `home & mask`).
    pub fn pop(&self, home: usize) -> Option<(QueuedRequest, bool)> {
        let n = self.shards.len();
        let home = home & self.mask;
        for offset in 0..n {
            let idx = (home + offset) & self.mask;
            let shard = &self.shards[idx];
            if shard.occupied.load(Ordering::Acquire) == 0 {
                continue;
            }
            let popped = shard
                .items
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .pop_front();
            if let Some(request) = popped {
                shard.occupied.fetch_sub(1, Ordering::Release);
                self.len.fetch_sub(1, Ordering::AcqRel);
                return Some((request, idx != home));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64) -> QueuedRequest {
        QueuedRequest {
            request_id: id,
            tenant: 0,
            submit_ns: id,
            attempt: 0,
        }
    }

    #[test]
    fn fifo_within_a_shard_and_exact_capacity() {
        let q = ShardedQueue::new(4, 3);
        assert_eq!(q.shards(), 4);
        // IDs 0, 4, 8 share home shard 0.
        q.push(request(0)).unwrap();
        q.push(request(4)).unwrap();
        q.push(request(8)).unwrap();
        assert_eq!(q.push(request(12)).unwrap_err(), RejectReason::QueueFull);
        assert_eq!(q.len(), 3);
        let (first, stolen) = q.pop(0).unwrap();
        assert_eq!(first.request_id, 0);
        assert!(!stolen);
        assert_eq!(q.pop(0).unwrap().0.request_id, 4);
        assert_eq!(q.pop(0).unwrap().0.request_id, 8);
        assert!(q.pop(0).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn pop_steals_from_other_shards_when_home_is_empty() {
        let q = ShardedQueue::new(4, 16);
        q.push(request(1)).unwrap(); // home shard 1
        let (got, stolen) = q.pop(0).unwrap();
        assert_eq!(got.request_id, 1);
        assert!(stolen, "a pop off a non-home shard counts as a steal");
    }

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        assert_eq!(ShardedQueue::new(3, 8).shards(), 4);
        assert_eq!(ShardedQueue::new(0, 8).shards(), 1);
    }
}
