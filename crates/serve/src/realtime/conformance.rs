//! The virtual-clock conformance harness.
//!
//! [`run_conformance`] replays one recorded [`RequestTrace`] through
//! both frontends — the deterministic [`ServingSim`] oracle and the
//! wall-clock [`RealtimeEngine`] — and reconciles the results:
//!
//! * **Exact**: per-request work counters (ops, LUT reads, bytes) must
//!   be equal key-for-key and value-for-value. Work is a pure function
//!   of (model version, attempt count), so any lost request, double
//!   dispatch, wrong-version execution, or divergent retry sequence
//!   shows up here no matter how the threads interleaved.
//! * **Exact**: the sets of completed and rejected request IDs, and the
//!   retry count.
//! * **Within tolerance**: aggregate latency and energy. Batching
//!   composition depends on real scheduling, so these legitimately
//!   drift; the harness bounds the drift instead of pinning it.
//!
//! The harness accepts traces the realtime engine can replay: the
//! injector may carry transient faults, stragglers and LUT corruption,
//! but not scheduled slice failures (those need the oracle's event
//! heap). Model-swap traces conform when the trace leaves a gap for the
//! swapped tenant: both engines then apply the swap between that
//! tenant's requests, which is exactly the per-tenant quiesce the
//! realtime feeder enforces.

use bfree_fault::FaultInjector;
use bfree_obs::Recorder;

use crate::error::ServeError;
use crate::frontend::{Frontend, RequestTrace, WorkCounters};
use crate::realtime::config::RealtimeConfig;
use crate::realtime::engine::RealtimeEngine;
use crate::sim::ServingSim;
use crate::telemetry::Outcome;
use crate::tenant::TenantSpec;

/// One reconciled quantity: the oracle's value, the realtime value,
/// and the relative divergence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reconciled {
    /// The virtual-clock oracle's value.
    pub oracle: f64,
    /// The realtime engine's value.
    pub realtime: f64,
    /// `|realtime - oracle| / max(|oracle|, epsilon)`.
    pub divergence: f64,
}

impl Reconciled {
    fn of(oracle: f64, realtime: f64) -> Self {
        let denom = oracle.abs().max(1e-9);
        Reconciled {
            oracle,
            realtime,
            divergence: (realtime - oracle).abs() / denom,
        }
    }
}

/// The outcome of one conformance replay.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Requests the trace submitted.
    pub submitted: u64,
    /// Whether the per-request work ledgers were exactly equal.
    pub work_exact: bool,
    /// Whether completed / rejected request-ID sets and retry counts
    /// were exactly equal.
    pub outcomes_exact: bool,
    /// Total work both engines agreed on (oracle's ledger total).
    pub total_work: WorkCounters,
    /// Mean completed-request latency, reconciled.
    pub mean_latency_ns: Reconciled,
    /// Mean completed-request energy, reconciled.
    pub mean_energy_pj: Reconciled,
    /// The tolerance the telemetry was checked against.
    pub tolerance: f64,
    /// Whether the engines' final live-telemetry snapshots reconciled
    /// (exact per-tenant counters, exact retries, zero dropped events,
    /// timing means within tolerance). Vacuously `true` when the
    /// telemetry plane is disabled or the engines were reconciled
    /// through the generic [`reconcile`] path.
    pub snapshots_exact: bool,
    /// Human-readable mismatch descriptions (empty on a pass).
    pub mismatches: Vec<String>,
}

impl ConformanceReport {
    /// Whether every exact check held and every reconciled quantity
    /// stayed within tolerance.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Replays `trace` through both engines and reconciles them. The
/// realtime engine runs with the `config.serve` the oracle uses, so
/// the comparison is apples-to-apples by construction.
///
/// # Errors
///
/// Construction and drive errors from either engine; the comparison
/// itself never errors (mismatches land in the report).
pub fn run_conformance(
    config: &RealtimeConfig,
    specs: &[TenantSpec],
    trace: &RequestTrace,
    injector: &FaultInjector,
    tolerance: f64,
) -> Result<ConformanceReport, ServeError> {
    let mut oracle = ServingSim::builder(config.serve.clone(), specs.to_vec())
        .injector(injector.clone())
        .build()?;
    let mut realtime = RealtimeEngine::builder(config.clone(), specs.to_vec())
        .injector(injector.clone())
        .build()?;
    let submitted = oracle.submit_trace(trace)?;
    let rt_submitted = realtime.submit_trace(trace)?;
    debug_assert_eq!(submitted, rt_submitted);
    oracle.drive_to_idle()?;
    realtime.drive_to_idle()?;
    let mut report = reconcile(&oracle, &realtime, submitted, tolerance);
    reconcile_live(&mut report, config, specs, &oracle, &realtime, tolerance)?;
    Ok(report)
}

/// Compares two driven frontends. Exposed so tests can drive engines
/// themselves (e.g. with recorders attached) and still reconcile.
pub fn reconcile<A, B>(
    oracle: &A,
    realtime: &B,
    submitted: u64,
    tolerance: f64,
) -> ConformanceReport
where
    A: Frontend,
    B: Frontend,
{
    let mut mismatches = Vec::new();

    let oracle_ledger = oracle.work_ledger();
    let realtime_ledger = realtime.work_ledger();
    let work_exact = oracle_ledger == realtime_ledger;
    if !work_exact {
        let oracle_map = oracle_ledger.per_request();
        let realtime_map = realtime_ledger.per_request();
        for (id, w) in oracle_map {
            match realtime_map.get(id) {
                None => mismatches.push(format!("request {id}: work charged only by the oracle")),
                Some(rw) if rw != w => mismatches.push(format!(
                    "request {id}: work diverged (oracle {w:?}, realtime {rw:?})"
                )),
                Some(_) => {}
            }
        }
        for id in realtime_map.keys() {
            if !oracle_map.contains_key(id) {
                mismatches.push(format!("request {id}: work charged only by realtime"));
            }
        }
        if mismatches.is_empty() {
            mismatches.push("work ledgers differ".to_string());
        }
    }

    let outcome_set = |records: &[crate::telemetry::RequestRecord]| {
        let mut v: Vec<(u64, bool)> = records
            .iter()
            .map(|r| (r.request_id, r.outcome == Outcome::Completed))
            .collect();
        v.sort_unstable();
        v
    };
    let oracle_outcomes = outcome_set(oracle.serving_telemetry().records());
    let realtime_outcomes = outcome_set(realtime.serving_telemetry().records());
    let oracle_summary = oracle.serving_telemetry().summary();
    let realtime_summary = realtime.serving_telemetry().summary();
    let mut outcomes_exact = oracle_outcomes == realtime_outcomes;
    if !outcomes_exact {
        mismatches.push(format!(
            "terminal outcomes diverged: oracle {} completed / {} rejected, realtime {} / {}",
            oracle_summary.completed,
            oracle_summary.rejected,
            realtime_summary.completed,
            realtime_summary.rejected,
        ));
    }
    if oracle_summary.retries != realtime_summary.retries {
        outcomes_exact = false;
        mismatches.push(format!(
            "retry counts diverged: oracle {} realtime {}",
            oracle_summary.retries, realtime_summary.retries
        ));
    }

    let mean_latency_ns = Reconciled::of(
        oracle_summary.mean_latency_ns,
        realtime_summary.mean_latency_ns,
    );
    let mean_energy_pj = Reconciled::of(
        oracle_summary.energy_per_request.picojoules(),
        realtime_summary.energy_per_request.picojoules(),
    );
    if oracle_summary.completed > 0 {
        if mean_latency_ns.divergence > tolerance {
            mismatches.push(format!(
                "mean latency diverged by {:.1}% (tolerance {:.1}%)",
                mean_latency_ns.divergence * 100.0,
                tolerance * 100.0
            ));
        }
        if mean_energy_pj.divergence > tolerance {
            mismatches.push(format!(
                "mean energy diverged by {:.1}% (tolerance {:.1}%)",
                mean_energy_pj.divergence * 100.0,
                tolerance * 100.0
            ));
        }
    }

    ConformanceReport {
        submitted,
        work_exact,
        outcomes_exact,
        total_work: oracle_ledger.total(),
        mean_latency_ns,
        mean_energy_pj,
        tolerance,
        snapshots_exact: true,
        mismatches,
    }
}

/// Folds the live-snapshot comparison into `report`: the oracle's
/// final snapshot is derived deterministically from its record stream
/// ([`crate::live::final_snapshot`]) and reconciled against the
/// realtime aggregator's last published snapshot.
fn reconcile_live<RO, RR>(
    report: &mut ConformanceReport,
    config: &RealtimeConfig,
    specs: &[TenantSpec],
    oracle: &ServingSim<RO>,
    realtime: &RealtimeEngine<RR>,
    tolerance: f64,
) -> Result<(), ServeError>
where
    RO: Recorder,
    RR: Recorder + Sync,
{
    if !config.telemetry.enabled {
        return Ok(());
    }
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let oracle_snapshot =
        crate::live::final_snapshot(oracle.serving_telemetry(), &names, &config.telemetry)?;
    let realtime_snapshot = realtime.live_snapshot();
    let snapshot_mismatches =
        crate::live::reconcile_snapshots(&oracle_snapshot, &realtime_snapshot, tolerance);
    report.snapshots_exact = snapshot_mismatches.is_empty();
    report.mismatches.extend(snapshot_mismatches);
    Ok(())
}

/// [`run_conformance`] with engines generic over recorders, driving
/// both and returning the engines alongside the report — the
/// observability integration tests use this to inspect recorded
/// events after a conformant run.
///
/// # Errors
///
/// Same as [`run_conformance`].
pub fn run_conformance_recorded<RO, RR>(
    config: &RealtimeConfig,
    specs: &[TenantSpec],
    trace: &RequestTrace,
    injector: &FaultInjector,
    tolerance: f64,
    oracle_recorder: RO,
    realtime_recorder: RR,
) -> Result<(ConformanceReport, ServingSim<RO>, RealtimeEngine<RR>), ServeError>
where
    RO: Recorder,
    RR: Recorder + Sync,
{
    let mut oracle = ServingSim::builder(config.serve.clone(), specs.to_vec())
        .recorder(oracle_recorder)
        .injector(injector.clone())
        .build()?;
    let mut realtime = RealtimeEngine::builder(config.clone(), specs.to_vec())
        .recorder(realtime_recorder)
        .injector(injector.clone())
        .build()?;
    let submitted = oracle.submit_trace(trace)?;
    realtime.submit_trace(trace)?;
    oracle.drive_to_idle()?;
    realtime.drive_to_idle()?;
    let mut report = reconcile(&oracle, &realtime, submitted, tolerance);
    reconcile_live(&mut report, config, specs, &oracle, &realtime, tolerance)?;
    Ok((report, oracle, realtime))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use pim_nn::request::NetworkKind;

    fn config() -> RealtimeConfig {
        RealtimeConfig::builder()
            .workers(2)
            .serve(
                ServeConfig::builder()
                    .max_batch(4)
                    .queue_capacity(4096)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn fault_free_open_loop_trace_conforms() {
        let specs = vec![
            TenantSpec::new("lstm", NetworkKind::LstmTimit),
            TenantSpec::new("bert", NetworkKind::BertBase),
        ];
        let mut trace = RequestTrace::new();
        for i in 0..12u64 {
            trace.submit(i * 5_000, (i % 2) as usize);
        }
        let config = config();
        let injector = FaultInjector::none(config.serve.base.geometry.slices());
        let report = run_conformance(&config, &specs, &trace, &injector, 0.5).unwrap();
        assert!(report.passed(), "mismatches: {:?}", report.mismatches);
        assert!(report.work_exact);
        assert!(report.outcomes_exact);
        assert!(report.snapshots_exact);
        assert_eq!(report.submitted, 12);
        assert!(report.total_work.ops > 0);
        assert!(report.total_work.lut_reads > 0);
        assert!(report.total_work.bytes > 0);
    }

    #[test]
    fn conformance_catches_a_tampered_ledger() {
        // Drive the same trace through two oracles, then tamper with
        // one's ledger via a divergent trace: one extra request.
        let specs = vec![TenantSpec::new("lstm", NetworkKind::LstmTimit)];
        let config = config();
        let mut short = RequestTrace::new();
        short.submit(0, 0);
        let mut long = RequestTrace::new();
        long.submit(0, 0);
        long.submit(1_000, 0);
        let mut a = ServingSim::new(config.serve.clone(), specs.clone()).unwrap();
        let mut b = ServingSim::new(config.serve.clone(), specs).unwrap();
        a.submit_trace(&short).unwrap();
        b.submit_trace(&long).unwrap();
        a.drive_to_idle().unwrap();
        b.drive_to_idle().unwrap();
        let report = reconcile(&a, &b, 1, 0.5);
        assert!(!report.passed());
        assert!(!report.work_exact);
        assert!(report
            .mismatches
            .iter()
            .any(|m| m.contains("only by realtime")));
    }
}
