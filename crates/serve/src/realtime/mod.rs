//! The wall-clock realtime serving front-end.
//!
//! Everything concurrent lives here, behind the same [`Frontend`]
//! abstraction the virtual-clock oracle implements:
//!
//! * [`queue`] — the sharded MPMC admission queue (global capacity,
//!   per-shard FIFO, work-stealing sweep).
//! * [`engine`] — the persistent worker pool, per-tenant lanes, and
//!   continuous batching at layer boundaries.
//! * [`config`] — [`RealtimeConfig`] and its validating builder.
//! * [`conformance`] — the harness that replays one trace through both
//!   engines and reconciles them (exact work counters, bounded
//!   telemetry divergence).
//!
//! [`Frontend`]: crate::Frontend

pub mod config;
pub mod conformance;
pub mod engine;
pub mod queue;

pub use config::{RealtimeConfig, RealtimeConfigBuilder, TelemetryConfig};
pub use conformance::{
    reconcile, run_conformance, run_conformance_recorded, ConformanceReport, Reconciled,
};
pub use engine::{RealtimeEngine, RealtimeEngineBuilder, RealtimeStats};
pub use queue::ShardedQueue;
