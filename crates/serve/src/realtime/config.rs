//! Configuration of the realtime serving front-end.

use crate::error::ServeError;
use crate::scheduler::ServeConfig;

/// Knobs of the live telemetry plane: collection capacity, snapshot
/// cadence, histogram bounds, and the SLO objectives the
/// [`bfree_obs::SloTracker`] evaluates.
///
/// The same knobs drive both engines: the realtime engine's aggregator
/// thread publishes on the cadence in wall time, while the
/// virtual-clock oracle cuts its record stream at the same cadence in
/// virtual time — producing schema-identical snapshot sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Whether the live plane runs at all. Disabled, the engine carries
    /// zero collection overhead (no rings, no aggregator thread).
    pub enabled: bool,
    /// Snapshot publication cadence in nanoseconds (> 0).
    pub snapshot_cadence_ns: u64,
    /// Per-worker event-ring capacity in slots (> 0; rounded up to a
    /// power of two).
    pub ring_capacity: usize,
    /// Lower bound of the latency/energy histograms (≥ 1 ns).
    pub histogram_min_ns: u64,
    /// Upper bound of the latency/energy histograms (> the lower).
    pub histogram_max_ns: u64,
    /// The latency SLO objective: a completion is *good* iff its
    /// end-to-end latency is at most this many nanoseconds.
    pub latency_objective_ns: u64,
    /// Fraction of completions that must be good (finite, in (0, 1]).
    pub latency_target: f64,
    /// Fraction of settled requests that must complete (finite, in
    /// (0, 1]).
    pub availability_target: f64,
    /// Short burn-rate alert window in nanoseconds (> 0).
    pub short_window_ns: u64,
    /// Long burn-rate alert window in nanoseconds (≥ the short one).
    pub long_window_ns: u64,
    /// Short-window burn threshold (finite, > 0).
    pub fast_burn: f64,
    /// Long-window burn threshold (finite, > 0).
    pub slow_burn: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            snapshot_cadence_ns: 10_000_000,
            ring_capacity: 65_536,
            histogram_min_ns: 1_000,
            histogram_max_ns: 10_000_000_000,
            latency_objective_ns: 50_000_000,
            latency_target: 0.99,
            availability_target: 0.999,
            short_window_ns: 50_000_000,
            long_window_ns: 250_000_000,
            fast_burn: 14.4,
            slow_burn: 6.0,
        }
    }
}

impl TelemetryConfig {
    /// The SLO spec the tracker evaluates from these knobs.
    pub fn slo_spec(&self) -> bfree_obs::SloSpec {
        bfree_obs::SloSpec {
            latency_target: self.latency_target,
            availability_target: self.availability_target,
            short_window_ns: self.short_window_ns,
            long_window_ns: self.long_window_ns,
            fast_burn: self.fast_burn,
            slow_burn: self.slow_burn,
        }
    }

    /// Checks parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the offending
    /// parameter.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.snapshot_cadence_ns == 0 {
            return Err(ServeError::InvalidConfig {
                parameter: "telemetry.snapshot_cadence_ns",
                reason: "must be positive".to_string(),
            });
        }
        if self.ring_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                parameter: "telemetry.ring_capacity",
                reason: "must be positive".to_string(),
            });
        }
        if self.histogram_min_ns == 0 {
            return Err(ServeError::InvalidConfig {
                parameter: "telemetry.histogram_min_ns",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.histogram_min_ns >= self.histogram_max_ns {
            return Err(ServeError::InvalidConfig {
                parameter: "telemetry.histogram_max_ns",
                reason: format!(
                    "bounds are degenerate: min {} >= max {}",
                    self.histogram_min_ns, self.histogram_max_ns
                ),
            });
        }
        if self.latency_objective_ns == 0 {
            return Err(ServeError::InvalidConfig {
                parameter: "telemetry.latency_objective_ns",
                reason: "must be positive".to_string(),
            });
        }
        for (parameter, target) in [
            ("telemetry.latency_target", self.latency_target),
            ("telemetry.availability_target", self.availability_target),
        ] {
            if !target.is_finite() || target <= 0.0 || target > 1.0 {
                return Err(ServeError::InvalidConfig {
                    parameter,
                    reason: format!("must be finite in (0, 1], got {target}"),
                });
            }
        }
        if self.short_window_ns == 0 {
            return Err(ServeError::InvalidConfig {
                parameter: "telemetry.short_window_ns",
                reason: "must be positive".to_string(),
            });
        }
        if self.long_window_ns < self.short_window_ns {
            return Err(ServeError::InvalidConfig {
                parameter: "telemetry.long_window_ns",
                reason: format!(
                    "must be at least the short window ({} < {})",
                    self.long_window_ns, self.short_window_ns
                ),
            });
        }
        for (parameter, burn) in [
            ("telemetry.fast_burn", self.fast_burn),
            ("telemetry.slow_burn", self.slow_burn),
        ] {
            if !burn.is_finite() || burn <= 0.0 {
                return Err(ServeError::InvalidConfig {
                    parameter,
                    reason: format!("must be finite and positive, got {burn}"),
                });
            }
        }
        Ok(())
    }
}

/// Configuration of the wall-clock realtime engine: the shared
/// [`ServeConfig`] (machine, batching, retry, deadlines) plus the
/// knobs only a concurrent front-end has — worker count, admission
/// queue sharding, trace replay pacing, and the live telemetry plane.
#[derive(Debug, Clone, PartialEq)]
pub struct RealtimeConfig {
    /// The serving parameters shared with the virtual-clock engine.
    /// Conformance requires the *same* `serve` on both sides.
    pub serve: ServeConfig,
    /// Worker threads in the persistent dispatch pool (≥ 1).
    pub workers: usize,
    /// Admission-queue shards (a power of two, so a request's home
    /// shard is a mask of its ID).
    pub queue_shards: usize,
    /// Trace replay pacing: virtual nanoseconds of trace time replayed
    /// per wall nanosecond. `0.0` replays as fast as the feeder can
    /// push (the throughput-measurement mode); `1.0` replays in real
    /// time. Must be finite and non-negative.
    pub replay_rate: f64,
    /// The live telemetry plane (on by default).
    pub telemetry: TelemetryConfig,
}

impl Default for RealtimeConfig {
    fn default() -> Self {
        RealtimeConfig {
            serve: ServeConfig::paper_default(),
            workers: 4,
            queue_shards: 4,
            replay_rate: 0.0,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl RealtimeConfig {
    /// The canonical realtime setup: the paper-default serving config
    /// behind 4 workers and 4 queue shards, replaying traces at full
    /// speed. Identical to [`Default::default`].
    #[doc(alias = "default")]
    #[must_use]
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A validating builder seeded with
    /// [`paper_default`](RealtimeConfig::paper_default).
    ///
    /// ```
    /// use bfree_serve::RealtimeConfig;
    ///
    /// let config = RealtimeConfig::builder()
    ///     .workers(2)
    ///     .queue_shards(8)
    ///     .build()?;
    /// assert_eq!(config.workers, 2);
    /// # Ok::<(), bfree_serve::ServeError>(())
    /// ```
    pub fn builder() -> RealtimeConfigBuilder {
        RealtimeConfigBuilder::new()
    }

    /// Checks parameter sanity, including the embedded
    /// [`ServeConfig::validate`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the offending
    /// parameter.
    pub fn validate(&self) -> Result<(), ServeError> {
        self.serve.validate()?;
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig {
                parameter: "workers",
                reason: "must be at least 1".to_string(),
            });
        }
        if !self.queue_shards.is_power_of_two() {
            return Err(ServeError::InvalidConfig {
                parameter: "queue_shards",
                reason: format!(
                    "must be a power of two (home shard is id & mask), got {}",
                    self.queue_shards
                ),
            });
        }
        if !self.replay_rate.is_finite() || self.replay_rate < 0.0 {
            return Err(ServeError::InvalidConfig {
                parameter: "replay_rate",
                reason: format!("must be finite and non-negative, got {}", self.replay_rate),
            });
        }
        self.telemetry.validate()?;
        Ok(())
    }
}

/// Builder for [`RealtimeConfig`]: every setter is typed, and
/// [`build`](RealtimeConfigBuilder::build) runs
/// [`RealtimeConfig::validate`], so an invalid combination is caught
/// at construction instead of at pool spawn.
#[derive(Debug, Clone)]
#[must_use = "builders do nothing until .build() is called"]
pub struct RealtimeConfigBuilder {
    config: RealtimeConfig,
}

impl Default for RealtimeConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RealtimeConfigBuilder {
    /// A builder seeded with [`RealtimeConfig::paper_default`].
    pub fn new() -> Self {
        RealtimeConfigBuilder {
            config: RealtimeConfig::paper_default(),
        }
    }

    /// The serving parameters shared with the virtual-clock engine.
    pub fn serve(mut self, serve: ServeConfig) -> Self {
        self.config.serve = serve;
        self
    }

    /// Worker threads in the persistent dispatch pool.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Admission-queue shards (a power of two).
    pub fn queue_shards(mut self, queue_shards: usize) -> Self {
        self.config.queue_shards = queue_shards;
        self
    }

    /// Trace replay pacing (`0.0` = as fast as possible).
    pub fn replay_rate(mut self, replay_rate: f64) -> Self {
        self.config.replay_rate = replay_rate;
        self
    }

    /// The live telemetry plane configuration.
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the offending
    /// parameter.
    pub fn build(self) -> Result<RealtimeConfig, ServeError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        assert!(RealtimeConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn builder_rejects_bad_parameters_by_name() {
        let err = RealtimeConfig::builder().workers(0).build().unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidConfig {
                parameter: "workers",
                ..
            }
        ));
        let err = RealtimeConfig::builder()
            .queue_shards(3)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidConfig {
                parameter: "queue_shards",
                ..
            }
        ));
        let err = RealtimeConfig::builder()
            .replay_rate(f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidConfig {
                parameter: "replay_rate",
                ..
            }
        ));
        let err = RealtimeConfig::builder()
            .replay_rate(-1.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidConfig {
                parameter: "replay_rate",
                ..
            }
        ));
    }

    #[test]
    fn telemetry_knobs_are_validated_by_name() {
        let cases: Vec<(&'static str, TelemetryConfig)> = vec![
            (
                "telemetry.snapshot_cadence_ns",
                TelemetryConfig {
                    snapshot_cadence_ns: 0,
                    ..TelemetryConfig::default()
                },
            ),
            (
                "telemetry.ring_capacity",
                TelemetryConfig {
                    ring_capacity: 0,
                    ..TelemetryConfig::default()
                },
            ),
            (
                "telemetry.histogram_min_ns",
                TelemetryConfig {
                    histogram_min_ns: 0,
                    ..TelemetryConfig::default()
                },
            ),
            (
                "telemetry.histogram_max_ns",
                TelemetryConfig {
                    histogram_min_ns: 100,
                    histogram_max_ns: 100,
                    ..TelemetryConfig::default()
                },
            ),
            (
                "telemetry.latency_objective_ns",
                TelemetryConfig {
                    latency_objective_ns: 0,
                    ..TelemetryConfig::default()
                },
            ),
            (
                "telemetry.latency_target",
                TelemetryConfig {
                    latency_target: f64::NAN,
                    ..TelemetryConfig::default()
                },
            ),
            (
                "telemetry.availability_target",
                TelemetryConfig {
                    availability_target: 1.5,
                    ..TelemetryConfig::default()
                },
            ),
            (
                "telemetry.short_window_ns",
                TelemetryConfig {
                    short_window_ns: 0,
                    ..TelemetryConfig::default()
                },
            ),
            (
                "telemetry.long_window_ns",
                TelemetryConfig {
                    short_window_ns: 100,
                    long_window_ns: 50,
                    ..TelemetryConfig::default()
                },
            ),
            (
                "telemetry.fast_burn",
                TelemetryConfig {
                    fast_burn: -1.0,
                    ..TelemetryConfig::default()
                },
            ),
            (
                "telemetry.slow_burn",
                TelemetryConfig {
                    slow_burn: f64::INFINITY,
                    ..TelemetryConfig::default()
                },
            ),
        ];
        for (expected, telemetry) in cases {
            let err = RealtimeConfig::builder()
                .telemetry(telemetry)
                .build()
                .unwrap_err();
            match err {
                ServeError::InvalidConfig { parameter, .. } => {
                    assert_eq!(parameter, expected);
                }
                other => panic!("expected InvalidConfig for {expected}, got {other:?}"),
            }
        }
    }

    #[test]
    fn disabled_telemetry_still_validates_its_knobs() {
        // A disabled plane with bad knobs is still a config error: the
        // knobs round-trip through JSON and may be re-enabled later.
        let err = RealtimeConfig::builder()
            .telemetry(TelemetryConfig {
                enabled: false,
                snapshot_cadence_ns: 0,
                ..TelemetryConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig { .. }));
    }

    #[test]
    fn slo_spec_mirrors_the_knobs() {
        let telemetry = TelemetryConfig::default();
        let spec = telemetry.slo_spec();
        assert_eq!(spec.latency_target, telemetry.latency_target);
        assert_eq!(spec.short_window_ns, telemetry.short_window_ns);
        assert_eq!(spec.fast_burn, telemetry.fast_burn);
    }

    #[test]
    fn embedded_serve_config_is_validated_too() {
        let mut serve = ServeConfig::paper_default();
        serve.max_batch = 0;
        let err = RealtimeConfig::builder().serve(serve).build().unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidConfig {
                parameter: "max_batch",
                ..
            }
        ));
    }
}
