//! Configuration of the realtime serving front-end.

use crate::error::ServeError;
use crate::scheduler::ServeConfig;

/// Configuration of the wall-clock realtime engine: the shared
/// [`ServeConfig`] (machine, batching, retry, deadlines) plus the
/// knobs only a concurrent front-end has — worker count, admission
/// queue sharding, and trace replay pacing.
#[derive(Debug, Clone, PartialEq)]
pub struct RealtimeConfig {
    /// The serving parameters shared with the virtual-clock engine.
    /// Conformance requires the *same* `serve` on both sides.
    pub serve: ServeConfig,
    /// Worker threads in the persistent dispatch pool (≥ 1).
    pub workers: usize,
    /// Admission-queue shards (a power of two, so a request's home
    /// shard is a mask of its ID).
    pub queue_shards: usize,
    /// Trace replay pacing: virtual nanoseconds of trace time replayed
    /// per wall nanosecond. `0.0` replays as fast as the feeder can
    /// push (the throughput-measurement mode); `1.0` replays in real
    /// time. Must be finite and non-negative.
    pub replay_rate: f64,
}

impl Default for RealtimeConfig {
    fn default() -> Self {
        RealtimeConfig {
            serve: ServeConfig::paper_default(),
            workers: 4,
            queue_shards: 4,
            replay_rate: 0.0,
        }
    }
}

impl RealtimeConfig {
    /// The canonical realtime setup: the paper-default serving config
    /// behind 4 workers and 4 queue shards, replaying traces at full
    /// speed. Identical to [`Default::default`].
    #[doc(alias = "default")]
    #[must_use]
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A validating builder seeded with
    /// [`paper_default`](RealtimeConfig::paper_default).
    ///
    /// ```
    /// use bfree_serve::RealtimeConfig;
    ///
    /// let config = RealtimeConfig::builder()
    ///     .workers(2)
    ///     .queue_shards(8)
    ///     .build()?;
    /// assert_eq!(config.workers, 2);
    /// # Ok::<(), bfree_serve::ServeError>(())
    /// ```
    pub fn builder() -> RealtimeConfigBuilder {
        RealtimeConfigBuilder::new()
    }

    /// Checks parameter sanity, including the embedded
    /// [`ServeConfig::validate`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the offending
    /// parameter.
    pub fn validate(&self) -> Result<(), ServeError> {
        self.serve.validate()?;
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig {
                parameter: "workers",
                reason: "must be at least 1".to_string(),
            });
        }
        if !self.queue_shards.is_power_of_two() {
            return Err(ServeError::InvalidConfig {
                parameter: "queue_shards",
                reason: format!(
                    "must be a power of two (home shard is id & mask), got {}",
                    self.queue_shards
                ),
            });
        }
        if !self.replay_rate.is_finite() || self.replay_rate < 0.0 {
            return Err(ServeError::InvalidConfig {
                parameter: "replay_rate",
                reason: format!("must be finite and non-negative, got {}", self.replay_rate),
            });
        }
        Ok(())
    }
}

/// Builder for [`RealtimeConfig`]: every setter is typed, and
/// [`build`](RealtimeConfigBuilder::build) runs
/// [`RealtimeConfig::validate`], so an invalid combination is caught
/// at construction instead of at pool spawn.
#[derive(Debug, Clone)]
#[must_use = "builders do nothing until .build() is called"]
pub struct RealtimeConfigBuilder {
    config: RealtimeConfig,
}

impl Default for RealtimeConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RealtimeConfigBuilder {
    /// A builder seeded with [`RealtimeConfig::paper_default`].
    pub fn new() -> Self {
        RealtimeConfigBuilder {
            config: RealtimeConfig::paper_default(),
        }
    }

    /// The serving parameters shared with the virtual-clock engine.
    pub fn serve(mut self, serve: ServeConfig) -> Self {
        self.config.serve = serve;
        self
    }

    /// Worker threads in the persistent dispatch pool.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Admission-queue shards (a power of two).
    pub fn queue_shards(mut self, queue_shards: usize) -> Self {
        self.config.queue_shards = queue_shards;
        self
    }

    /// Trace replay pacing (`0.0` = as fast as possible).
    pub fn replay_rate(mut self, replay_rate: f64) -> Self {
        self.config.replay_rate = replay_rate;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the offending
    /// parameter.
    pub fn build(self) -> Result<RealtimeConfig, ServeError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        assert!(RealtimeConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn builder_rejects_bad_parameters_by_name() {
        let err = RealtimeConfig::builder().workers(0).build().unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidConfig {
                parameter: "workers",
                ..
            }
        ));
        let err = RealtimeConfig::builder()
            .queue_shards(3)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidConfig {
                parameter: "queue_shards",
                ..
            }
        ));
        let err = RealtimeConfig::builder()
            .replay_rate(f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidConfig {
                parameter: "replay_rate",
                ..
            }
        ));
        let err = RealtimeConfig::builder()
            .replay_rate(-1.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidConfig {
                parameter: "replay_rate",
                ..
            }
        ));
    }

    #[test]
    fn embedded_serve_config_is_validated_too() {
        let mut serve = ServeConfig::paper_default();
        serve.max_batch = 0;
        let err = RealtimeConfig::builder().serve(serve).build().unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidConfig {
                parameter: "max_batch",
                ..
            }
        ));
    }
}
