//! The wall-clock realtime serving engine.
//!
//! [`RealtimeEngine`] runs the same serving semantics as the
//! virtual-clock [`crate::ServingSim`] — same tenants, same pricing,
//! same fault and retry discipline — but executes them on real
//! threads: a feeder replays the recorded trace into a
//! [`ShardedQueue`], and a persistent pool of workers
//! ([`bfree::par::run_worker_pool`]) pulls requests, routes them to
//! per-tenant *lanes*, and services them with continuous batching —
//! requests join and leave an in-flight batch at layer boundaries
//! rather than waiting for the next full dispatch.
//!
//! Timestamps in the emitted telemetry are **virtual**: each lane
//! carries its own nanosecond clock advanced by the priced per-layer
//! latencies, so latency percentiles are comparable with the oracle's
//! even though completion *order* (and therefore batching) depends on
//! real scheduling. What does not depend on scheduling is the work:
//! both engines charge identical [`WorkCounters`] per executed service
//! attempt, which is exactly what the conformance harness
//! ([`super::run_conformance`]) pins down.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use bfree_fault::FaultInjector;
use bfree_obs::{
    LiveAccumulator, LiveCollector, LiveEvent, LiveMetric, NullRecorder, Recorder, SnapshotCell,
    SpscRing, Subsystem, TelemetrySnapshot, Unit,
};
use pim_arch::Energy;

use crate::error::{RejectReason, ServeError};
use crate::frontend::{Frontend, RequestTrace, TraceOp, WorkCounters, WorkLedger};
use crate::live::{energy_value, reason_code};
use crate::realtime::config::RealtimeConfig;
use crate::realtime::queue::ShardedQueue;
use crate::registry::ModelRegistry;
use crate::scheduler::QueuedRequest;
use crate::telemetry::{Outcome, RequestRecord, ServingTelemetry, Telemetry};
use crate::tenant::{Tenant, TenantSpec};

/// A trace operation staged for replay. Swap states are priced at
/// [`Frontend::submit_trace`] time so applying one inside the worker
/// pool cannot fail.
#[derive(Debug)]
enum PlannedOp {
    Submit {
        at_ns: u64,
        tenant: usize,
    },
    Swap {
        at_ns: u64,
        tenant: usize,
        version: u64,
        state: Box<Tenant>,
    },
}

/// One request currently riding an in-flight batch.
struct Member {
    req: QueuedRequest,
    /// Index into the serviced layer list (and `per_layer` timings).
    layer: usize,
    dispatch_ns: u64,
    work: WorkCounters,
    energy_pj: f64,
}

/// Concurrency counters from one realtime run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RealtimeStats {
    /// Requests popped off a non-home queue shard.
    pub steals: u64,
    /// Batches launched (continuous-batching sessions, not layer steps).
    pub batches: u64,
    /// Requests that joined an already-running batch at a layer
    /// boundary.
    pub joins: u64,
    /// Largest concurrent batch observed.
    pub max_batch_seen: usize,
    /// Wall-clock duration of [`RealtimeEngine::drive`].
    pub wall_ns: u64,
}

/// Everything the feeder and workers share for one drive.
struct SharedRun<'a, R: Recorder + Sync> {
    config: &'a RealtimeConfig,
    injector: &'a FaultInjector,
    registry: &'a ModelRegistry,
    recorder: &'a R,
    bindings: Vec<RwLock<Arc<Tenant>>>,
    lanes: Vec<Lane>,
    queue: ShardedQueue,
    free_slices: AtomicUsize,
    live: AtomicUsize,
    live_per_tenant: Vec<AtomicUsize>,
    feeder_done: AtomicBool,
    /// The live-telemetry collection plane: one SPSC ring per worker
    /// plus one for the feeder (index `workers`). `None` when the
    /// telemetry knobs disable collection — every hot-path emission is
    /// then a single branch on a `None`.
    collector: Option<LiveCollector>,
    records: Mutex<Vec<RequestRecord>>,
    ledger: Mutex<WorkLedger>,
    retries: AtomicU64,
    busy_slice_ns: AtomicU64,
    steals: AtomicU64,
    batches: AtomicU64,
    joins: AtomicU64,
    max_batch_seen: AtomicUsize,
}

struct Lane {
    state: Mutex<LaneState>,
    clock_ns: AtomicU64,
}

#[derive(Default)]
struct LaneState {
    pending: std::collections::VecDeque<QueuedRequest>,
    running: bool,
}

/// The wall-clock, multi-threaded serving engine.
///
/// Build it with [`RealtimeEngine::new`] (or
/// [`builder`](RealtimeEngine::builder)), submit a recorded
/// [`RequestTrace`] through the [`Frontend`] impl, then
/// [`Frontend::drive_to_idle`] spawns the worker pool, replays the
/// trace, and collects telemetry. One engine drives one trace; a
/// second drive returns [`ServeError::Realtime`].
#[derive(Debug)]
pub struct RealtimeEngine<R: Recorder + Sync = NullRecorder> {
    config: RealtimeConfig,
    tenants: Vec<Tenant>,
    registry: Arc<ModelRegistry>,
    injector: FaultInjector,
    plan: Vec<PlannedOp>,
    telemetry: Telemetry,
    work: WorkLedger,
    stats: RealtimeStats,
    driven: bool,
    recorder: R,
    live_cell: Arc<SnapshotCell>,
}

impl RealtimeEngine {
    /// Builds an engine for `specs` with instrumentation compiled out.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::ServingSim::new`], plus
    /// [`ServeError::InvalidConfig`] for bad realtime parameters.
    pub fn new(config: RealtimeConfig, specs: Vec<TenantSpec>) -> Result<Self, ServeError> {
        Self::construct(config, specs, NullRecorder, None)
    }

    /// Starts a [`RealtimeEngineBuilder`] for recorder / injector
    /// composition.
    pub fn builder(config: RealtimeConfig, specs: Vec<TenantSpec>) -> RealtimeEngineBuilder {
        RealtimeEngineBuilder {
            config,
            specs,
            recorder: NullRecorder,
            injector: None,
        }
    }
}

/// Validated construction path for [`RealtimeEngine`], mirroring
/// [`crate::ServingSimBuilder`].
#[derive(Debug)]
#[must_use = "call build() to construct the engine"]
pub struct RealtimeEngineBuilder<R: Recorder + Sync = NullRecorder> {
    config: RealtimeConfig,
    specs: Vec<TenantSpec>,
    recorder: R,
    injector: Option<FaultInjector>,
}

impl<R: Recorder + Sync> RealtimeEngineBuilder<R> {
    /// Swaps in an event recorder (replacing the default
    /// [`NullRecorder`]). The recorder is shared by every worker
    /// thread, hence the `Sync` bound.
    pub fn recorder<R2: Recorder + Sync>(self, recorder: R2) -> RealtimeEngineBuilder<R2> {
        RealtimeEngineBuilder {
            config: self.config,
            specs: self.specs,
            recorder,
            injector: self.injector,
        }
    }

    /// Runs the engine under `injector`'s *transient* fault load.
    /// Scheduled slice failures are a virtual-clock concept and are
    /// rejected here: the realtime pool has no event heap to replay
    /// them against.
    pub fn injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Validates everything and constructs the engine.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for bad parameters, an injector
    /// resolved for the wrong slice count, or an injector that
    /// schedules slice failures; [`ServeError::InvalidTenants`] for an
    /// empty tenant list; [`ServeError::Arch`] if a tenant cannot be
    /// priced.
    pub fn build(self) -> Result<RealtimeEngine<R>, ServeError> {
        RealtimeEngine::construct(self.config, self.specs, self.recorder, self.injector)
    }
}

impl<R: Recorder + Sync> RealtimeEngine<R> {
    fn construct(
        config: RealtimeConfig,
        specs: Vec<TenantSpec>,
        recorder: R,
        injector: Option<FaultInjector>,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        if specs.is_empty() {
            return Err(ServeError::InvalidTenants {
                reason: "at least one tenant is required".to_string(),
            });
        }
        let slices = config.serve.base.geometry.slices();
        let injector = injector.unwrap_or_else(|| FaultInjector::none(slices));
        if injector.slices() != slices {
            return Err(ServeError::InvalidConfig {
                parameter: "injector",
                reason: format!(
                    "fault injector resolved for {} slices but the cache has {slices}",
                    injector.slices()
                ),
            });
        }
        if !injector.slice_failures().is_empty() {
            return Err(ServeError::InvalidConfig {
                parameter: "injector",
                reason: "scheduled slice failures require the virtual-clock engine; \
                         the realtime pool supports transient faults, stragglers \
                         and LUT corruption only"
                    .to_string(),
            });
        }
        let tenants: Vec<Tenant> = specs
            .into_iter()
            .map(|spec| Tenant::new(spec, &config.serve.base))
            .collect::<Result<_, _>>()?;
        let registry = Arc::new(ModelRegistry::from_specs(
            tenants.iter().map(|t| t.spec().clone()),
        ));
        let telemetry = Telemetry::new(slices);
        Ok(RealtimeEngine {
            config,
            tenants,
            registry,
            injector,
            plan: Vec::new(),
            telemetry,
            work: WorkLedger::new(),
            stats: RealtimeStats::default(),
            driven: false,
            recorder,
            live_cell: Arc::new(SnapshotCell::new()),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RealtimeConfig {
        &self.config
    }

    /// The tenants, in submission-index order (post-drive: the bindings
    /// live at the end of the run, swaps applied).
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// The per-tenant model binding table.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The recorder this engine emits to.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Concurrency counters from the completed drive (zeros before).
    pub fn stats(&self) -> RealtimeStats {
        self.stats
    }

    /// Telemetry collected so far.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The cell the background aggregator publishes live
    /// [`TelemetrySnapshot`]s into. Clone the `Arc` before
    /// [`drive`](Self::drive) and poll it from another thread to watch
    /// the run in flight; after the drive it holds the final cumulative
    /// snapshot.
    pub fn live_cell(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.live_cell)
    }

    /// The most recent live snapshot (the final cumulative one once
    /// the drive returns; [`TelemetrySnapshot::empty`] before the
    /// first publication or when telemetry is disabled).
    pub fn live_snapshot(&self) -> Arc<TelemetrySnapshot> {
        self.live_cell.load()
    }

    /// Prices `spec` eagerly and stages a hot-swap at trace time
    /// `at_ns`: when the feeder reaches that point it quiesces the one
    /// tenant lane (waits for its live requests to settle) and flips
    /// the binding in a single `Arc` store — the other lanes and the
    /// worker pool never stop.
    ///
    /// # Errors
    ///
    /// [`ServeError::Arch`] when the replacement spec cannot be priced;
    /// [`ServeError::InvalidTenants`] for an out-of-range index.
    pub fn schedule_model_swap(
        &mut self,
        tenant: usize,
        at_ns: u64,
        version: u64,
        spec: TenantSpec,
    ) -> Result<(), ServeError> {
        if tenant >= self.tenants.len() {
            return Err(ServeError::InvalidTenants {
                reason: format!(
                    "swap targets tenant {tenant} but only {} are bound",
                    self.tenants.len()
                ),
            });
        }
        let state = Tenant::new(spec, &self.config.serve.base)?;
        self.plan.push(PlannedOp::Swap {
            at_ns,
            tenant,
            version,
            state: Box::new(state),
        });
        Ok(())
    }

    /// Stages one submission at trace time `at_ns`.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidTenants`] for an out-of-range index.
    pub fn submit(&mut self, tenant: usize, at_ns: u64) -> Result<(), ServeError> {
        if tenant >= self.tenants.len() {
            return Err(ServeError::InvalidTenants {
                reason: format!(
                    "submit targets tenant {tenant} but only {} are bound",
                    self.tenants.len()
                ),
            });
        }
        self.plan.push(PlannedOp::Submit { at_ns, tenant });
        Ok(())
    }

    /// Spawns the feeder and the worker pool, replays the staged plan,
    /// and blocks until every request is terminal.
    ///
    /// # Errors
    ///
    /// [`ServeError::Realtime`] if the engine was already driven.
    pub fn drive(&mut self) -> Result<(), ServeError> {
        if self.driven {
            return Err(ServeError::Realtime {
                reason: "engine already driven; build a fresh engine per trace".to_string(),
            });
        }
        self.driven = true;
        let mut plan = std::mem::take(&mut self.plan);
        // The plan replays in trace order; stage it sorted (stably) the
        // same way the Frontend contract sorts, in case submit() /
        // schedule_model_swap() were called directly out of order.
        plan.sort_by_key(|op| match op {
            PlannedOp::Submit { at_ns, .. } | PlannedOp::Swap { at_ns, .. } => *at_ns,
        });
        let max_batch = self.config.serve.max_batch;
        // Price every (tenant, batch) pair up front: workers then read
        // reports through `&Tenant` with no memoization lock.
        for tenant in &mut self.tenants {
            tenant.warm_reports(max_batch);
        }
        for op in &mut plan {
            if let PlannedOp::Swap { state, .. } = op {
                state.warm_reports(max_batch);
            }
        }
        let submit_times: Vec<u64> = plan
            .iter()
            .filter_map(|op| match op {
                PlannedOp::Submit { at_ns, .. } => Some(*at_ns),
                PlannedOp::Swap { .. } => None,
            })
            .collect();

        let workers = self.config.workers;
        let telemetry_cfg = &self.config.telemetry;
        let tenant_names: Vec<String> = self.tenants.iter().map(|t| t.name().to_string()).collect();
        // One ring per worker plus one for the feeder; the accumulator
        // is owned by the aggregator thread for the whole drive.
        let accumulator = if telemetry_cfg.enabled {
            Some(
                LiveAccumulator::new(
                    tenant_names.len(),
                    telemetry_cfg.histogram_min_ns,
                    telemetry_cfg.histogram_max_ns,
                    telemetry_cfg.latency_objective_ns,
                )
                .map_err(|err| ServeError::Realtime {
                    reason: format!("live accumulator construction failed: {err}"),
                })?,
            )
        } else {
            None
        };
        let collector = telemetry_cfg
            .enabled
            .then(|| LiveCollector::new(workers + 1, telemetry_cfg.ring_capacity));

        let shared = SharedRun {
            config: &self.config,
            injector: &self.injector,
            registry: &self.registry,
            recorder: &self.recorder,
            bindings: self
                .tenants
                .drain(..)
                .map(|t| RwLock::new(Arc::new(t)))
                .collect(),
            lanes: (0..self.registry.len())
                .map(|_| Lane {
                    state: Mutex::new(LaneState::default()),
                    clock_ns: AtomicU64::new(0),
                })
                .collect(),
            queue: ShardedQueue::new(self.config.queue_shards, self.config.serve.queue_capacity),
            free_slices: AtomicUsize::new(self.config.serve.base.geometry.slices()),
            live: AtomicUsize::new(0),
            live_per_tenant: (0..self.registry.len())
                .map(|_| AtomicUsize::new(0))
                .collect(),
            feeder_done: AtomicBool::new(false),
            collector,
            records: Mutex::new(Vec::new()),
            ledger: Mutex::new(WorkLedger::new()),
            retries: AtomicU64::new(0),
            busy_slice_ns: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            joins: AtomicU64::new(0),
            max_batch_seen: AtomicUsize::new(0),
        };

        let started = Instant::now();
        let agg_done = AtomicBool::new(false);
        let pool = std::thread::scope(|scope| {
            let shared = &shared;
            scope.spawn(move || feed(shared, plan, started));
            let aggregator = accumulator.map(|acc| {
                let cell: &SnapshotCell = &self.live_cell;
                let names: &[String] = &tenant_names;
                let done = &agg_done;
                scope.spawn(move || aggregate(shared, done, cell, acc, names, started))
            });
            // Each worker takes its own producer ring once, on its own
            // thread, and carries it through the loop — the hot path
            // never re-derives it.
            let result = bfree::par::try_run_worker_pool_with(
                workers,
                |worker| shared.collector.as_ref().map(|c| c.producer(worker)),
                |worker, ring| worker_loop(shared, worker, *ring),
            );
            agg_done.store(true, Ordering::Release);
            // Wake the aggregator if it is parked between drains so the
            // final drain + publish happens now, not a poll later.
            if let Some(handle) = &aggregator {
                handle.thread().unpark();
            }
            result
        });
        let wall_ns = started.elapsed().as_nanos() as u64;
        // A panicked worker surfaces as a typed serving error instead of
        // unwinding through the scope with the telemetry half-built.
        pool.map_err(|panic| ServeError::Realtime {
            reason: format!("worker pool died: {panic}"),
        })?;

        // Reassemble owned state. Workers are joined, so every Arc is
        // unique again.
        self.tenants = shared
            .bindings
            .into_iter()
            .map(|slot| {
                let arc = slot
                    .into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone())
            })
            .collect();
        let mut records = shared
            .records
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        self.work = shared
            .ledger
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());

        // Rebuild the telemetry in a deterministic order: submissions
        // in trace order, then terminal records by (virtual completion
        // time, request id).
        for at_ns in submit_times {
            self.telemetry.note_submit(at_ns);
        }
        records.sort_by_key(|r| (r.complete_ns, r.request_id));
        let deadline_ns = self.config.serve.deadline_ns;
        for record in records {
            if record.outcome == Outcome::Completed
                && deadline_ns
                    .is_some_and(|d| record.complete_ns > record.submit_ns.saturating_add(d))
            {
                self.telemetry.note_deadline_violation();
            }
            self.telemetry.push(record);
        }
        for _ in 0..shared.retries.load(Ordering::Relaxed) {
            self.telemetry.note_retry();
        }
        let makespan = shared
            .lanes
            .iter()
            .map(|lane| lane.clock_ns.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        self.telemetry.note_busy_integral(
            shared.busy_slice_ns.load(Ordering::Relaxed) as f64,
            makespan,
        );

        self.stats = RealtimeStats {
            steals: shared.steals.load(Ordering::Relaxed),
            batches: shared.batches.load(Ordering::Relaxed),
            joins: shared.joins.load(Ordering::Relaxed),
            max_batch_seen: shared.max_batch_seen.load(Ordering::Relaxed),
            wall_ns,
        };
        if self.recorder.is_enabled() {
            self.recorder.counter(
                Subsystem::Serve,
                "realtime/steals",
                self.stats.steals as f64,
                Unit::Count,
            );
            self.recorder.counter(
                Subsystem::Serve,
                "realtime/batches",
                self.stats.batches as f64,
                Unit::Count,
            );
            self.recorder.counter(
                Subsystem::Serve,
                "realtime/joins",
                self.stats.joins as f64,
                Unit::Count,
            );
            self.recorder.histogram_with(
                Subsystem::Serve,
                "realtime/wall",
                wall_ns as f64,
                Unit::Nanoseconds,
                || format!("workers={workers}"),
            );
        }
        Ok(())
    }
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Pushes one live event onto this thread's producer ring, if the live
/// plane is collecting. A full ring counts the drop and moves on — the
/// hot path never blocks on telemetry.
fn emit(
    ring: Option<&SpscRing>,
    metric: LiveMetric,
    tenant: usize,
    value: u64,
    time_ns: u64,
    id: u64,
) {
    if let Some(ring) = ring {
        ring.push(LiveEvent {
            metric,
            tenant: tenant as u32,
            value,
            time_ns,
            id,
        });
    }
}

/// The background aggregator: drains every producer ring on a short
/// poll, folds the events into the cumulative [`LiveAccumulator`], and
/// publishes an immutable [`TelemetrySnapshot`] into `cell` on the
/// configured wall-clock cadence — plus one final snapshot, after a
/// last drain, once the worker pool has exited (`done`).
fn aggregate<R: Recorder + Sync>(
    shared: &SharedRun<'_, R>,
    done: &AtomicBool,
    cell: &SnapshotCell,
    mut acc: LiveAccumulator,
    tenant_names: &[String],
    started: Instant,
) {
    let Some(collector) = shared.collector.as_ref() else {
        return;
    };
    let cadence_ns = shared.config.telemetry.snapshot_cadence_ns.max(1);
    let slices = shared.config.serve.base.geometry.slices() as u64;
    let mut seq = 0u64;
    let mut next_publish_ns = cadence_ns;
    loop {
        // Load `done` before draining: the pool's completion
        // happens-before the Release store, so a final iteration that
        // observes it sees every ring fully published.
        let finished = done.load(Ordering::Acquire);
        let drained = collector.drain_into(&mut acc);
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        // Sample the queue-depth gauge here rather than having the
        // feeder emit an event per submit: the max only needs drain
        // granularity, and this halves the hot-path ring traffic.
        acc.observe(LiveEvent {
            metric: LiveMetric::QueueDepth,
            tenant: 0,
            value: shared.queue.len() as u64,
            time_ns: elapsed_ns,
            id: 0,
        });
        if finished || elapsed_ns >= next_publish_ns {
            let up_to_ns = shared
                .lanes
                .iter()
                .map(|lane| lane.clock_ns.load(Ordering::Acquire))
                .max()
                .unwrap_or(0);
            let busy = shared.busy_slice_ns.load(Ordering::Relaxed);
            let pool_utilization = if up_to_ns > 0 && slices > 0 {
                busy as f64 / (up_to_ns.saturating_mul(slices)) as f64
            } else {
                0.0
            };
            let snapshot = acc.snapshot(
                seq,
                up_to_ns,
                shared.queue.len() as u64,
                pool_utilization,
                collector.dropped(),
                tenant_names,
            );
            cell.publish(Arc::new(snapshot));
            seq += 1;
            next_publish_ns = elapsed_ns.saturating_add(cadence_ns);
        }
        if finished {
            return;
        }
        // Adaptive pacing: while events flow, stay hot (yield) so ring
        // occupancy and shutdown latency stay in the microseconds; only
        // an empty drain parks for real. Parking (not sleeping) lets
        // the driver unpark this thread the moment the pool finishes —
        // a plain sleep's timer slack would otherwise be a fixed
        // hundreds-of-microseconds tail on every drive() call.
        if drained == 0 {
            std::thread::park_timeout(Duration::from_micros(100));
        } else {
            std::thread::yield_now();
        }
    }
}

/// The feeder: replays the plan in trace order, pacing against the
/// wall clock when a replay rate is set.
fn feed<R: Recorder + Sync>(shared: &SharedRun<'_, R>, plan: Vec<PlannedOp>, started: Instant) {
    let rate = shared.config.replay_rate;
    // The feeder owns the collector's last ring (index `workers`).
    let ring = shared
        .collector
        .as_ref()
        .map(|c| c.producer(shared.config.workers));
    let mut next_request_id = 0u64;
    for op in plan {
        let at_ns = match &op {
            PlannedOp::Submit { at_ns, .. } | PlannedOp::Swap { at_ns, .. } => *at_ns,
        };
        if rate > 0.0 {
            // `rate` virtual ns replay per wall ns: wait until the wall
            // clock catches up with this event's trace time.
            loop {
                let wall_ns = started.elapsed().as_nanos() as f64;
                if wall_ns * rate >= at_ns as f64 {
                    break;
                }
                std::thread::yield_now();
            }
        }
        match op {
            PlannedOp::Submit { at_ns, tenant } => {
                let request_id = next_request_id;
                next_request_id += 1;
                shared
                    .recorder
                    .instant(Subsystem::Serve, "request/arrival", at_ns as f64, || {
                        format!("request={request_id} tenant={tenant}")
                    });
                let request = QueuedRequest {
                    request_id,
                    tenant,
                    submit_ns: at_ns,
                    attempt: 0,
                };
                let fits = shared.bindings[tenant]
                    .read()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .fits();
                if !fits {
                    reject(shared, request, at_ns, RejectReason::DoesNotFit, ring);
                    continue;
                }
                shared.live.fetch_add(1, Ordering::AcqRel);
                shared.live_per_tenant[tenant].fetch_add(1, Ordering::AcqRel);
                // Queue depth is a gauge the aggregator samples from
                // the shared queue directly (no per-submit event): one
                // event per submit would double the hot-path ring
                // traffic for a value that only needs to be observed at
                // drain granularity.
                if let Err(reason) = shared.queue.push(request) {
                    shared.live_per_tenant[tenant].fetch_sub(1, Ordering::AcqRel);
                    shared.live.fetch_sub(1, Ordering::AcqRel);
                    reject(shared, request, at_ns, reason, ring);
                }
            }
            PlannedOp::Swap {
                tenant,
                version,
                state,
                ..
            } => {
                // Hot-swap without draining the pool: only this
                // tenant's lane is quiesced; every other lane (and the
                // queue) keeps flowing.
                while shared.live_per_tenant[tenant].load(Ordering::Acquire) > 0 {
                    std::thread::yield_now();
                }
                shared
                    .registry
                    .publish(tenant, version, state.spec().clone());
                *shared.bindings[tenant]
                    .write()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()) = Arc::new(*state);
                shared
                    .recorder
                    .instant(Subsystem::Model, "model/swap", at_ns as f64, || {
                        format!("tenant={tenant} version={version}")
                    });
            }
        }
    }
    shared.feeder_done.store(true, Ordering::Release);
}

/// One worker of the persistent pool: pop, route to the request's
/// tenant lane, and run the lane if nobody else is. `ring` is this
/// worker's private producer side of the live plane.
fn worker_loop<R: Recorder + Sync>(
    shared: &SharedRun<'_, R>,
    worker: usize,
    ring: Option<&SpscRing>,
) {
    loop {
        match shared.queue.pop(worker) {
            Some((request, stolen)) => {
                if stolen {
                    shared.steals.fetch_add(1, Ordering::Relaxed);
                }
                let lane = &shared.lanes[request.tenant];
                let run_now = {
                    let mut state = lock(&lane.state);
                    state.pending.push_back(request);
                    if state.running {
                        false
                    } else {
                        state.running = true;
                        true
                    }
                };
                if run_now {
                    run_lane(shared, request.tenant, ring);
                }
            }
            None => {
                if shared.feeder_done.load(Ordering::Acquire)
                    && shared.live.load(Ordering::Acquire) == 0
                {
                    return;
                }
                std::thread::yield_now();
            }
        }
    }
}

/// Drives one tenant lane until its pending queue drains: forms a
/// batch, walks it layer by layer on the lane's virtual clock, retires
/// finished members, and admits joiners at every layer boundary.
fn run_lane<R: Recorder + Sync>(shared: &SharedRun<'_, R>, tenant: usize, ring: Option<&SpscRing>) {
    let lane = &shared.lanes[tenant];
    let max_batch = shared.config.serve.max_batch;
    loop {
        let binding = Arc::clone(
            &shared.bindings[tenant]
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        let mut members: Vec<Member> = Vec::new();
        {
            let mut state = lock(&lane.state);
            while members.len() < max_batch {
                let Some(request) = state.pending.pop_front() else {
                    break;
                };
                members.push(admit(lane, request));
            }
            if members.is_empty() {
                // The linger protocol: only clear `running` under the
                // lock and with pending verified empty, so a request
                // parked by another worker is never stranded.
                state.running = false;
                return;
            }
        }
        members.retain(|member| match shed(shared, lane, member) {
            Some(reason) => {
                settle_rejected(shared, member.req, lane, reason, ring);
                false
            }
            None => true,
        });
        if members.is_empty() {
            continue;
        }
        let demand = binding.demand_slices();
        // Spin-acquire slices; the holder is always an actively-running
        // lane, so waiting here cannot deadlock.
        loop {
            let free = shared.free_slices.load(Ordering::Acquire);
            if free >= demand
                && shared
                    .free_slices
                    .compare_exchange(free, free - demand, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                break;
            }
            std::thread::yield_now();
        }
        shared.batches.fetch_add(1, Ordering::Relaxed);
        let total_layers = binding.layer_work().len();
        while !members.is_empty() {
            let b = members.len();
            shared.max_batch_seen.fetch_max(b, Ordering::Relaxed);
            let report = binding
                .cached_report(b)
                .expect("reports are prewarmed for every batch size");
            let total_lat = report.total_latency().nanoseconds();
            let energy_pj = report.total_energy().picojoules();
            let mut step_ns_f = 0.0f64;
            for member in &mut members {
                let timing = &report.per_layer[member.layer];
                let lat = timing.latency.nanoseconds();
                step_ns_f = step_ns_f.max(lat);
                member.work += binding.layer_work()[member.layer];
                if total_lat > 0.0 {
                    member.energy_pj += energy_pj / b as f64 * (lat / total_lat);
                }
                member.layer += 1;
            }
            let step_ns = (step_ns_f.ceil() as u64).max(1);
            let now = lane.clock_ns.fetch_add(step_ns, Ordering::AcqRel) + step_ns;
            shared
                .busy_slice_ns
                .fetch_add(step_ns * demand as u64, Ordering::Relaxed);
            let mut i = 0;
            while i < members.len() {
                if members[i].layer >= total_layers {
                    let member = members.swap_remove(i);
                    retire(shared, lane, &binding, member, now, b, ring);
                } else {
                    i += 1;
                }
            }
            // Continuous batching: requests queued meanwhile join the
            // in-flight batch at this layer boundary instead of waiting
            // for the lane to drain.
            let mut state = lock(&lane.state);
            while members.len() < max_batch {
                let Some(request) = state.pending.pop_front() else {
                    break;
                };
                shared.joins.fetch_add(1, Ordering::Relaxed);
                members.push(admit(lane, request));
            }
        }
        shared.free_slices.fetch_add(demand, Ordering::AcqRel);
    }
}

/// Stamps a freshly-admitted member with the lane's current virtual
/// time (clamped forward from its submission time).
fn admit(lane: &Lane, req: QueuedRequest) -> Member {
    let now = lane.clock_ns.load(Ordering::Acquire);
    Member {
        req,
        layer: 0,
        dispatch_ns: now.max(req.submit_ns),
        work: WorkCounters::ZERO,
        energy_pj: 0.0,
    }
}

/// Timeout / deadline shedding at batch formation, mirroring the
/// oracle's queue-age policing on the lane's virtual clock.
fn shed<R: Recorder + Sync>(
    shared: &SharedRun<'_, R>,
    lane: &Lane,
    member: &Member,
) -> Option<RejectReason> {
    let now = lane.clock_ns.load(Ordering::Acquire);
    let config = &shared.config.serve;
    if config
        .deadline_ns
        .is_some_and(|d| now > member.req.submit_ns.saturating_add(d))
    {
        return Some(RejectReason::DeadlineExpired);
    }
    if config
        .timeout_ns
        .is_some_and(|t| now > member.req.submit_ns.saturating_add(t))
    {
        return Some(RejectReason::TimedOut);
    }
    None
}

/// Settles one member whose service walk finished: the work is charged
/// (the attempt ran), then the fault discipline decides completion,
/// retry, or exhaustion.
fn retire<R: Recorder + Sync>(
    shared: &SharedRun<'_, R>,
    lane: &Lane,
    binding: &Tenant,
    member: Member,
    now: u64,
    batch: usize,
    ring: Option<&SpscRing>,
) {
    let request = member.req;
    lock(&shared.ledger).charge(request.request_id, member.work);
    if shared
        .injector
        .transient_error(request.request_id, request.attempt)
    {
        shared
            .recorder
            .instant(Subsystem::Fault, "fault/injected", now as f64, || {
                format!(
                    "request={} attempt={} kind=transient",
                    request.request_id, request.attempt
                )
            });
        let next_attempt = request.attempt + 1;
        if next_attempt < shared.config.serve.retry.max_attempts {
            shared.retries.fetch_add(1, Ordering::Relaxed);
            emit(
                ring,
                LiveMetric::Retry,
                request.tenant,
                0,
                now,
                request.request_id,
            );
            let retry = QueuedRequest {
                attempt: next_attempt,
                ..request
            };
            if let Err(reason) = shared.queue.push(retry) {
                settle_rejected(shared, retry, lane, reason, ring);
            }
        } else {
            settle_rejected(shared, request, lane, RejectReason::RetriesExhausted, ring);
        }
        return;
    }
    shared
        .recorder
        .counter(Subsystem::Serve, "request/completed", 1.0, Unit::Count);
    shared.recorder.histogram_with(
        Subsystem::Serve,
        "latency/total",
        now.saturating_sub(request.submit_ns) as f64,
        Unit::Nanoseconds,
        || format!("request={}", request.request_id),
    );
    lock(&shared.records).push(RequestRecord {
        request_id: request.request_id,
        tenant: request.tenant,
        tenant_name: binding.name().to_string(),
        submit_ns: request.submit_ns,
        dispatch_ns: member.dispatch_ns,
        complete_ns: now,
        batch,
        energy: Energy::from_pj(member.energy_pj),
        outcome: Outcome::Completed,
    });
    emit(
        ring,
        LiveMetric::Latency,
        request.tenant,
        now.saturating_sub(request.submit_ns),
        now,
        request.request_id,
    );
    emit(
        ring,
        LiveMetric::Energy,
        request.tenant,
        energy_value(member.energy_pj),
        now,
        request.request_id,
    );
    shared.live_per_tenant[request.tenant].fetch_sub(1, Ordering::AcqRel);
    shared.live.fetch_sub(1, Ordering::AcqRel);
}

/// Terminal rejection from inside the pool: records the outcome and
/// releases the request's liveness tickets.
fn settle_rejected<R: Recorder + Sync>(
    shared: &SharedRun<'_, R>,
    request: QueuedRequest,
    lane: &Lane,
    reason: RejectReason,
    ring: Option<&SpscRing>,
) {
    let now = lane.clock_ns.load(Ordering::Acquire);
    push_rejection(shared, request, now, reason, ring);
    shared.live_per_tenant[request.tenant].fetch_sub(1, Ordering::AcqRel);
    shared.live.fetch_sub(1, Ordering::AcqRel);
}

/// Rejection at admission time (feeder side): liveness was never
/// granted, so only the record is emitted.
fn reject<R: Recorder + Sync>(
    shared: &SharedRun<'_, R>,
    request: QueuedRequest,
    now: u64,
    reason: RejectReason,
    ring: Option<&SpscRing>,
) {
    push_rejection(shared, request, now, reason, ring);
}

fn push_rejection<R: Recorder + Sync>(
    shared: &SharedRun<'_, R>,
    request: QueuedRequest,
    now: u64,
    reason: RejectReason,
    ring: Option<&SpscRing>,
) {
    shared
        .recorder
        .counter(Subsystem::Serve, "request/rejected", 1.0, Unit::Count);
    shared
        .recorder
        .instant(Subsystem::Serve, "request/rejection", now as f64, || {
            format!("request={} reason={}", request.request_id, reason.label())
        });
    let tenant_name = shared.bindings[request.tenant]
        .read()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .name()
        .to_string();
    lock(&shared.records).push(RequestRecord {
        request_id: request.request_id,
        tenant: request.tenant,
        tenant_name,
        submit_ns: request.submit_ns,
        dispatch_ns: now,
        complete_ns: now,
        batch: 0,
        energy: Energy::ZERO,
        outcome: Outcome::Rejected(reason),
    });
    emit(
        ring,
        LiveMetric::Rejected,
        request.tenant,
        reason_code(reason),
        now,
        request.request_id,
    );
}

impl<R: Recorder + Sync> Frontend for RealtimeEngine<R> {
    fn engine(&self) -> &'static str {
        "realtime"
    }

    fn submit_trace(&mut self, trace: &RequestTrace) -> Result<u64, ServeError> {
        for event in trace.events() {
            let (TraceOp::Submit { tenant } | TraceOp::Swap { tenant, .. }) = &event.op;
            if *tenant >= self.registry.len() {
                return Err(ServeError::InvalidTenants {
                    reason: format!(
                        "trace targets tenant {tenant} but only {} are bound",
                        self.registry.len()
                    ),
                });
            }
        }
        let mut submitted = 0;
        for event in trace.ordered() {
            match event.op {
                TraceOp::Submit { tenant } => {
                    self.submit(tenant, event.at_ns)?;
                    submitted += 1;
                }
                TraceOp::Swap {
                    tenant,
                    version,
                    spec,
                } => {
                    self.schedule_model_swap(tenant, event.at_ns, version, spec)?;
                }
            }
        }
        Ok(submitted)
    }

    fn drive_to_idle(&mut self) -> Result<(), ServeError> {
        self.drive()
    }

    fn serving_telemetry(&self) -> &ServingTelemetry {
        &self.telemetry
    }

    fn work_ledger(&self) -> &WorkLedger {
        &self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_nn::request::NetworkKind;

    fn config(workers: usize) -> RealtimeConfig {
        RealtimeConfig::builder()
            .workers(workers)
            .serve(
                crate::ServeConfig::builder()
                    .max_batch(4)
                    .queue_capacity(4096)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap()
    }

    fn lstm() -> TenantSpec {
        TenantSpec::new("lstm", NetworkKind::LstmTimit)
    }

    #[test]
    fn drives_a_small_trace_to_completion() {
        let mut engine = RealtimeEngine::new(config(2), vec![lstm()]).unwrap();
        let mut trace = RequestTrace::new();
        for i in 0..10u64 {
            trace.submit(i * 1_000, 0);
        }
        assert_eq!(engine.submit_trace(&trace).unwrap(), 10);
        engine.drive_to_idle().unwrap();
        let telemetry = engine.serving_telemetry();
        let summary = telemetry.summary();
        assert_eq!(summary.submitted, 10);
        assert_eq!(summary.completed, 10);
        assert_eq!(summary.rejected, 0);
        assert_eq!(engine.work_ledger().requests(), 10);
        let expected = engine.tenants()[0].request_work();
        for &work in engine.work_ledger().per_request().values() {
            assert_eq!(work, expected);
        }
        assert!(engine.stats().wall_ns > 0);
        assert!(engine.stats().batches > 0);
    }

    #[test]
    fn live_snapshot_counts_every_completion_losslessly() {
        let mut engine = RealtimeEngine::new(config(2), vec![lstm()]).unwrap();
        let mut trace = RequestTrace::new();
        for i in 0..25u64 {
            trace.submit(i * 1_000, 0);
        }
        engine.submit_trace(&trace).unwrap();
        engine.drive_to_idle().unwrap();
        let snapshot = engine.live_snapshot();
        assert_eq!(snapshot.completed(), 25);
        assert_eq!(snapshot.rejected(), 0);
        assert_eq!(snapshot.dropped, 0, "collection must be lossless");
        assert_eq!(snapshot.tenants[0].name, "lstm");
        assert!(snapshot.tenants[0].latency_p50_ns > 0);
        assert!(snapshot.tenants[0].mean_energy_pj > 0.0);
        assert!(snapshot.up_to_ns > 0);
        // The exposition renders the same counts.
        let text = snapshot.to_openmetrics();
        assert!(text.contains("bfree_live_completed_total{tenant=\"lstm\"} 25"));
    }

    #[test]
    fn disabled_telemetry_publishes_nothing() {
        let mut cfg = config(2);
        cfg.telemetry.enabled = false;
        let mut engine = RealtimeEngine::new(cfg, vec![lstm()]).unwrap();
        let mut trace = RequestTrace::new();
        for i in 0..5u64 {
            trace.submit(i * 1_000, 0);
        }
        engine.submit_trace(&trace).unwrap();
        engine.drive_to_idle().unwrap();
        let snapshot = engine.live_snapshot();
        assert_eq!(*snapshot, bfree_obs::TelemetrySnapshot::empty());
        // The serving telemetry itself is unaffected.
        assert_eq!(engine.serving_telemetry().summary().completed, 5);
    }

    #[test]
    fn second_drive_is_an_error() {
        let mut engine = RealtimeEngine::new(config(1), vec![lstm()]).unwrap();
        let mut trace = RequestTrace::new();
        trace.submit(0, 0);
        engine.submit_trace(&trace).unwrap();
        engine.drive_to_idle().unwrap();
        assert!(matches!(engine.drive(), Err(ServeError::Realtime { .. })));
    }

    #[test]
    fn rejects_slice_failure_plans() {
        let slices = RealtimeConfig::paper_default().serve.base.geometry.slices();
        let plan = bfree_fault::FaultPlan {
            slice_failure_rate: 1.0,
            failure_horizon_ns: 1_000_000,
            ..bfree_fault::FaultPlan::none()
        };
        let injector = bfree_fault::FaultInjector::new(plan, 7, slices, 4096).unwrap();
        let err = RealtimeEngine::builder(RealtimeConfig::paper_default(), vec![lstm()])
            .injector(injector)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidConfig {
                parameter: "injector",
                ..
            }
        ));
    }

    #[test]
    fn out_of_range_trace_tenant_is_rejected_up_front() {
        let mut engine = RealtimeEngine::new(config(1), vec![lstm()]).unwrap();
        let mut trace = RequestTrace::new();
        trace.submit(0, 3);
        assert!(matches!(
            engine.submit_trace(&trace),
            Err(ServeError::InvalidTenants { .. })
        ));
        assert!(engine.plan.is_empty());
    }
}
