//! Live-telemetry bridging between the two serving engines.
//!
//! The wall-clock [`crate::RealtimeEngine`] produces
//! [`TelemetrySnapshot`]s from its lock-free collection plane as real
//! time passes. The virtual-clock oracle ([`crate::ServingSim`]) is
//! single-threaded and deterministic, so its snapshot sequence is
//! instead *derived*: [`snapshot_series`] cuts the finished record
//! stream at the same cadence in virtual time and folds each prefix
//! through the identical [`LiveAccumulator`]. Both engines therefore
//! emit the same schema with exactly-comparable counters, which is
//! what [`reconcile_snapshots`] (called from the conformance harness)
//! pins down: per-tenant completion/rejection/shed counts and global
//! retries must agree exactly, distribution means within the harness
//! tolerance, and neither side may have dropped a single event.

use bfree_obs::{LiveAccumulator, LiveEvent, LiveMetric, TelemetrySnapshot};

use crate::error::{RejectReason, ServeError};
use crate::realtime::TelemetryConfig;
use crate::telemetry::{Outcome, Telemetry};

/// The wire code a [`RejectReason`] carries in a
/// [`LiveMetric::Rejected`] event. Codes at or above
/// [`bfree_obs::REASON_SHED`] count as load shedding in the snapshot's
/// `shed` counter — that covers [`RejectReason::Shed`] and
/// [`RejectReason::DeadlineExpired`], the two load-policing outcomes.
pub fn reason_code(reason: RejectReason) -> u64 {
    match reason {
        RejectReason::QueueFull => 0,
        RejectReason::TimedOut => 1,
        RejectReason::DoesNotFit => 2,
        RejectReason::RetriesExhausted => 3,
        RejectReason::Shed => 4,
        RejectReason::DeadlineExpired => 5,
    }
}

/// Converts an energy charge to the integer picojoules the live plane
/// records. Both engines round the same way, so energy histograms fold
/// comparable samples.
pub fn energy_value(pj: f64) -> u64 {
    if pj.is_finite() && pj > 0.0 {
        pj.round() as u64
    } else {
        0
    }
}

/// An accumulator sized from the telemetry knobs.
fn accumulator(tenants: usize, config: &TelemetryConfig) -> Result<LiveAccumulator, ServeError> {
    LiveAccumulator::new(
        tenants,
        config.histogram_min_ns,
        config.histogram_max_ns,
        config.latency_objective_ns,
    )
    .map_err(|err| ServeError::InvalidConfig {
        parameter: "telemetry.histogram_min_ns",
        reason: err.to_string(),
    })
}

/// Derives the deterministic snapshot sequence the virtual-clock
/// oracle would have published: the record stream is cut at every
/// multiple of the snapshot cadence (in virtual time) through the last
/// terminal event, and each prefix folds through the same
/// [`LiveAccumulator`] the realtime aggregator uses.
///
/// Determinism: records are folded sorted by `(complete_ns,
/// request_id)`, every quantity is integer-counter or
/// integer-histogram arithmetic, and nothing depends on job counts or
/// wall time — the same telemetry always yields bit-identical
/// snapshots. Oracle-specific conventions:
///
/// * `retries` are only attributed on the *final* snapshot (the oracle
///   records a run-total, not retry times); the final totals are what
///   conformance compares.
/// * `queue_depth` at a cut is submissions at or before the cut minus
///   requests dispatched (or settled) by it.
/// * `pool_utilization` is only known once the busy integral closes,
///   so it too appears on the final snapshot only.
/// * `dropped` is always 0: there are no rings to overflow.
///
/// # Errors
///
/// [`ServeError::InvalidConfig`] for degenerate histogram bounds
/// (normally impossible — [`TelemetryConfig::validate`] rejects them).
pub fn snapshot_series(
    telemetry: &Telemetry,
    tenant_names: &[String],
    config: &TelemetryConfig,
) -> Result<Vec<TelemetrySnapshot>, ServeError> {
    let cadence = config.snapshot_cadence_ns.max(1);
    let mut records: Vec<_> = telemetry.records().iter().collect();
    records.sort_by_key(|r| (r.complete_ns, r.request_id));
    let mut submit_times: Vec<u64> = records.iter().map(|r| r.submit_ns).collect();
    submit_times.sort_unstable();
    let mut dispatch_times: Vec<u64> = records.iter().map(|r| r.dispatch_ns).collect();
    dispatch_times.sort_unstable();

    let last_event_ns = records.iter().map(|r| r.complete_ns).max().unwrap_or(0);
    let cuts = last_event_ns.div_ceil(cadence).max(1);
    let summary = telemetry.summary();

    let mut acc = accumulator(tenant_names.len(), config)?;
    let mut series = Vec::with_capacity(cuts as usize);
    let mut next_record = 0usize;
    for seq in 0..cuts {
        let cut_ns = (seq + 1) * cadence;
        while next_record < records.len() && records[next_record].complete_ns <= cut_ns {
            let record = records[next_record];
            let tenant = record.tenant as u32;
            match record.outcome {
                Outcome::Completed => {
                    acc.observe(LiveEvent {
                        metric: LiveMetric::Latency,
                        tenant,
                        value: record.latency_ns(),
                        time_ns: record.complete_ns,
                        id: record.request_id,
                    });
                    acc.observe(LiveEvent {
                        metric: LiveMetric::Energy,
                        tenant,
                        value: energy_value(record.energy.picojoules()),
                        time_ns: record.complete_ns,
                        id: record.request_id,
                    });
                }
                Outcome::Rejected(reason) => {
                    acc.observe(LiveEvent {
                        metric: LiveMetric::Rejected,
                        tenant,
                        value: reason_code(reason),
                        time_ns: record.complete_ns,
                        id: record.request_id,
                    });
                }
            }
            next_record += 1;
        }
        let final_cut = seq + 1 == cuts;
        if final_cut {
            for _ in 0..summary.retries {
                acc.observe(LiveEvent {
                    metric: LiveMetric::Retry,
                    tenant: 0,
                    value: 0,
                    time_ns: cut_ns,
                    id: 0,
                });
            }
        }
        let submitted = submit_times.partition_point(|&t| t <= cut_ns) as u64;
        let settled = dispatch_times.partition_point(|&t| t <= cut_ns) as u64;
        let queue_depth = submitted.saturating_sub(settled);
        let pool_utilization = if final_cut {
            summary.pool_utilization
        } else {
            0.0
        };
        series.push(acc.snapshot(seq, cut_ns, queue_depth, pool_utilization, 0, tenant_names));
    }
    Ok(series)
}

/// The oracle's final cumulative snapshot — the one
/// [`reconcile_snapshots`] compares against the realtime engine's.
///
/// # Errors
///
/// Same contract as [`snapshot_series`].
pub fn final_snapshot(
    telemetry: &Telemetry,
    tenant_names: &[String],
    config: &TelemetryConfig,
) -> Result<TelemetrySnapshot, ServeError> {
    let mut series = snapshot_series(telemetry, tenant_names, config)?;
    Ok(series.pop().unwrap_or_else(TelemetrySnapshot::empty))
}

/// Compares the oracle's and the realtime engine's final snapshots:
/// exact agreement on every per-tenant completion/rejection/shed/
/// SLO-good-relevant counter that does not depend on timing, exact
/// global retries, zero drops on both sides, and relative agreement on
/// mean latency/energy within `tolerance`. Returns human-readable
/// mismatch descriptions (empty = conformant).
pub fn reconcile_snapshots(
    oracle: &TelemetrySnapshot,
    realtime: &TelemetrySnapshot,
    tolerance: f64,
) -> Vec<String> {
    let mut mismatches = Vec::new();
    if oracle.tenants.len() != realtime.tenants.len() {
        mismatches.push(format!(
            "snapshot tenant count diverged: oracle {} vs realtime {}",
            oracle.tenants.len(),
            realtime.tenants.len()
        ));
        return mismatches;
    }
    for (i, (o, r)) in oracle.tenants.iter().zip(&realtime.tenants).enumerate() {
        if o.name != r.name {
            mismatches.push(format!(
                "tenant {i} name diverged: oracle `{}` vs realtime `{}`",
                o.name, r.name
            ));
        }
        for (what, ov, rv) in [
            ("completed", o.completed, r.completed),
            ("rejected", o.rejected, r.rejected),
            ("shed", o.shed, r.shed),
        ] {
            if ov != rv {
                mismatches.push(format!(
                    "tenant {i} ({}) {what} diverged: oracle {ov} vs realtime {rv}",
                    o.name
                ));
            }
        }
        for (what, ov, rv) in [
            ("mean latency", o.mean_latency_ns, r.mean_latency_ns),
            ("mean energy", o.mean_energy_pj, r.mean_energy_pj),
        ] {
            // Symmetric relative difference: means are legitimately
            // scheduling-dependent (batch composition differs under
            // load), so the bound must not depend on which engine
            // happened to be slower.
            let scale = ov.abs().max(rv.abs()).max(1.0);
            if ((ov - rv) / scale).abs() > tolerance {
                mismatches.push(format!(
                    "tenant {i} ({}) {what} outside tolerance {tolerance}: \
                     oracle {ov:.3} vs realtime {rv:.3}",
                    o.name
                ));
            }
        }
    }
    if oracle.retries != realtime.retries {
        mismatches.push(format!(
            "snapshot retries diverged: oracle {} vs realtime {}",
            oracle.retries, realtime.retries
        ));
    }
    for (side, snapshot) in [("oracle", oracle), ("realtime", realtime)] {
        if snapshot.dropped != 0 {
            mismatches.push(format!(
                "{side} snapshot dropped {} live events — collection must be lossless",
                snapshot.dropped
            ));
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::RequestRecord;
    use pim_arch::Energy;

    fn record(
        id: u64,
        tenant: usize,
        submit: u64,
        complete: u64,
        outcome: Outcome,
    ) -> RequestRecord {
        RequestRecord {
            request_id: id,
            tenant,
            tenant_name: format!("t{tenant}"),
            submit_ns: submit,
            dispatch_ns: submit + 10,
            complete_ns: complete,
            batch: 1,
            energy: Energy::from_pj(100.0),
            outcome,
        }
    }

    fn telemetry_with(records: Vec<RequestRecord>) -> Telemetry {
        let mut telemetry = Telemetry::new(16);
        for r in &records {
            telemetry.note_submit(r.submit_ns);
        }
        for r in records {
            telemetry.push(r);
        }
        telemetry
    }

    fn names() -> Vec<String> {
        vec!["t0".to_string(), "t1".to_string()]
    }

    fn config() -> TelemetryConfig {
        TelemetryConfig {
            snapshot_cadence_ns: 1_000,
            ..TelemetryConfig::default()
        }
    }

    #[test]
    fn series_is_cumulative_and_cut_on_the_cadence() {
        let telemetry = telemetry_with(vec![
            record(0, 0, 0, 500, Outcome::Completed),
            record(1, 1, 100, 1_500, Outcome::Completed),
            record(2, 0, 200, 2_500, Outcome::Rejected(RejectReason::Shed)),
        ]);
        let series = snapshot_series(&telemetry, &names(), &config()).unwrap();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].up_to_ns, 1_000);
        assert_eq!(series[0].completed(), 1);
        assert_eq!(series[1].completed(), 2);
        assert_eq!(series[2].completed(), 2);
        assert_eq!(series[2].tenants[0].shed, 1);
        assert!(series.iter().all(|s| s.dropped == 0));
        // Sequence numbers are dense.
        for (i, snap) in series.iter().enumerate() {
            assert_eq!(snap.seq, i as u64);
        }
    }

    #[test]
    fn series_is_a_pure_function_of_the_telemetry() {
        let telemetry = telemetry_with(
            (0..50)
                .map(|i| {
                    record(
                        i,
                        (i % 2) as usize,
                        i * 10,
                        i * 10 + 400,
                        Outcome::Completed,
                    )
                })
                .collect(),
        );
        let a = snapshot_series(&telemetry, &names(), &config()).unwrap();
        let b = snapshot_series(&telemetry, &names(), &config()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reconcile_accepts_identical_snapshots() {
        let telemetry = telemetry_with(vec![record(0, 0, 0, 500, Outcome::Completed)]);
        let snap = final_snapshot(&telemetry, &names(), &config()).unwrap();
        assert!(reconcile_snapshots(&snap, &snap, 0.0).is_empty());
    }

    #[test]
    fn reconcile_flags_exact_counter_divergence() {
        let oracle = final_snapshot(
            &telemetry_with(vec![record(0, 0, 0, 500, Outcome::Completed)]),
            &names(),
            &config(),
        )
        .unwrap();
        let realtime = final_snapshot(
            &telemetry_with(vec![record(
                0,
                0,
                0,
                500,
                Outcome::Rejected(RejectReason::QueueFull),
            )]),
            &names(),
            &config(),
        )
        .unwrap();
        let mismatches = reconcile_snapshots(&oracle, &realtime, 1.0);
        assert!(
            mismatches.iter().any(|m| m.contains("completed diverged")),
            "{mismatches:?}"
        );
        assert!(mismatches.iter().any(|m| m.contains("rejected diverged")));
    }

    #[test]
    fn reconcile_flags_dropped_events() {
        let telemetry = telemetry_with(vec![record(0, 0, 0, 500, Outcome::Completed)]);
        let oracle = final_snapshot(&telemetry, &names(), &config()).unwrap();
        let mut lossy = oracle.clone();
        lossy.dropped = 3;
        let mismatches = reconcile_snapshots(&oracle, &lossy, 1.0);
        assert!(mismatches.iter().any(|m| m.contains("dropped 3")));
    }

    #[test]
    fn reconcile_bounds_timing_means_without_requiring_equality() {
        let telemetry = telemetry_with(vec![record(0, 0, 0, 500, Outcome::Completed)]);
        let oracle = final_snapshot(&telemetry, &names(), &config()).unwrap();
        let mut skewed = oracle.clone();
        skewed.tenants[0].mean_latency_ns *= 1.4;
        assert!(reconcile_snapshots(&oracle, &skewed, 0.5).is_empty());
        assert!(!reconcile_snapshots(&oracle, &skewed, 0.1).is_empty());
    }

    #[test]
    fn reason_codes_partition_shedding() {
        use bfree_obs::REASON_SHED;
        assert!(reason_code(RejectReason::Shed) >= REASON_SHED);
        assert!(reason_code(RejectReason::DeadlineExpired) >= REASON_SHED);
        assert!(reason_code(RejectReason::QueueFull) < REASON_SHED);
        assert!(reason_code(RejectReason::TimedOut) < REASON_SHED);
        assert!(reason_code(RejectReason::DoesNotFit) < REASON_SHED);
        assert!(reason_code(RejectReason::RetriesExhausted) < REASON_SHED);
    }

    #[test]
    fn energy_values_are_rounded_and_guarded() {
        assert_eq!(energy_value(99.6), 100);
        assert_eq!(energy_value(0.0), 0);
        assert_eq!(energy_value(-5.0), 0);
        assert_eq!(energy_value(f64::NAN), 0);
    }
}
