//! # bfree-serve
//!
//! A deterministic, virtual-clock, multi-tenant inference *serving*
//! simulator layered on [`bfree`]: where [`bfree::BfreeSimulator`] prices
//! one network at one batch size on a dedicated cache, this crate models
//! the production question the ROADMAP points at — many request streams
//! sharing one 35 MB / 14-slice BFree cache.
//!
//! The pieces:
//!
//! * [`SlicePool`] — partitions the cache's slices (and therefore its
//!   4480 subarrays) among co-resident tenants, with typed rejection
//!   when a tenant does not fit;
//! * [`TenantSpec`] / [`Tenant`] — a network + precision + replication
//!   demand, mapped onto its slice share via [`bfree::Mapper`];
//! * [`Scheduler`] policies ([`SchedPolicy`]) with an admission queue,
//!   a batching window that coalesces same-tenant requests, timeouts and
//!   bounded-queue backpressure;
//! * [`CoTenancyModel`] — composes per-tenant [`bfree::BfreeSimulator`]
//!   phase reports with shared-resource contention: DRAM streaming
//!   bandwidth divided across concurrently loading tenants, and the
//!   [`bfree::InterferenceModel`]-derived slowdown of conventional cache
//!   traffic;
//! * [`ServingSim`] — the event-driven engine (u64-nanosecond virtual
//!   clock, no wall time, no hash-order nondeterminism);
//! * [`Telemetry`] — per-request latency/energy records, pool
//!   utilization, and p50/p95/p99 summaries exportable as CSV rows;
//! * [`Frontend`] — the engine-agnostic serving API: record a
//!   [`RequestTrace`], replay it through an engine, collect
//!   [`ServingTelemetry`] and a [`WorkLedger`] of per-request work;
//! * [`realtime`] — the wall-clock, multi-threaded front-end
//!   ([`RealtimeEngine`]): sharded admission queue, work-stealing
//!   worker pool, continuous batching — conformance-checked against
//!   the virtual-clock oracle ([`realtime::run_conformance`]);
//! * [`live`] — the live-telemetry bridge: [`snapshot_series`] derives
//!   the oracle's deterministic [`bfree_obs::TelemetrySnapshot`]
//!   sequence from finished records, and [`reconcile_snapshots`] pins
//!   both engines to the same snapshot schema and counters.
//!
//! ```
//! use bfree_serve::{ServeConfig, ServingSim, TenantSpec};
//! use pim_nn::request::NetworkKind;
//!
//! let tenants = vec![
//!     TenantSpec::new("lstm", NetworkKind::LstmTimit).with_replication(2),
//!     TenantSpec::new("bert", NetworkKind::BertBase),
//! ];
//! let mut sim = ServingSim::new(ServeConfig::default(), tenants).unwrap();
//! // Two LSTM requests and one BERT request arrive close together.
//! sim.submit(0, 0);
//! sim.submit(0, 10_000);
//! sim.submit(1, 20_000);
//! let telemetry = sim.run_to_idle();
//! assert_eq!(telemetry.summary().completed, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config_json;
pub mod contention;
pub mod driver;
pub mod error;
pub mod frontend;
pub mod live;
pub mod pool;
pub mod realtime;
pub mod registry;
pub mod scheduler;
pub mod sim;
pub mod telemetry;
pub mod tenant;

pub use contention::CoTenancyModel;
pub use driver::{ClosedLoopDriver, OpenLoopDriver};
pub use error::{RejectReason, ServeError};
pub use frontend::{Frontend, RequestTrace, TraceEvent, TraceOp, WorkCounters, WorkLedger};
pub use live::{final_snapshot, reconcile_snapshots, snapshot_series};
pub use pool::{SliceAllocation, SlicePool};
pub use realtime::{
    ConformanceReport, RealtimeConfig, RealtimeConfigBuilder, RealtimeEngine,
    RealtimeEngineBuilder, RealtimeStats, ShardedQueue, TelemetryConfig,
};
pub use registry::{ArtifactIntegrity, IntegrityReport, ModelRegistry, ModelVersion};
pub use scheduler::{SchedPolicy, Scheduler, ServeConfig, ServeConfigBuilder};
pub use sim::{ServingSim, ServingSimBuilder};
pub use telemetry::{Outcome, RequestRecord, ServingSummary, ServingTelemetry, Telemetry};
pub use tenant::{Tenant, TenantSpec};

/// Convenient glob import for serving binaries and tests.
pub mod prelude {
    pub use crate::{
        ClosedLoopDriver, Frontend, OpenLoopDriver, Outcome, RealtimeConfig, RealtimeConfigBuilder,
        RealtimeEngine, RejectReason, RequestTrace, SchedPolicy, ServeConfig, ServeConfigBuilder,
        ServeError, ServingSim, ServingTelemetry, Telemetry, TenantSpec, WorkCounters, WorkLedger,
    };
    pub use bfree::prelude::*;
    pub use pim_nn::request::NetworkKind;
}
