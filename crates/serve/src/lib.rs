//! # bfree-serve
//!
//! A deterministic, virtual-clock, multi-tenant inference *serving*
//! simulator layered on [`bfree`]: where [`bfree::BfreeSimulator`] prices
//! one network at one batch size on a dedicated cache, this crate models
//! the production question the ROADMAP points at — many request streams
//! sharing one 35 MB / 14-slice BFree cache.
//!
//! The pieces:
//!
//! * [`SlicePool`] — partitions the cache's slices (and therefore its
//!   4480 subarrays) among co-resident tenants, with typed rejection
//!   when a tenant does not fit;
//! * [`TenantSpec`] / [`Tenant`] — a network + precision + replication
//!   demand, mapped onto its slice share via [`bfree::Mapper`];
//! * [`Scheduler`] policies ([`SchedPolicy`]) with an admission queue,
//!   a batching window that coalesces same-tenant requests, timeouts and
//!   bounded-queue backpressure;
//! * [`CoTenancyModel`] — composes per-tenant [`bfree::BfreeSimulator`]
//!   phase reports with shared-resource contention: DRAM streaming
//!   bandwidth divided across concurrently loading tenants, and the
//!   [`bfree::InterferenceModel`]-derived slowdown of conventional cache
//!   traffic;
//! * [`ServingSim`] — the event-driven engine (u64-nanosecond virtual
//!   clock, no wall time, no hash-order nondeterminism);
//! * [`Telemetry`] — per-request latency/energy records, pool
//!   utilization, and p50/p95/p99 summaries exportable as CSV rows.
//!
//! ```
//! use bfree_serve::{ServeConfig, ServingSim, TenantSpec};
//! use pim_nn::request::NetworkKind;
//!
//! let tenants = vec![
//!     TenantSpec::new("lstm", NetworkKind::LstmTimit).with_replication(2),
//!     TenantSpec::new("bert", NetworkKind::BertBase),
//! ];
//! let mut sim = ServingSim::new(ServeConfig::default(), tenants).unwrap();
//! // Two LSTM requests and one BERT request arrive close together.
//! sim.submit(0, 0);
//! sim.submit(0, 10_000);
//! sim.submit(1, 20_000);
//! let telemetry = sim.run_to_idle();
//! assert_eq!(telemetry.summary().completed, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config_json;
pub mod contention;
pub mod driver;
pub mod error;
pub mod pool;
pub mod registry;
pub mod scheduler;
pub mod sim;
pub mod telemetry;
pub mod tenant;

pub use contention::CoTenancyModel;
pub use driver::{ClosedLoopDriver, OpenLoopDriver};
pub use error::{RejectReason, ServeError};
pub use pool::{SliceAllocation, SlicePool};
pub use registry::{ModelRegistry, ModelVersion};
pub use scheduler::{SchedPolicy, Scheduler, ServeConfig, ServeConfigBuilder};
pub use sim::ServingSim;
pub use telemetry::{Outcome, RequestRecord, ServingSummary, Telemetry};
pub use tenant::{Tenant, TenantSpec};

/// Convenient glob import for serving binaries and tests.
pub mod prelude {
    pub use crate::{
        ClosedLoopDriver, OpenLoopDriver, Outcome, RejectReason, SchedPolicy, ServeConfig,
        ServeConfigBuilder, ServeError, ServingSim, Telemetry, TenantSpec,
    };
    pub use bfree::prelude::*;
    pub use pim_nn::request::NetworkKind;
}
