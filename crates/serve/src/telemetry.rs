//! Per-request records and run-level summaries.
//!
//! Every submitted request ends as exactly one [`RequestRecord`] —
//! completed with its latency split into queueing and service, or shed
//! with a [`RejectReason`]. The run-level [`ServingSummary`] reduces the
//! records to the numbers a serving evaluation reports: tail latency
//! percentiles, throughput, energy per request, and how busy the slice
//! pool actually was.

use pim_arch::Energy;

use crate::error::RejectReason;

/// Terminal state of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served to completion.
    Completed,
    /// Shed without service.
    Rejected(RejectReason),
}

impl Outcome {
    /// Short machine-readable label for traces.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Completed => "completed",
            Outcome::Rejected(reason) => reason.label(),
        }
    }
}

/// The full story of one request, in virtual-clock nanoseconds.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Stable ID assigned at submission.
    pub request_id: u64,
    /// Index of the tenant it targeted.
    pub tenant: usize,
    /// Tenant display name (denormalized for traces).
    pub tenant_name: String,
    /// When it was submitted.
    pub submit_ns: u64,
    /// When its batch was dispatched (= terminal time for rejects).
    pub dispatch_ns: u64,
    /// When it completed or was shed.
    pub complete_ns: u64,
    /// Size of the batch it was served in (0 for rejects).
    pub batch: usize,
    /// Its share of the batch's energy.
    pub energy: Energy,
    /// How it ended.
    pub outcome: Outcome,
}

impl RequestRecord {
    /// Time spent waiting for dispatch.
    pub fn queue_ns(&self) -> u64 {
        self.dispatch_ns.saturating_sub(self.submit_ns)
    }

    /// Time spent being served (load + compute + writeback).
    pub fn service_ns(&self) -> u64 {
        self.complete_ns.saturating_sub(self.dispatch_ns)
    }

    /// End-to-end latency from submission.
    pub fn latency_ns(&self) -> u64 {
        self.complete_ns.saturating_sub(self.submit_ns)
    }
}

/// Run-level reduction of the telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingSummary {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed (any reason).
    pub rejected: u64,
    /// Median completed-request latency (ns).
    pub p50_latency_ns: u64,
    /// 95th-percentile completed-request latency (ns).
    pub p95_latency_ns: u64,
    /// 99th-percentile completed-request latency (ns).
    pub p99_latency_ns: u64,
    /// Mean completed-request latency (ns).
    pub mean_latency_ns: f64,
    /// Completed requests per second of virtual time.
    pub throughput_rps: f64,
    /// Mean energy per completed request.
    pub energy_per_request: Energy,
    /// Fraction of slice-time the pool spent allocated (0..1).
    pub pool_utilization: f64,
    /// Time-weighted mean slowdown of conventional cache traffic.
    pub avg_conventional_slowdown: f64,
    /// Virtual time from first submission to last completion (ns).
    pub makespan_ns: u64,
    /// Retry attempts scheduled after faulted service attempts.
    pub retries: u64,
    /// Requests shed by the load-shedding watermark
    /// ([`RejectReason::Shed`]).
    pub shed: u64,
    /// Requests whose end-to-end deadline expired while queued
    /// ([`RejectReason::DeadlineExpired`]).
    pub deadline_expired: u64,
    /// Requests that faulted on every allowed attempt
    /// ([`RejectReason::RetriesExhausted`]).
    pub retries_exhausted: u64,
    /// Requests that *completed*, but only after their deadline — they
    /// count toward `completed` and availability, not toward goodput.
    pub deadline_violations: u64,
    /// Fraction of submitted requests served to completion.
    pub availability: f64,
    /// Completed requests that met their deadline, per second of
    /// virtual time (equals `throughput_rps` when no deadline is set).
    pub goodput_rps: f64,
}

/// Collects records and time-weighted pool statistics during a run.
#[derive(Debug, Clone)]
pub struct Telemetry {
    records: Vec<RequestRecord>,
    submitted: u64,
    retries: u64,
    deadline_violations: u64,
    total_slices: usize,
    busy_slice_ns: f64,
    slowdown_ns: f64,
    observed_ns: u64,
    first_event_ns: Option<u64>,
    last_event_ns: u64,
}

/// The engine-agnostic telemetry type named by the
/// [`crate::Frontend`] trait. Both serving engines collect exactly
/// this; the alias exists so frontend-facing signatures read
/// engine-neutrally.
pub type ServingTelemetry = Telemetry;

impl Telemetry {
    /// An empty collector for a pool of `total_slices`.
    pub fn new(total_slices: usize) -> Self {
        Telemetry {
            records: Vec::new(),
            submitted: 0,
            retries: 0,
            deadline_violations: 0,
            total_slices,
            busy_slice_ns: 0.0,
            slowdown_ns: 0.0,
            observed_ns: 0,
            first_event_ns: None,
            last_event_ns: 0,
        }
    }

    /// Notes one submission (admitted or not).
    pub fn note_submit(&mut self, now: u64) {
        self.submitted += 1;
        self.first_event_ns.get_or_insert(now);
        self.last_event_ns = self.last_event_ns.max(now);
    }

    /// Notes one scheduled retry of a faulted service attempt.
    pub fn note_retry(&mut self) {
        self.retries += 1;
    }

    /// Notes one request completing *after* its end-to-end deadline.
    pub fn note_deadline_violation(&mut self) {
        self.deadline_violations += 1;
    }

    /// Accounts one interval of pool state: `busy_slices` allocated and
    /// conventional traffic slowed by `slowdown` from `from_ns` to
    /// `to_ns`.
    pub fn note_interval(&mut self, from_ns: u64, to_ns: u64, busy_slices: usize, slowdown: f64) {
        let span = to_ns.saturating_sub(from_ns);
        self.busy_slice_ns += span as f64 * busy_slices as f64;
        self.slowdown_ns += span as f64 * slowdown;
        self.observed_ns += span;
    }

    /// Accounts a pre-integrated busy-time total over `observed_ns` of
    /// run time. The realtime engine integrates slice occupancy on its
    /// per-lane clocks while workers run and books the total here once;
    /// no co-tenancy slowdown is modeled (slowdown 1.0 throughout).
    pub fn note_busy_integral(&mut self, busy_slice_ns: f64, observed_ns: u64) {
        self.busy_slice_ns += busy_slice_ns;
        self.slowdown_ns += observed_ns as f64;
        self.observed_ns += observed_ns;
    }

    /// Appends a terminal record.
    pub fn push(&mut self, record: RequestRecord) {
        self.last_event_ns = self.last_event_ns.max(record.complete_ns);
        self.records.push(record);
    }

    /// Every terminal record, in completion order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Reduces the run to a [`ServingSummary`].
    pub fn summary(&self) -> ServingSummary {
        let mut latencies: Vec<u64> = self
            .records
            .iter()
            .filter(|r| r.outcome == Outcome::Completed)
            .map(|r| r.latency_ns())
            .collect();
        latencies.sort_unstable();
        let completed = latencies.len() as u64;
        let rejected = self.records.len() as u64 - completed;
        let energy: Energy = self
            .records
            .iter()
            .filter(|r| r.outcome == Outcome::Completed)
            .map(|r| r.energy)
            .sum();
        let makespan_ns = self
            .last_event_ns
            .saturating_sub(self.first_event_ns.unwrap_or(0));
        let mean_latency_ns = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().map(|&l| l as f64).sum::<f64>() / latencies.len() as f64
        };
        let count_reason = |reason: RejectReason| -> u64 {
            self.records
                .iter()
                .filter(|r| r.outcome == Outcome::Rejected(reason))
                .count() as u64
        };
        let good = completed.saturating_sub(self.deadline_violations);
        ServingSummary {
            submitted: self.submitted,
            completed,
            rejected,
            p50_latency_ns: percentile(&latencies, 50.0),
            p95_latency_ns: percentile(&latencies, 95.0),
            p99_latency_ns: percentile(&latencies, 99.0),
            mean_latency_ns,
            throughput_rps: if makespan_ns == 0 {
                0.0
            } else {
                completed as f64 / (makespan_ns as f64 * 1e-9)
            },
            energy_per_request: if completed == 0 {
                Energy::ZERO
            } else {
                energy / completed as f64
            },
            pool_utilization: if self.observed_ns == 0 || self.total_slices == 0 {
                0.0
            } else {
                self.busy_slice_ns / (self.observed_ns as f64 * self.total_slices as f64)
            },
            avg_conventional_slowdown: if self.observed_ns == 0 {
                1.0
            } else {
                self.slowdown_ns / self.observed_ns as f64
            },
            makespan_ns,
            retries: self.retries,
            shed: count_reason(RejectReason::Shed),
            deadline_expired: count_reason(RejectReason::DeadlineExpired),
            retries_exhausted: count_reason(RejectReason::RetriesExhausted),
            deadline_violations: self.deadline_violations,
            availability: if self.submitted == 0 {
                1.0
            } else {
                completed as f64 / self.submitted as f64
            },
            goodput_rps: if makespan_ns == 0 {
                0.0
            } else {
                good as f64 / (makespan_ns as f64 * 1e-9)
            },
        }
    }

    /// Header for [`Telemetry::csv_rows`].
    pub fn csv_header() -> &'static str {
        "request_id,tenant,tenant_name,outcome,submit_ns,dispatch_ns,complete_ns,\
         queue_ns,service_ns,latency_ns,batch,energy_pj"
    }

    /// One CSV row per terminal record, in completion order.
    pub fn csv_rows(&self) -> Vec<String> {
        self.records
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{:.3}",
                    r.request_id,
                    r.tenant,
                    r.tenant_name,
                    r.outcome.label(),
                    r.submit_ns,
                    r.dispatch_ns,
                    r.complete_ns,
                    r.queue_ns(),
                    r.service_ns(),
                    r.latency_ns(),
                    r.batch,
                    r.energy.picojoules(),
                )
            })
            .collect()
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 if empty).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, submit: u64, dispatch: u64, complete: u64) -> RequestRecord {
        RequestRecord {
            request_id: id,
            tenant: 0,
            tenant_name: "t".to_string(),
            submit_ns: submit,
            dispatch_ns: dispatch,
            complete_ns: complete,
            batch: 1,
            energy: Energy::from_pj(100.0),
            outcome: Outcome::Completed,
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn summary_accounts_completions_and_rejections() {
        let mut t = Telemetry::new(14);
        for i in 0..3 {
            t.note_submit(i * 10);
        }
        t.push(record(0, 0, 0, 1_000));
        t.push(record(1, 10, 1_000, 3_000));
        t.push(RequestRecord {
            outcome: Outcome::Rejected(RejectReason::QueueFull),
            batch: 0,
            energy: Energy::ZERO,
            ..record(2, 20, 20, 20)
        });
        let s = t.summary();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.completed, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.p50_latency_ns, 1_000);
        assert_eq!(s.p99_latency_ns, 2_990);
        assert_eq!(s.makespan_ns, 3_000);
        assert!((s.energy_per_request.picojoules() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn pool_utilization_is_a_time_weighted_fraction() {
        let mut t = Telemetry::new(14);
        t.note_interval(0, 1_000, 7, 1.0);
        t.note_interval(1_000, 2_000, 14, 1.005);
        let s = t.summary();
        assert!((s.pool_utilization - 0.75).abs() < 1e-12);
        assert!((s.avg_conventional_slowdown - 1.0025).abs() < 1e-12);
    }

    #[test]
    fn csv_rows_match_header_arity() {
        let mut t = Telemetry::new(14);
        t.note_submit(0);
        t.push(record(0, 0, 5, 10));
        let header_fields = Telemetry::csv_header().split(',').count();
        for row in t.csv_rows() {
            assert_eq!(row.split(',').count(), header_fields);
        }
    }
}
