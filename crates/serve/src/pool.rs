//! The slice-pool allocator.
//!
//! BFree's cache is physically partitioned into slices (14 × 320
//! subarrays in the paper machine), and a kernel's working set never
//! spans a slice boundary mid-layer — the slice is the natural tenancy
//! grain. The pool hands out *specific* slice IDs (lowest-free-first, so
//! placement is deterministic) and guarantees no slice — and therefore
//! no subarray — is ever owned by two live allocations.

use pim_arch::{CacheGeometry, HealthMap};
use std::ops::Range;

/// A live grant of specific cache slices to one dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceAllocation {
    /// The granted slice IDs, ascending.
    pub slice_ids: Vec<usize>,
    subarrays_per_slice: usize,
}

impl SliceAllocation {
    /// Number of slices granted.
    pub fn slices(&self) -> usize {
        self.slice_ids.len()
    }

    /// Total subarrays granted.
    pub fn subarrays(&self) -> usize {
        self.slice_ids.len() * self.subarrays_per_slice
    }

    /// The flat subarray-index ranges this grant owns (one contiguous
    /// range per slice, in the cache's global subarray numbering).
    pub fn subarray_ranges(&self) -> Vec<Range<usize>> {
        self.slice_ids
            .iter()
            .map(|&s| s * self.subarrays_per_slice..(s + 1) * self.subarrays_per_slice)
            .collect()
    }
}

/// Tracks which slices of the cache are free.
///
/// ```
/// use bfree_serve::SlicePool;
/// use pim_arch::CacheGeometry;
///
/// let mut pool = SlicePool::new(CacheGeometry::xeon_l3_35mb());
/// let a = pool.allocate(10).unwrap();
/// assert_eq!(pool.free_slices(), 4);
/// assert!(pool.allocate(5).is_none()); // only 4 left
/// pool.release(a);
/// assert_eq!(pool.free_slices(), 14);
/// ```
#[derive(Debug, Clone)]
pub struct SlicePool {
    free: Vec<bool>,
    subarrays_per_slice: usize,
}

impl SlicePool {
    /// A pool over every slice of `geometry`.
    pub fn new(geometry: CacheGeometry) -> Self {
        SlicePool {
            free: vec![true; geometry.slices()],
            subarrays_per_slice: geometry.subarrays_per_slice(),
        }
    }

    /// Total slices managed.
    pub fn total_slices(&self) -> usize {
        self.free.len()
    }

    /// Slices currently unallocated.
    pub fn free_slices(&self) -> usize {
        self.free.iter().filter(|&&f| f).count()
    }

    /// Free slices that `health` also allows to be allocated — the
    /// capacity the dispatcher can actually use while part of the pool
    /// is quarantined.
    pub fn free_available_slices(&self, health: &HealthMap) -> usize {
        self.free
            .iter()
            .enumerate()
            .filter(|&(id, &free)| free && health.is_available(id))
            .count()
    }

    /// Grants `slices` specific slice IDs, lowest-numbered first, or
    /// `None` when fewer are free (the caller queues or sheds).
    pub fn allocate(&mut self, slices: usize) -> Option<SliceAllocation> {
        self.allocate_available(slices, &HealthMap::new(self.free.len()))
    }

    /// [`allocate`](SlicePool::allocate) restricted to slices `health`
    /// reports allocatable: quarantined slices are skipped, so a grant
    /// remaps around failures. With an all-healthy map this is exactly
    /// `allocate` — same grants, same order.
    pub fn allocate_available(
        &mut self,
        slices: usize,
        health: &HealthMap,
    ) -> Option<SliceAllocation> {
        if slices == 0 || self.free_available_slices(health) < slices {
            return None;
        }
        let mut slice_ids = Vec::with_capacity(slices);
        for (id, free) in self.free.iter_mut().enumerate() {
            if *free && health.is_available(id) {
                *free = false;
                slice_ids.push(id);
                if slice_ids.len() == slices {
                    break;
                }
            }
        }
        Some(SliceAllocation {
            slice_ids,
            subarrays_per_slice: self.subarrays_per_slice,
        })
    }

    /// Returns a grant's slices to the pool.
    ///
    /// # Panics
    ///
    /// Panics if a slice in the grant is already free — that would mean
    /// a double release, which is a scheduler bug, not an operating
    /// condition.
    pub fn release(&mut self, allocation: SliceAllocation) {
        for id in allocation.slice_ids {
            assert!(!self.free[id], "double release of slice {id}");
            self.free[id] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> SlicePool {
        SlicePool::new(CacheGeometry::xeon_l3_35mb())
    }

    #[test]
    fn grants_are_disjoint_and_deterministic() {
        let mut p = pool();
        let a = p.allocate(3).unwrap();
        let b = p.allocate(4).unwrap();
        assert_eq!(a.slice_ids, vec![0, 1, 2]);
        assert_eq!(b.slice_ids, vec![3, 4, 5, 6]);
        for ra in a.subarray_ranges() {
            for rb in b.subarray_ranges() {
                assert!(ra.end <= rb.start || rb.end <= ra.start);
            }
        }
    }

    #[test]
    fn released_slices_are_reused_lowest_first() {
        let mut p = pool();
        let a = p.allocate(2).unwrap();
        let _b = p.allocate(2).unwrap();
        p.release(a);
        let c = p.allocate(3).unwrap();
        assert_eq!(c.slice_ids, vec![0, 1, 4]);
    }

    #[test]
    fn over_allocation_returns_none_without_side_effects() {
        let mut p = pool();
        let _a = p.allocate(13).unwrap();
        assert!(p.allocate(2).is_none());
        assert_eq!(p.free_slices(), 1);
        assert!(p.allocate(0).is_none());
    }

    #[test]
    fn subarray_accounting_matches_geometry() {
        let mut p = pool();
        let a = p.allocate(14).unwrap();
        assert_eq!(a.subarrays(), 4480);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_is_a_bug() {
        let mut p = pool();
        let a = p.allocate(1).unwrap();
        p.release(a.clone());
        p.release(a);
    }

    #[test]
    fn quarantined_slices_are_remapped_around() {
        let mut p = pool();
        let mut health = HealthMap::new(p.total_slices());
        health.mark_failed(0);
        health.mark_failed(2);
        let a = p.allocate_available(3, &health).unwrap();
        assert_eq!(a.slice_ids, vec![1, 3, 4], "grants skip quarantined slices");
        assert_eq!(p.free_available_slices(&health), 9);
        // The quarantined slices are still *unallocated* — just unusable.
        assert_eq!(p.free_slices(), 11);
        // Recovery restores them to the allocatable set.
        health.mark_recovered(0);
        health.mark_recovered(2);
        assert_eq!(p.free_available_slices(&health), 11);
        let b = p.allocate_available(2, &health).unwrap();
        assert_eq!(b.slice_ids, vec![0, 2]);
    }

    #[test]
    fn all_healthy_map_matches_plain_allocate() {
        let mut plain = pool();
        let mut guarded = pool();
        let health = HealthMap::new(14);
        for n in [3, 4, 1] {
            assert_eq!(
                plain.allocate(n).unwrap().slice_ids,
                guarded.allocate_available(n, &health).unwrap().slice_ids,
            );
        }
        assert_eq!(plain.free_slices(), guarded.free_available_slices(&health));
    }
}
