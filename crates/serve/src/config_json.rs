//! JSON round-tripping for [`ServeConfig`] and [`RealtimeConfig`],
//! layered on the hand-rolled [`bfree_obs::JsonValue`] tree (the
//! workspace carries no external serde backend). Key order is
//! deterministic, so serialized configs diff cleanly and hash stably.

use bfree::BfreeConfig;
use bfree_fault::RetryPolicy;
use bfree_obs::{JsonValue, ObsError};

use crate::realtime::{RealtimeConfig, TelemetryConfig};
use crate::scheduler::{SchedPolicy, ServeConfig};

fn schema_err(field: &str, expected: &'static str) -> ObsError {
    ObsError::Schema {
        field: field.to_string(),
        expected,
    }
}

fn optional_ns(value: &JsonValue, field: &str) -> Result<Option<u64>, ObsError> {
    match value.get(field) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => {
            Ok(Some(v.as_u64().ok_or_else(|| {
                schema_err(field, "a non-negative integer or null")
            })?))
        }
    }
}

/// A fraction field must be a finite number in `[0, 1]` *at parse
/// time*: a config file carrying `-0.5` or `NaN` (hand-built trees can)
/// fails here with the field named, not later inside a run.
fn fraction(value: &JsonValue, field: &str) -> Result<f64, ObsError> {
    let v = value
        .get(field)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| schema_err(field, "a number"))?;
    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
        return Err(schema_err(field, "a finite fraction in [0, 1]"));
    }
    Ok(v)
}

impl ServeConfig {
    /// Serializes this configuration as a [`JsonValue`] tree. The
    /// embedded base machine uses [`BfreeConfig::to_json`].
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("base", self.base.to_json()),
            ("policy", JsonValue::String(self.policy.label().to_string())),
            ("max_batch", JsonValue::Number(self.max_batch as f64)),
            (
                "batch_window_ns",
                JsonValue::Number(self.batch_window_ns as f64),
            ),
            (
                "queue_capacity",
                JsonValue::Number(self.queue_capacity as f64),
            ),
            (
                "timeout_ns",
                match self.timeout_ns {
                    Some(ns) => JsonValue::Number(ns as f64),
                    None => JsonValue::Null,
                },
            ),
            (
                "retry",
                JsonValue::object([
                    (
                        "max_attempts",
                        JsonValue::Number(f64::from(self.retry.max_attempts)),
                    ),
                    (
                        "base_backoff_ns",
                        JsonValue::Number(self.retry.base_backoff_ns as f64),
                    ),
                    (
                        "max_backoff_ns",
                        JsonValue::Number(self.retry.max_backoff_ns as f64),
                    ),
                    ("jitter_frac", JsonValue::Number(self.retry.jitter_frac)),
                ]),
            ),
            (
                "deadline_ns",
                match self.deadline_ns {
                    Some(ns) => JsonValue::Number(ns as f64),
                    None => JsonValue::Null,
                },
            ),
            ("shed_watermark", JsonValue::Number(self.shed_watermark)),
        ])
    }

    /// Serializes this configuration as a JSON string with
    /// deterministic key order.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Deserializes a configuration from a [`JsonValue`] tree. The
    /// resilience fields (`retry`, `deadline_ns`, `shed_watermark`) are
    /// optional and default to disabled, so configs serialized before
    /// they existed still parse.
    ///
    /// # Errors
    ///
    /// [`ObsError::Schema`] for a missing or mistyped field — including
    /// a negative or NaN rate, a negative timeout or deadline, an
    /// unknown policy label, or an invalid base machine — and for any
    /// combination [`ServeConfig::validate`] rejects: a config that
    /// parses is a config that runs.
    pub fn from_json(value: &JsonValue) -> Result<ServeConfig, ObsError> {
        let base = value
            .get("base")
            .ok_or_else(|| schema_err("base", "a bfree config object"))?;
        let policy_label = value.require_str("policy")?;
        let policy = SchedPolicy::from_label(policy_label)
            .ok_or_else(|| schema_err("policy", "one of fifo/sjf/priority"))?;
        let timeout_ns = optional_ns(value, "timeout_ns")?;
        let deadline_ns = optional_ns(value, "deadline_ns")?;
        let retry = match value.get("retry") {
            None | Some(JsonValue::Null) => RetryPolicy::disabled(),
            Some(r) => RetryPolicy {
                max_attempts: r.require_u64("max_attempts")? as u32,
                base_backoff_ns: r.require_u64("base_backoff_ns")?,
                max_backoff_ns: r.require_u64("max_backoff_ns")?,
                jitter_frac: fraction(r, "jitter_frac")?,
            },
        };
        let shed_watermark = match value.get("shed_watermark") {
            None => 0.0,
            Some(_) => fraction(value, "shed_watermark")?,
        };
        let config = ServeConfig {
            base: BfreeConfig::from_json(base)?,
            policy,
            max_batch: value.require_u64("max_batch")? as usize,
            batch_window_ns: value.require_u64("batch_window_ns")?,
            queue_capacity: value.require_u64("queue_capacity")? as usize,
            timeout_ns,
            retry,
            deadline_ns,
            shed_watermark,
        };
        config.validate().map_err(|e| ObsError::Schema {
            field: e.to_string(),
            expected: "a self-consistent serving config",
        })?;
        Ok(config)
    }

    /// Deserializes a configuration from JSON text.
    ///
    /// # Errors
    ///
    /// [`ObsError::Parse`] for malformed JSON, [`ObsError::Schema`] for
    /// a well-formed document with missing or mistyped fields.
    pub fn from_json_str(text: &str) -> Result<ServeConfig, ObsError> {
        Self::from_json(&JsonValue::parse(text)?)
    }
}

impl TelemetryConfig {
    /// Serializes the telemetry knobs as a [`JsonValue`] tree.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("enabled", JsonValue::Bool(self.enabled)),
            (
                "snapshot_cadence_ns",
                JsonValue::Number(self.snapshot_cadence_ns as f64),
            ),
            (
                "ring_capacity",
                JsonValue::Number(self.ring_capacity as f64),
            ),
            (
                "histogram_min_ns",
                JsonValue::Number(self.histogram_min_ns as f64),
            ),
            (
                "histogram_max_ns",
                JsonValue::Number(self.histogram_max_ns as f64),
            ),
            (
                "latency_objective_ns",
                JsonValue::Number(self.latency_objective_ns as f64),
            ),
            ("latency_target", JsonValue::Number(self.latency_target)),
            (
                "availability_target",
                JsonValue::Number(self.availability_target),
            ),
            (
                "short_window_ns",
                JsonValue::Number(self.short_window_ns as f64),
            ),
            (
                "long_window_ns",
                JsonValue::Number(self.long_window_ns as f64),
            ),
            ("fast_burn", JsonValue::Number(self.fast_burn)),
            ("slow_burn", JsonValue::Number(self.slow_burn)),
        ])
    }

    /// Deserializes the telemetry knobs from a [`JsonValue`] tree.
    ///
    /// # Errors
    ///
    /// [`ObsError::Schema`] for a missing or mistyped field. Semantic
    /// validation (positive cadence, ordered histogram bounds, targets
    /// in `(0, 1]`) happens in [`RealtimeConfig::from_json`] via
    /// [`RealtimeConfig::validate`].
    pub fn from_json(value: &JsonValue) -> Result<TelemetryConfig, ObsError> {
        let enabled = value
            .get("enabled")
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| schema_err("enabled", "a boolean"))?;
        Ok(TelemetryConfig {
            enabled,
            snapshot_cadence_ns: value.require_u64("snapshot_cadence_ns")?,
            ring_capacity: value.require_u64("ring_capacity")? as usize,
            histogram_min_ns: value.require_u64("histogram_min_ns")?,
            histogram_max_ns: value.require_u64("histogram_max_ns")?,
            latency_objective_ns: value.require_u64("latency_objective_ns")?,
            latency_target: value.require_f64("latency_target")?,
            availability_target: value.require_f64("availability_target")?,
            short_window_ns: value.require_u64("short_window_ns")?,
            long_window_ns: value.require_u64("long_window_ns")?,
            fast_burn: value.require_f64("fast_burn")?,
            slow_burn: value.require_f64("slow_burn")?,
        })
    }
}

impl RealtimeConfig {
    /// Serializes this configuration as a [`JsonValue`] tree. The
    /// embedded serving config uses [`ServeConfig::to_json`].
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("serve", self.serve.to_json()),
            ("workers", JsonValue::Number(self.workers as f64)),
            ("queue_shards", JsonValue::Number(self.queue_shards as f64)),
            ("replay_rate", JsonValue::Number(self.replay_rate)),
            ("telemetry", self.telemetry.to_json()),
        ])
    }

    /// Serializes this configuration as a JSON string with
    /// deterministic key order.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Deserializes a configuration from a [`JsonValue`] tree.
    ///
    /// # Errors
    ///
    /// [`ObsError::Schema`] for a missing or mistyped field, a
    /// non-finite or negative replay rate, an invalid embedded serving
    /// config, and for anything [`RealtimeConfig::validate`] rejects
    /// (zero workers, non-power-of-two shard count): a config that
    /// parses is a config that runs.
    pub fn from_json(value: &JsonValue) -> Result<RealtimeConfig, ObsError> {
        let serve = value
            .get("serve")
            .ok_or_else(|| schema_err("serve", "a serving config object"))?;
        let replay_rate = value
            .get("replay_rate")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| schema_err("replay_rate", "a number"))?;
        // Configs serialized before the live-telemetry plane existed
        // carry no `telemetry` object; they get the defaults.
        let telemetry = match value.get("telemetry") {
            None | Some(JsonValue::Null) => TelemetryConfig::default(),
            Some(t) => TelemetryConfig::from_json(t)?,
        };
        let config = RealtimeConfig {
            serve: ServeConfig::from_json(serve)?,
            workers: value.require_u64("workers")? as usize,
            queue_shards: value.require_u64("queue_shards")? as usize,
            replay_rate,
            telemetry,
        };
        config.validate().map_err(|e| ObsError::Schema {
            field: e.to_string(),
            expected: "a self-consistent realtime config",
        })?;
        Ok(config)
    }

    /// Deserializes a configuration from JSON text.
    ///
    /// # Errors
    ///
    /// [`ObsError::Parse`] for malformed JSON, [`ObsError::Schema`] for
    /// a well-formed document with missing or mistyped fields.
    pub fn from_json_str(text: &str) -> Result<RealtimeConfig, ObsError> {
        Self::from_json(&JsonValue::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_round_trips() {
        let config = ServeConfig::paper_default();
        let back = ServeConfig::from_json_str(&config.to_json_string()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn non_default_fields_round_trip() {
        let config = ServeConfig::builder()
            .policy(SchedPolicy::Priority)
            .max_batch(4)
            .batch_window_ns(250_000)
            .queue_capacity(64)
            .timeout_ns(Some(10_000_000))
            .build()
            .unwrap();
        let back = ServeConfig::from_json_str(&config.to_json_string()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn unknown_policy_label_is_a_schema_error() {
        let mut json = ServeConfig::paper_default().to_json();
        if let JsonValue::Object(map) = &mut json {
            map.insert(
                "policy".to_string(),
                JsonValue::String("round-robin".to_string()),
            );
        }
        let err = ServeConfig::from_json(&json).unwrap_err();
        assert!(matches!(err, ObsError::Schema { .. }), "got {err:?}");
    }

    #[test]
    fn null_timeout_means_disabled() {
        let config = ServeConfig::paper_default();
        assert_eq!(config.timeout_ns, None);
        let text = config.to_json_string();
        assert!(text.contains("\"timeout_ns\":null"));
        assert_eq!(ServeConfig::from_json_str(&text).unwrap().timeout_ns, None);
    }

    #[test]
    fn resilience_fields_round_trip() {
        let config = ServeConfig::builder()
            .retry(RetryPolicy::standard())
            .deadline_ns(Some(40_000_000))
            .shed_watermark(0.75)
            .build()
            .unwrap();
        let back = ServeConfig::from_json_str(&config.to_json_string()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn configs_without_resilience_fields_still_parse() {
        let mut json = ServeConfig::paper_default().to_json();
        if let JsonValue::Object(map) = &mut json {
            map.remove("retry");
            map.remove("deadline_ns");
            map.remove("shed_watermark");
        }
        let config = ServeConfig::from_json(&json).unwrap();
        assert!(!config.retry.enabled());
        assert_eq!(config.deadline_ns, None);
        assert_eq!(config.shed_watermark, 0.0);
    }

    #[test]
    fn negative_and_nan_rates_are_rejected_at_parse_time() {
        for bad in [
            JsonValue::Number(-0.25),
            JsonValue::Number(f64::NAN),
            JsonValue::Number(1.5),
            JsonValue::Number(f64::INFINITY),
        ] {
            let mut json = ServeConfig::paper_default().to_json();
            if let JsonValue::Object(map) = &mut json {
                map.insert("shed_watermark".to_string(), bad.clone());
            }
            let err = ServeConfig::from_json(&json).unwrap_err();
            assert!(matches!(err, ObsError::Schema { .. }), "got {err:?}");

            let mut json = ServeConfig::paper_default().to_json();
            if let Some(JsonValue::Object(retry)) = match &mut json {
                JsonValue::Object(map) => map.get_mut("retry"),
                _ => None,
            } {
                retry.insert("jitter_frac".to_string(), bad);
            }
            let err = ServeConfig::from_json(&json).unwrap_err();
            assert!(matches!(err, ObsError::Schema { .. }), "got {err:?}");
        }
    }

    #[test]
    fn negative_timeout_and_deadline_are_rejected_at_parse_time() {
        for field in ["timeout_ns", "deadline_ns"] {
            let mut json = ServeConfig::paper_default().to_json();
            if let JsonValue::Object(map) = &mut json {
                map.insert(field.to_string(), JsonValue::Number(-1.0));
            }
            let err = ServeConfig::from_json(&json).unwrap_err();
            match &err {
                ObsError::Schema { field: f, .. } => assert_eq!(f, field),
                other => panic!("negative {field} must fail at parse time, got {other:?}"),
            }
        }
    }

    #[test]
    fn realtime_paper_default_round_trips() {
        let config = RealtimeConfig::paper_default();
        let back = RealtimeConfig::from_json_str(&config.to_json_string()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn realtime_non_default_fields_round_trip() {
        let config = RealtimeConfig::builder()
            .workers(7)
            .queue_shards(16)
            .replay_rate(2.5)
            .serve(
                ServeConfig::builder()
                    .policy(SchedPolicy::Sjf)
                    .max_batch(8)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        let back = RealtimeConfig::from_json_str(&config.to_json_string()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn realtime_parsed_configs_are_validated() {
        // (field tampered with, bad value) pairs that parse structurally
        // but must be rejected by validation or the rate check.
        for (field, bad) in [
            ("workers", JsonValue::Number(0.0)),
            ("queue_shards", JsonValue::Number(3.0)),
            ("replay_rate", JsonValue::Number(-1.0)),
            ("replay_rate", JsonValue::Number(f64::NAN)),
        ] {
            let mut json = RealtimeConfig::paper_default().to_json();
            if let JsonValue::Object(map) = &mut json {
                map.insert(field.to_string(), bad);
            }
            let err = RealtimeConfig::from_json(&json).unwrap_err();
            assert!(
                matches!(err, ObsError::Schema { .. }),
                "bad {field} must fail at parse time, got {err:?}"
            );
        }
    }

    #[test]
    fn telemetry_knobs_round_trip() {
        let config = RealtimeConfig::builder()
            .telemetry(TelemetryConfig {
                enabled: false,
                snapshot_cadence_ns: 5_000_000,
                ring_capacity: 1024,
                histogram_min_ns: 100,
                histogram_max_ns: 1_000_000_000,
                latency_objective_ns: 20_000_000,
                latency_target: 0.95,
                availability_target: 0.9999,
                short_window_ns: 25_000_000,
                long_window_ns: 500_000_000,
                fast_burn: 10.0,
                slow_burn: 2.0,
            })
            .build()
            .unwrap();
        let back = RealtimeConfig::from_json_str(&config.to_json_string()).unwrap();
        assert_eq!(back, config);
        assert_eq!(back.telemetry.ring_capacity, 1024);
    }

    #[test]
    fn configs_without_telemetry_get_the_defaults() {
        let mut json = RealtimeConfig::paper_default().to_json();
        if let JsonValue::Object(map) = &mut json {
            map.remove("telemetry");
        }
        let config = RealtimeConfig::from_json(&json).unwrap();
        assert_eq!(config.telemetry, TelemetryConfig::default());
    }

    #[test]
    fn parsed_telemetry_knobs_are_validated() {
        // Structurally valid JSON carrying semantically invalid
        // telemetry knobs must be rejected at parse time.
        for (field, bad) in [
            ("snapshot_cadence_ns", JsonValue::Number(0.0)),
            ("ring_capacity", JsonValue::Number(0.0)),
            ("histogram_min_ns", JsonValue::Number(0.0)),
            ("latency_target", JsonValue::Number(f64::NAN)),
            ("availability_target", JsonValue::Number(1.5)),
            ("fast_burn", JsonValue::Number(-1.0)),
        ] {
            let mut json = RealtimeConfig::paper_default().to_json();
            if let Some(JsonValue::Object(telemetry)) = match &mut json {
                JsonValue::Object(map) => map.get_mut("telemetry"),
                _ => None,
            } {
                telemetry.insert(field.to_string(), bad);
            }
            let err = RealtimeConfig::from_json(&json).unwrap_err();
            assert!(
                matches!(err, ObsError::Schema { .. }),
                "bad telemetry.{field} must fail at parse time, got {err:?}"
            );
        }
    }

    #[test]
    fn realtime_embedded_serve_config_is_validated() {
        let mut json = RealtimeConfig::paper_default().to_json();
        if let Some(JsonValue::Object(serve)) = match &mut json {
            JsonValue::Object(map) => map.get_mut("serve"),
            _ => None,
        } {
            serve.insert("max_batch".to_string(), JsonValue::Number(0.0));
        }
        let err = RealtimeConfig::from_json(&json).unwrap_err();
        assert!(matches!(err, ObsError::Schema { .. }), "got {err:?}");
    }

    #[test]
    fn parsed_configs_are_validated() {
        // Structurally well-formed but semantically invalid: parse must
        // reject it, not hand back a config that panics later.
        let mut json = ServeConfig::paper_default().to_json();
        if let JsonValue::Object(map) = &mut json {
            map.insert("max_batch".to_string(), JsonValue::Number(0.0));
        }
        let err = ServeConfig::from_json(&json).unwrap_err();
        assert!(matches!(err, ObsError::Schema { .. }), "got {err:?}");
    }
}
