//! JSON round-tripping for [`ServeConfig`], layered on the hand-rolled
//! [`bfree_obs::JsonValue`] tree (the workspace carries no external
//! serde backend). Key order is deterministic, so serialized configs
//! diff cleanly and hash stably.

use bfree::BfreeConfig;
use bfree_obs::{JsonValue, ObsError};

use crate::scheduler::{SchedPolicy, ServeConfig};

fn schema_err(field: &str, expected: &'static str) -> ObsError {
    ObsError::Schema {
        field: field.to_string(),
        expected,
    }
}

impl ServeConfig {
    /// Serializes this configuration as a [`JsonValue`] tree. The
    /// embedded base machine uses [`BfreeConfig::to_json`].
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("base", self.base.to_json()),
            ("policy", JsonValue::String(self.policy.label().to_string())),
            ("max_batch", JsonValue::Number(self.max_batch as f64)),
            (
                "batch_window_ns",
                JsonValue::Number(self.batch_window_ns as f64),
            ),
            (
                "queue_capacity",
                JsonValue::Number(self.queue_capacity as f64),
            ),
            (
                "timeout_ns",
                match self.timeout_ns {
                    Some(ns) => JsonValue::Number(ns as f64),
                    None => JsonValue::Null,
                },
            ),
        ])
    }

    /// Serializes this configuration as a JSON string with
    /// deterministic key order.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Deserializes a configuration from a [`JsonValue`] tree.
    ///
    /// # Errors
    ///
    /// [`ObsError::Schema`] for a missing or mistyped field, including
    /// an unknown policy label or an invalid base machine.
    pub fn from_json(value: &JsonValue) -> Result<ServeConfig, ObsError> {
        let base = value
            .get("base")
            .ok_or_else(|| schema_err("base", "a bfree config object"))?;
        let policy_label = value.require_str("policy")?;
        let policy = SchedPolicy::from_label(policy_label)
            .ok_or_else(|| schema_err("policy", "one of fifo/sjf/priority"))?;
        let timeout_ns = match value.get("timeout_ns") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| schema_err("timeout_ns", "a non-negative integer or null"))?,
            ),
        };
        Ok(ServeConfig {
            base: BfreeConfig::from_json(base)?,
            policy,
            max_batch: value.require_u64("max_batch")? as usize,
            batch_window_ns: value.require_u64("batch_window_ns")?,
            queue_capacity: value.require_u64("queue_capacity")? as usize,
            timeout_ns,
        })
    }

    /// Deserializes a configuration from JSON text.
    ///
    /// # Errors
    ///
    /// [`ObsError::Parse`] for malformed JSON, [`ObsError::Schema`] for
    /// a well-formed document with missing or mistyped fields.
    pub fn from_json_str(text: &str) -> Result<ServeConfig, ObsError> {
        Self::from_json(&JsonValue::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_round_trips() {
        let config = ServeConfig::paper_default();
        let back = ServeConfig::from_json_str(&config.to_json_string()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn non_default_fields_round_trip() {
        let config = ServeConfig::builder()
            .policy(SchedPolicy::Priority)
            .max_batch(4)
            .batch_window_ns(250_000)
            .queue_capacity(64)
            .timeout_ns(Some(10_000_000))
            .build()
            .unwrap();
        let back = ServeConfig::from_json_str(&config.to_json_string()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn unknown_policy_label_is_a_schema_error() {
        let mut json = ServeConfig::paper_default().to_json();
        if let JsonValue::Object(map) = &mut json {
            map.insert(
                "policy".to_string(),
                JsonValue::String("round-robin".to_string()),
            );
        }
        let err = ServeConfig::from_json(&json).unwrap_err();
        assert!(matches!(err, ObsError::Schema { .. }), "got {err:?}");
    }

    #[test]
    fn null_timeout_means_disabled() {
        let config = ServeConfig::paper_default();
        assert_eq!(config.timeout_ns, None);
        let text = config.to_json_string();
        assert!(text.contains("\"timeout_ns\":null"));
        assert_eq!(ServeConfig::from_json_str(&text).unwrap().timeout_ns, None);
    }
}
