//! Admission control, batching, and dispatch-order policy.
//!
//! Requests land in per-tenant FIFO queues behind one shared admission
//! capacity. A tenant becomes *eligible* for dispatch when it can fill a
//! full batch or when its oldest request has waited out the batching
//! window; among eligible tenants that currently fit the free slices,
//! the configured [`SchedPolicy`] picks who goes next. Overload sheds
//! requests with a typed [`RejectReason`] — admission never panics.

use std::collections::VecDeque;

use bfree::BfreeConfig;
use bfree_fault::RetryPolicy;

use crate::error::{RejectReason, ServeError};
use crate::tenant::Tenant;

/// Dispatch-order policy among eligible tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedPolicy {
    /// Oldest waiting request first.
    #[default]
    Fifo,
    /// Shortest (contention-free) estimated service time first.
    Sjf,
    /// Highest tenant priority first; FIFO within a class.
    Priority,
}

impl SchedPolicy {
    /// Every policy, in a stable order.
    pub const ALL: [SchedPolicy; 3] = [SchedPolicy::Fifo, SchedPolicy::Sjf, SchedPolicy::Priority];

    /// Short machine-readable label for traces.
    pub fn label(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Sjf => "sjf",
            SchedPolicy::Priority => "priority",
        }
    }

    /// The policy with the given [`label`](SchedPolicy::label), if any.
    pub fn from_label(label: &str) -> Option<SchedPolicy> {
        SchedPolicy::ALL.into_iter().find(|p| p.label() == label)
    }
}

/// Configuration of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// The machine every tenant shares (geometry, timing, energy).
    pub base: BfreeConfig,
    /// Dispatch-order policy.
    pub policy: SchedPolicy,
    /// Most requests coalesced into one dispatched batch.
    pub max_batch: usize,
    /// How long the oldest queued request may wait for batch-mates
    /// before the tenant dispatches undersized (0 = dispatch eagerly).
    pub batch_window_ns: u64,
    /// Shared admission-queue capacity; arrivals beyond it are shed
    /// with [`RejectReason::QueueFull`].
    pub queue_capacity: usize,
    /// Queueing deadline: a request still undispatched this long after
    /// submission is shed with [`RejectReason::TimedOut`].
    pub timeout_ns: Option<u64>,
    /// How transiently-failed service attempts are retried
    /// ([`RetryPolicy::disabled`] by default: faults are terminal).
    pub retry: RetryPolicy,
    /// End-to-end deadline: a request still queued this long after its
    /// *original* submission is shed with
    /// [`RejectReason::DeadlineExpired`], and one completing later
    /// counts as a deadline violation (excluded from goodput). `None`
    /// disables both.
    pub deadline_ns: Option<u64>,
    /// Load-shedding watermark on the healthy-slice fraction: when the
    /// allocatable fraction of the pool drops below this, arrivals from
    /// the lowest tenant-priority classes are shed with
    /// [`RejectReason::Shed`], lowest class first, the top class never.
    /// `0.0` disables shedding entirely.
    pub shed_watermark: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            base: BfreeConfig::paper_default(),
            policy: SchedPolicy::Fifo,
            max_batch: 16,
            batch_window_ns: 0,
            queue_capacity: 1024,
            timeout_ns: None,
            retry: RetryPolicy::disabled(),
            deadline_ns: None,
            shed_watermark: 0.0,
        }
    }
}

impl ServeConfig {
    /// The canonical serving setup: the paper's 35 MB / 14-slice cache
    /// shared under FIFO dispatch with batches of up to 16. Identical to
    /// [`Default::default`].
    #[doc(alias = "default")]
    #[must_use]
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A validating builder seeded with [`paper_default`]
    /// (ServeConfig::paper_default).
    ///
    /// ```
    /// use bfree_serve::ServeConfig;
    ///
    /// let config = ServeConfig::builder()
    ///     .max_batch(8)
    ///     .timeout_ns(Some(5_000_000))
    ///     .build()?;
    /// assert_eq!(config.max_batch, 8);
    /// # Ok::<(), bfree_serve::ServeError>(())
    /// ```
    ///
    /// [`paper_default`]: ServeConfig::paper_default
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::new()
    }

    /// Checks parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the offending
    /// parameter.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig {
                parameter: "max_batch",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                parameter: "queue_capacity",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.timeout_ns == Some(0) {
            return Err(ServeError::InvalidConfig {
                parameter: "timeout_ns",
                reason: "zero timeout sheds every request; use None to disable".to_string(),
            });
        }
        if self.deadline_ns == Some(0) {
            return Err(ServeError::InvalidConfig {
                parameter: "deadline_ns",
                reason: "zero deadline expires every request; use None to disable".to_string(),
            });
        }
        self.retry
            .validate()
            .map_err(|e| ServeError::InvalidConfig {
                parameter: "retry",
                reason: e.to_string(),
            })?;
        if !self.shed_watermark.is_finite() || !(0.0..=1.0).contains(&self.shed_watermark) {
            return Err(ServeError::InvalidConfig {
                parameter: "shed_watermark",
                reason: format!(
                    "must be a finite fraction in [0, 1], got {}",
                    self.shed_watermark
                ),
            });
        }
        Ok(())
    }
}

/// Builder for [`ServeConfig`]: every setter is typed, and
/// [`build`](ServeConfigBuilder::build) runs
/// [`ServeConfig::validate`], so an invalid combination is caught at
/// construction instead of at the first dispatch.
#[derive(Debug, Clone)]
#[must_use = "builders do nothing until .build() is called"]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl Default for ServeConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeConfigBuilder {
    /// A builder seeded with [`ServeConfig::paper_default`].
    pub fn new() -> Self {
        ServeConfigBuilder {
            config: ServeConfig::paper_default(),
        }
    }

    /// The machine every tenant shares.
    pub fn base(mut self, base: BfreeConfig) -> Self {
        self.config.base = base;
        self
    }

    /// Dispatch-order policy.
    pub fn policy(mut self, policy: SchedPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Most requests coalesced into one dispatched batch.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// How long the oldest queued request waits for batch-mates.
    pub fn batch_window_ns(mut self, batch_window_ns: u64) -> Self {
        self.config.batch_window_ns = batch_window_ns;
        self
    }

    /// Shared admission-queue capacity.
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.config.queue_capacity = queue_capacity;
        self
    }

    /// Queueing deadline (`None` disables shedding on age).
    pub fn timeout_ns(mut self, timeout_ns: Option<u64>) -> Self {
        self.config.timeout_ns = timeout_ns;
        self
    }

    /// Retry policy for transiently-failed service attempts.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// End-to-end request deadline (`None` disables).
    pub fn deadline_ns(mut self, deadline_ns: Option<u64>) -> Self {
        self.config.deadline_ns = deadline_ns;
        self
    }

    /// Load-shedding watermark on the healthy-slice fraction
    /// (`0.0` disables).
    pub fn shed_watermark(mut self, shed_watermark: f64) -> Self {
        self.config.shed_watermark = shed_watermark;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] naming the offending parameter.
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// One admitted, still-queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedRequest {
    /// Stable request ID assigned at submission.
    pub request_id: u64,
    /// Index of the tenant it belongs to.
    pub tenant: usize,
    /// Virtual-clock submission time (ns). Retries keep the *original*
    /// submission time, so deadlines stay end-to-end.
    pub submit_ns: u64,
    /// Zero-based service-attempt number (0 = first attempt; a request
    /// re-queued by the retry policy comes back with `attempt + 1`).
    pub attempt: u32,
}

/// A group of same-tenant requests selected for one dispatch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Index of the tenant being dispatched.
    pub tenant: usize,
    /// The coalesced requests, in FIFO order.
    pub requests: Vec<QueuedRequest>,
}

/// Per-tenant queues plus the policy logic.
#[derive(Debug)]
pub struct Scheduler {
    policy: SchedPolicy,
    max_batch: usize,
    batch_window_ns: u64,
    queue_capacity: usize,
    timeout_ns: Option<u64>,
    deadline_ns: Option<u64>,
    queues: Vec<VecDeque<QueuedRequest>>,
    queued: usize,
}

impl Scheduler {
    /// A scheduler for `tenant_count` tenants under `config`.
    pub fn new(config: &ServeConfig, tenant_count: usize) -> Self {
        Scheduler {
            policy: config.policy,
            max_batch: config.max_batch,
            batch_window_ns: config.batch_window_ns,
            queue_capacity: config.queue_capacity,
            timeout_ns: config.timeout_ns,
            deadline_ns: config.deadline_ns,
            queues: vec![VecDeque::new(); tenant_count],
            queued: 0,
        }
    }

    /// Requests currently admitted and waiting.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Admits a request or sheds it with a typed reason.
    ///
    /// # Errors
    ///
    /// [`RejectReason::DoesNotFit`] when the tenant can never be placed,
    /// [`RejectReason::QueueFull`] when admission is at capacity.
    pub fn admit(
        &mut self,
        request: QueuedRequest,
        tenants: &[Tenant],
    ) -> Result<(), RejectReason> {
        if !tenants[request.tenant].fits() {
            return Err(RejectReason::DoesNotFit);
        }
        if self.queued >= self.queue_capacity {
            return Err(RejectReason::QueueFull);
        }
        self.queues[request.tenant].push_back(request);
        self.queued += 1;
        Ok(())
    }

    /// Removes and returns every queued request whose queueing timeout
    /// ([`RejectReason::TimedOut`]) or end-to-end deadline
    /// ([`RejectReason::DeadlineExpired`]) has passed at `now`. The
    /// deadline takes precedence when both expire at once: a dead
    /// answer is the stronger condition.
    pub fn shed_expired(&mut self, now: u64) -> Vec<(QueuedRequest, RejectReason)> {
        if self.timeout_ns.is_none() && self.deadline_ns.is_none() {
            return Vec::new();
        }
        let timeout_ns = self.timeout_ns;
        let deadline_ns = self.deadline_ns;
        let mut shed = Vec::new();
        for queue in &mut self.queues {
            queue.retain(|r| {
                let reason = if deadline_ns.is_some_and(|d| now >= r.submit_ns.saturating_add(d)) {
                    Some(RejectReason::DeadlineExpired)
                } else if timeout_ns.is_some_and(|t| now >= r.submit_ns.saturating_add(t)) {
                    Some(RejectReason::TimedOut)
                } else {
                    None
                };
                if let Some(reason) = reason {
                    shed.push((*r, reason));
                }
                reason.is_none()
            });
        }
        // retain preserves FIFO order per tenant; order across tenants
        // follows tenant index, which is deterministic.
        self.queued -= shed.len();
        shed
    }

    /// The next virtual time at which waiting longer changes anything:
    /// the earliest batch-window expiry or timeout deadline after `now`.
    pub fn next_deadline(&self, now: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for queue in &self.queues {
            if let Some(oldest) = queue.front() {
                if self.batch_window_ns > 0 && queue.len() < self.max_batch {
                    consider(oldest.submit_ns.saturating_add(self.batch_window_ns));
                }
                if let Some(timeout) = self.timeout_ns {
                    consider(oldest.submit_ns.saturating_add(timeout));
                }
                if let Some(deadline) = self.deadline_ns {
                    consider(oldest.submit_ns.saturating_add(deadline));
                }
            }
        }
        next
    }

    fn eligible(&self, tenant: usize, now: u64) -> bool {
        let queue = &self.queues[tenant];
        match queue.front() {
            None => false,
            Some(oldest) => {
                queue.len() >= self.max_batch
                    || self.batch_window_ns == 0
                    || now >= oldest.submit_ns.saturating_add(self.batch_window_ns)
            }
        }
    }

    /// Selects the next batch to dispatch at `now`, or `None` if no
    /// eligible tenant fits in `free_slices`. Call repeatedly to
    /// backfill: a small tenant may dispatch behind a large one that is
    /// still waiting for slices.
    pub fn next_batch(
        &mut self,
        now: u64,
        tenants: &mut [Tenant],
        free_slices: usize,
    ) -> Option<Batch> {
        let mut best: Option<(usize, f64, u64)> = None; // (tenant, key, oldest)
        for (tenant, state) in tenants.iter_mut().enumerate() {
            if !self.eligible(tenant, now) || state.demand_slices() > free_slices {
                continue;
            }
            // Invariant: `eligible` returns false for an empty queue.
            let oldest = self.queues[tenant]
                .front()
                .expect("eligible queue is nonempty")
                .submit_ns;
            let key = match self.policy {
                SchedPolicy::Fifo => oldest as f64,
                SchedPolicy::Sjf => {
                    let batch = self.queues[tenant].len().min(self.max_batch);
                    state.service_estimate_ns(batch)
                }
                // Negate so "smallest key wins" holds for every policy.
                SchedPolicy::Priority => -f64::from(state.spec().priority),
            };
            let better = match best {
                None => true,
                Some((_, best_key, best_oldest)) => {
                    key < best_key || (key == best_key && oldest < best_oldest)
                }
            };
            if better {
                best = Some((tenant, key, oldest));
            }
        }
        let (tenant, _, _) = best?;
        let take = self.queues[tenant].len().min(self.max_batch);
        let requests: Vec<QueuedRequest> = self.queues[tenant].drain(..take).collect();
        self.queued -= requests.len();
        Some(Batch { tenant, requests })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantSpec;
    use pim_nn::request::NetworkKind;

    fn tenants(specs: Vec<TenantSpec>) -> Vec<Tenant> {
        let base = BfreeConfig::paper_default();
        specs
            .into_iter()
            .map(|s| Tenant::new(s, &base).unwrap())
            .collect()
    }

    fn req(id: u64, tenant: usize, at: u64) -> QueuedRequest {
        QueuedRequest {
            request_id: id,
            tenant,
            submit_ns: at,
            attempt: 0,
        }
    }

    #[test]
    fn default_config_validates() {
        assert!(ServeConfig::default().validate().is_ok());
        let bad = ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(ServeError::InvalidConfig {
                parameter: "max_batch",
                ..
            })
        ));
    }

    #[test]
    fn queue_full_backpressure_is_typed() {
        let ts = tenants(vec![TenantSpec::new("a", NetworkKind::LstmTimit)]);
        let config = ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        };
        let mut s = Scheduler::new(&config, 1);
        assert!(s.admit(req(0, 0, 0), &ts).is_ok());
        assert!(s.admit(req(1, 0, 0), &ts).is_ok());
        assert_eq!(s.admit(req(2, 0, 0), &ts), Err(RejectReason::QueueFull));
        assert_eq!(s.queued(), 2);
    }

    #[test]
    fn unfit_tenant_is_rejected_at_admission() {
        let ts = tenants(vec![
            TenantSpec::new("huge", NetworkKind::LstmTimit).with_replication(10_000)
        ]);
        let mut s = Scheduler::new(&ServeConfig::default(), 1);
        assert_eq!(s.admit(req(0, 0, 0), &ts), Err(RejectReason::DoesNotFit));
    }

    #[test]
    fn batching_window_coalesces_and_expires() {
        let mut ts = tenants(vec![TenantSpec::new("a", NetworkKind::LstmTimit)]);
        let config = ServeConfig {
            batch_window_ns: 1_000,
            max_batch: 4,
            ..ServeConfig::default()
        };
        let mut s = Scheduler::new(&config, 1);
        s.admit(req(0, 0, 100), &ts).unwrap();
        s.admit(req(1, 0, 200), &ts).unwrap();
        // Window still open and batch not full: nothing dispatches.
        assert!(s.next_batch(500, &mut ts, 14).is_none());
        assert_eq!(s.next_deadline(500), Some(1_100));
        // Window expired: both coalesce into one batch.
        let batch = s.next_batch(1_100, &mut ts, 14).unwrap();
        assert_eq!(batch.requests.len(), 2);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn full_batch_dispatches_before_window_expiry() {
        let mut ts = tenants(vec![TenantSpec::new("a", NetworkKind::LstmTimit)]);
        let config = ServeConfig {
            batch_window_ns: 1_000_000,
            max_batch: 2,
            ..ServeConfig::default()
        };
        let mut s = Scheduler::new(&config, 1);
        s.admit(req(0, 0, 100), &ts).unwrap();
        s.admit(req(1, 0, 110), &ts).unwrap();
        let batch = s.next_batch(110, &mut ts, 14).unwrap();
        assert_eq!(batch.requests.len(), 2);
    }

    #[test]
    fn priority_policy_prefers_high_class() {
        let mut ts = tenants(vec![
            TenantSpec::new("lo", NetworkKind::LstmTimit).with_priority(0),
            TenantSpec::new("hi", NetworkKind::LstmTimit).with_priority(9),
        ]);
        let config = ServeConfig {
            policy: SchedPolicy::Priority,
            ..ServeConfig::default()
        };
        let mut s = Scheduler::new(&config, 2);
        s.admit(req(0, 0, 0), &ts).unwrap();
        s.admit(req(1, 1, 50), &ts).unwrap();
        let batch = s.next_batch(50, &mut ts, 14).unwrap();
        assert_eq!(batch.tenant, 1);
    }

    #[test]
    fn sjf_policy_prefers_short_service() {
        let mut ts = tenants(vec![
            TenantSpec::new("bert", NetworkKind::BertBase),
            TenantSpec::new("lstm", NetworkKind::LstmTimit),
        ]);
        let config = ServeConfig {
            policy: SchedPolicy::Sjf,
            ..ServeConfig::default()
        };
        let mut s = Scheduler::new(&config, 2);
        s.admit(req(0, 0, 0), &ts).unwrap();
        s.admit(req(1, 1, 50), &ts).unwrap();
        let batch = s.next_batch(50, &mut ts, 14).unwrap();
        assert_eq!(batch.tenant, 1, "LSTM-TIMIT is far cheaper than BERT-base");
    }

    #[test]
    fn backfill_skips_tenants_that_do_not_fit_now() {
        let mut ts = tenants(vec![
            TenantSpec::new("big", NetworkKind::BertBase).with_replication(3),
            TenantSpec::new("small", NetworkKind::LstmTimit),
        ]);
        assert!(
            ts[0].demand_slices() > 4,
            "test assumes the big tenant needs > 4 slices"
        );
        assert!(
            ts[1].demand_slices() <= 4,
            "test assumes the small tenant fits in 4"
        );
        let mut s = Scheduler::new(&ServeConfig::default(), 2);
        s.admit(req(0, 0, 0), &ts).unwrap();
        s.admit(req(1, 1, 10), &ts).unwrap();
        // Only 4 slices free: FIFO would pick the big tenant, but it
        // cannot be placed, so the small one backfills.
        let batch = s.next_batch(10, &mut ts, 4).unwrap();
        assert_eq!(batch.tenant, 1);
        assert_eq!(s.queued(), 1);
    }

    #[test]
    fn timeouts_shed_expired_requests_only() {
        let ts = tenants(vec![TenantSpec::new("a", NetworkKind::LstmTimit)]);
        let config = ServeConfig {
            timeout_ns: Some(1_000),
            ..ServeConfig::default()
        };
        let mut s = Scheduler::new(&config, 1);
        s.admit(req(0, 0, 0), &ts).unwrap();
        s.admit(req(1, 0, 900), &ts).unwrap();
        let shed = s.shed_expired(1_000);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0.request_id, 0);
        assert_eq!(shed[0].1, RejectReason::TimedOut);
        assert_eq!(s.queued(), 1);
    }

    #[test]
    fn deadlines_shed_queued_requests_with_their_own_reason() {
        let ts = tenants(vec![TenantSpec::new("a", NetworkKind::LstmTimit)]);
        let config = ServeConfig {
            timeout_ns: Some(5_000),
            deadline_ns: Some(1_000),
            ..ServeConfig::default()
        };
        let mut s = Scheduler::new(&config, 1);
        s.admit(req(0, 0, 0), &ts).unwrap();
        s.admit(req(1, 0, 800), &ts).unwrap();
        assert_eq!(s.next_deadline(0), Some(1_000));
        let shed = s.shed_expired(1_000);
        assert_eq!(shed, vec![(req(0, 0, 0), RejectReason::DeadlineExpired)]);
        assert_eq!(s.queued(), 1);
    }

    #[test]
    fn resilience_config_fields_are_validated() {
        let config = ServeConfig {
            shed_watermark: 1.5,
            ..ServeConfig::default()
        };
        assert!(matches!(
            config.validate(),
            Err(ServeError::InvalidConfig {
                parameter: "shed_watermark",
                ..
            })
        ));
        let config = ServeConfig {
            shed_watermark: f64::NAN,
            ..ServeConfig::default()
        };
        assert!(config.validate().is_err());
        let config = ServeConfig {
            deadline_ns: Some(0),
            ..ServeConfig::default()
        };
        assert!(config.validate().is_err());
        let mut bad_retry = bfree_fault::RetryPolicy::standard();
        bad_retry.jitter_frac = -0.5;
        let config = ServeConfig {
            retry: bad_retry,
            ..ServeConfig::default()
        };
        assert!(matches!(
            config.validate(),
            Err(ServeError::InvalidConfig {
                parameter: "retry",
                ..
            })
        ));
        let good = ServeConfig::builder()
            .retry(bfree_fault::RetryPolicy::standard())
            .deadline_ns(Some(40_000_000))
            .shed_watermark(0.75)
            .build()
            .unwrap();
        assert!(good.retry.enabled());
    }
}
