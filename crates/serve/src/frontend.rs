//! The engine-agnostic serving frontend: recorded request traces,
//! batch-independent work counters, and the [`Frontend`] trait both
//! engines implement.
//!
//! The workspace now carries two serving engines — the deterministic
//! virtual-clock [`crate::ServingSim`] (the oracle) and the wall-clock
//! multi-threaded [`crate::RealtimeEngine`]. Experiments and the
//! conformance harness are written once against [`Frontend`]: record a
//! [`RequestTrace`], replay it through either engine, and collect the
//! same [`ServingTelemetry`] plus a [`WorkLedger`] of per-request work.
//!
//! Work counters are *batch-independent*: a request's ops, LUT reads
//! and bytes are a pure function of the model version that served it
//! (see [`crate::Tenant::request_work`]), never of how it was batched
//! or scheduled. Both engines therefore must agree on them **exactly**
//! for the same trace — any lost, duplicated, or wrong-version
//! dispatch shows up as a counter mismatch, while latency and energy
//! (which *do* depend on batching and contention) only reconcile
//! within tolerance.

use std::collections::BTreeMap;
use std::ops::{Add, AddAssign};

use crate::error::ServeError;
use crate::telemetry::ServingTelemetry;
use crate::tenant::TenantSpec;

/// Batch-independent work performed for one request (or one service
/// attempt): scalar operations, LUT-row reads, and bytes moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkCounters {
    /// Scalar operations: MACs plus element-wise ops.
    pub ops: u64,
    /// LUT-row reads issued by the bit-serial multiplier (4-bit
    /// decomposition: an int8 product is 4 nibble-product lookups).
    pub lut_reads: u64,
    /// Bytes moved: weights at the layer's precision plus input and
    /// output activations.
    pub bytes: u64,
}

impl WorkCounters {
    /// All-zero counters.
    pub const ZERO: WorkCounters = WorkCounters {
        ops: 0,
        lut_reads: 0,
        bytes: 0,
    };

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == WorkCounters::ZERO
    }
}

impl Add for WorkCounters {
    type Output = WorkCounters;

    fn add(self, rhs: WorkCounters) -> WorkCounters {
        WorkCounters {
            ops: self.ops + rhs.ops,
            lut_reads: self.lut_reads + rhs.lut_reads,
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl AddAssign for WorkCounters {
    fn add_assign(&mut self, rhs: WorkCounters) {
        *self = *self + rhs;
    }
}

/// Per-request work accounting, accumulated as an engine executes.
///
/// Every *executed* service attempt charges its request's counters —
/// retried attempts charge again, so the ledger reflects work actually
/// performed, not work usefully delivered. Requests shed without
/// service never appear.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkLedger {
    per_request: BTreeMap<u64, WorkCounters>,
}

impl WorkLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        WorkLedger::default()
    }

    /// Charges `work` to `request_id`, accumulating over attempts.
    pub fn charge(&mut self, request_id: u64, work: WorkCounters) {
        *self.per_request.entry(request_id).or_default() += work;
    }

    /// Merges another ledger into this one (disjoint or overlapping
    /// request sets both accumulate).
    pub fn merge(&mut self, other: &WorkLedger) {
        for (&id, &work) in &other.per_request {
            self.charge(id, work);
        }
    }

    /// The accumulated counters for one request, if any attempt ran.
    pub fn get(&self, request_id: u64) -> Option<WorkCounters> {
        self.per_request.get(&request_id).copied()
    }

    /// Requests with at least one charged attempt.
    pub fn requests(&self) -> usize {
        self.per_request.len()
    }

    /// Per-request counters in ascending request-ID order.
    pub fn per_request(&self) -> &BTreeMap<u64, WorkCounters> {
        &self.per_request
    }

    /// The sum over all requests.
    pub fn total(&self) -> WorkCounters {
        self.per_request
            .values()
            .fold(WorkCounters::ZERO, |acc, &w| acc + w)
    }
}

/// One operation in a recorded trace.
#[derive(Debug, Clone)]
pub enum TraceOp {
    /// Submit one inference request for a tenant.
    Submit {
        /// Index of the tenant the request targets.
        tenant: usize,
    },
    /// Publish a new model version for a tenant slot.
    Swap {
        /// Index of the tenant slot to republish.
        tenant: usize,
        /// The version number to publish.
        version: u64,
        /// The spec serving the new version.
        spec: TenantSpec,
    },
}

/// One timestamped trace operation.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Virtual time of the operation in nanoseconds.
    pub at_ns: u64,
    /// The operation itself.
    pub op: TraceOp,
}

/// A recorded request trace: the engine-agnostic input both frontends
/// replay. Request IDs are assigned by the engine in trace order
/// (stable sort by `at_ns`), so the same trace yields the same ID for
/// the same logical request in every engine.
#[derive(Debug, Clone, Default)]
pub struct RequestTrace {
    events: Vec<TraceEvent>,
}

impl RequestTrace {
    /// An empty trace.
    pub fn new() -> Self {
        RequestTrace::default()
    }

    /// Appends one request submission at virtual time `at_ns`.
    pub fn submit(&mut self, at_ns: u64, tenant: usize) -> &mut Self {
        self.events.push(TraceEvent {
            at_ns,
            op: TraceOp::Submit { tenant },
        });
        self
    }

    /// Appends one model hot-swap at virtual time `at_ns`.
    pub fn swap(&mut self, at_ns: u64, tenant: usize, version: u64, spec: TenantSpec) -> &mut Self {
        self.events.push(TraceEvent {
            at_ns,
            op: TraceOp::Swap {
                tenant,
                version,
                spec,
            },
        });
        self
    }

    /// The raw events in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The events in replay order: stable-sorted by `at_ns`, so
    /// same-time events keep their insertion order.
    pub fn ordered(&self) -> Vec<TraceEvent> {
        let mut ordered = self.events.clone();
        ordered.sort_by_key(|e| e.at_ns);
        ordered
    }

    /// Number of submission events.
    pub fn submissions(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.op, TraceOp::Submit { .. }))
            .count() as u64
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The unified serving frontend: submit a recorded trace, drive it to
/// completion, collect telemetry and the work ledger.
///
/// Implemented by the virtual-clock [`crate::ServingSim`] and the
/// wall-clock [`crate::RealtimeEngine`]; the conformance harness
/// ([`crate::realtime::run_conformance`]) replays one trace through
/// both and reconciles the results.
pub trait Frontend {
    /// Short engine label for reports (`"virtual-clock"`, `"realtime"`).
    fn engine(&self) -> &'static str;

    /// Enqueues every event of `trace` (in [`RequestTrace::ordered`]
    /// order) and returns the number of submissions accepted into the
    /// engine. Swap specs are priced eagerly, so a trace that submits
    /// is a trace that replays.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidTenants`] for an out-of-range tenant index;
    /// [`ServeError::Arch`] if a swap spec cannot be priced.
    fn submit_trace(&mut self, trace: &RequestTrace) -> Result<u64, ServeError>;

    /// Runs the engine until every submitted request is terminal.
    ///
    /// # Errors
    ///
    /// [`ServeError::Realtime`] if the engine cannot (re-)run — the
    /// virtual-clock engine never fails here.
    fn drive_to_idle(&mut self) -> Result<(), ServeError>;

    /// Telemetry collected so far.
    fn serving_telemetry(&self) -> &ServingTelemetry;

    /// Per-request work performed so far.
    fn work_ledger(&self) -> &WorkLedger;
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_nn::request::NetworkKind;

    #[test]
    fn work_counters_add_and_compare() {
        let a = WorkCounters {
            ops: 1,
            lut_reads: 2,
            bytes: 3,
        };
        let b = a + a;
        assert_eq!(
            b,
            WorkCounters {
                ops: 2,
                lut_reads: 4,
                bytes: 6
            }
        );
        assert!(WorkCounters::ZERO.is_zero());
        assert!(!b.is_zero());
    }

    #[test]
    fn ledger_accumulates_attempts_and_merges() {
        let w = WorkCounters {
            ops: 10,
            lut_reads: 5,
            bytes: 1,
        };
        let mut ledger = WorkLedger::new();
        ledger.charge(7, w);
        ledger.charge(7, w);
        ledger.charge(9, w);
        assert_eq!(ledger.requests(), 2);
        assert_eq!(ledger.get(7).unwrap().ops, 20);
        assert_eq!(ledger.total().ops, 30);
        let mut other = WorkLedger::new();
        other.charge(9, w);
        ledger.merge(&other);
        assert_eq!(ledger.get(9).unwrap().ops, 20);
    }

    #[test]
    fn trace_orders_stably_by_time() {
        let mut trace = RequestTrace::new();
        trace.submit(200, 1);
        trace.submit(100, 0);
        trace.swap(100, 0, 2, TenantSpec::new("lstm", NetworkKind::LstmTimit));
        let ordered = trace.ordered();
        assert_eq!(ordered.len(), 3);
        assert_eq!(ordered[0].at_ns, 100);
        // Stable: the submit at 100 was inserted before the swap at 100.
        assert!(matches!(ordered[0].op, TraceOp::Submit { tenant: 0 }));
        assert!(matches!(ordered[1].op, TraceOp::Swap { .. }));
        assert_eq!(trace.submissions(), 2);
        assert!(!trace.is_empty());
    }
}
