//! Per-tenant model bindings with atomic version hot-swap.
//!
//! A [`ModelRegistry`] tracks, for every tenant slot, which *model
//! version* is currently live. Each slot holds an `Arc`-swapped
//! [`ModelVersion`] behind its own lock: readers clone the `Arc` (no
//! contention with a publisher), publishers replace the pointer in one
//! store — the serving engine never drains the slice pool or pauses
//! in-flight dispatches to roll a model forward. The deterministic swap
//! *points* live in the virtual-clock engine
//! ([`crate::ServingSim::schedule_model_swap`]); the registry is the
//! authority on what is bound now.
//!
//! Bindings can be lowered straight from `bfree-model` artifacts:
//! [`ModelRegistry::spec_from_artifact`] turns a parsed, checksummed
//! [`ModelArtifact`] into the [`TenantSpec`] the engine prices — the
//! same network, the same precision policy the artifact was written
//! under.

use std::sync::{Arc, RwLock};

use bfree_model::{ModelArtifact, OwnedArtifact};
use pim_nn::request::NetworkKind;

use crate::error::ServeError;
use crate::tenant::TenantSpec;

/// One published model version for a tenant slot.
#[derive(Debug, Clone)]
pub struct ModelVersion {
    /// Monotonic version number (1 = the version bound at construction).
    pub version: u64,
    /// The spec serving this version.
    pub spec: TenantSpec,
    /// The resident artifact this version was lowered from, when the
    /// publisher retained it — the bytes periodic integrity re-checks
    /// re-validate against their embedded checksums.
    pub artifact: Option<Arc<OwnedArtifact>>,
}

/// Outcome of re-verifying one tenant slot's resident artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactIntegrity {
    /// The slot was bound from a spec alone; there are no resident
    /// artifact bytes to re-check.
    Unbound,
    /// The resident bytes still validate end to end.
    Verified,
    /// The resident bytes no longer parse/checksum — the copy took a
    /// flip since it was published and must be re-fetched.
    Corrupted {
        /// The parse error the re-check surfaced.
        reason: String,
    },
}

/// One row of [`ModelRegistry::reverify_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Tenant slot index.
    pub tenant: usize,
    /// The version that was checked.
    pub version: u64,
    /// What the re-check found.
    pub integrity: ArtifactIntegrity,
}

/// The per-tenant model binding table.
#[derive(Debug)]
pub struct ModelRegistry {
    slots: Vec<RwLock<Arc<ModelVersion>>>,
}

impl ModelRegistry {
    /// Binds every spec at version 1, in tenant-index order.
    pub fn from_specs(specs: impl IntoIterator<Item = TenantSpec>) -> Self {
        ModelRegistry {
            slots: specs
                .into_iter()
                .map(|spec| {
                    RwLock::new(Arc::new(ModelVersion {
                        version: 1,
                        spec,
                        artifact: None,
                    }))
                })
                .collect(),
        }
    }

    /// Number of tenant slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the registry has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The live version for tenant slot `tenant`.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn current(&self, tenant: usize) -> Arc<ModelVersion> {
        Arc::clone(&self.slots[tenant].read().expect("registry lock poisoned"))
    }

    /// Atomically publishes a new version for `tenant` and returns the
    /// version it replaced. One pointer store: concurrent readers see
    /// either the old binding or the new one, never a mix.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn publish(&self, tenant: usize, version: u64, spec: TenantSpec) -> Arc<ModelVersion> {
        let mut slot = self.slots[tenant].write().expect("registry lock poisoned");
        std::mem::replace(
            &mut *slot,
            Arc::new(ModelVersion {
                version,
                spec,
                artifact: None,
            }),
        )
    }

    /// [`ModelRegistry::publish`], retaining the artifact the version
    /// was lowered from so periodic re-verification can re-validate the
    /// resident bytes.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn publish_artifact(
        &self,
        tenant: usize,
        version: u64,
        spec: TenantSpec,
        artifact: Arc<OwnedArtifact>,
    ) -> Arc<ModelVersion> {
        let mut slot = self.slots[tenant].write().expect("registry lock poisoned");
        std::mem::replace(
            &mut *slot,
            Arc::new(ModelVersion {
                version,
                spec,
                artifact: Some(artifact),
            }),
        )
    }

    /// Re-verifies the resident artifact of tenant slot `tenant`
    /// against its embedded checksums.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn reverify(&self, tenant: usize) -> IntegrityReport {
        let current = self.current(tenant);
        let integrity = match &current.artifact {
            None => ArtifactIntegrity::Unbound,
            Some(artifact) => match artifact.reverify() {
                Ok(()) => ArtifactIntegrity::Verified,
                Err(err) => ArtifactIntegrity::Corrupted {
                    reason: err.to_string(),
                },
            },
        };
        IntegrityReport {
            tenant,
            version: current.version,
            integrity,
        }
    }

    /// One periodic integrity sweep over every slot, in tenant order.
    pub fn reverify_all(&self) -> Vec<IntegrityReport> {
        (0..self.slots.len()).map(|t| self.reverify(t)).collect()
    }

    /// Lowers a parsed artifact into the [`TenantSpec`] it describes:
    /// network resolved by the artifact's network name, precision policy
    /// reconstructed from the header tag and per-layer bits, replication
    /// 1 and default priority (serving-side concerns an artifact does
    /// not carry).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidTenants`] when the artifact's network name
    /// matches no catalog workload.
    pub fn spec_from_artifact(
        name: impl Into<String>,
        artifact: &ModelArtifact<'_>,
    ) -> Result<TenantSpec, ServeError> {
        let network = NetworkKind::parse(artifact.network_name()).map_err(|_| {
            ServeError::InvalidTenants {
                reason: format!(
                    "artifact names unknown network {:?}",
                    artifact.network_name()
                ),
            }
        })?;
        Ok(TenantSpec::new(name, network).with_precision(artifact.precision_policy()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfree::{BfreeConfig, PrecisionPolicy};
    use bfree_model::{encode_kind, ArtifactSpec};

    fn specs() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new("lstm", NetworkKind::LstmTimit),
            TenantSpec::new("bert", NetworkKind::BertBase),
        ]
    }

    #[test]
    fn construction_binds_version_one_everywhere() {
        let registry = ModelRegistry::from_specs(specs());
        assert_eq!(registry.len(), 2);
        for slot in 0..registry.len() {
            assert_eq!(registry.current(slot).version, 1);
        }
        assert_eq!(registry.current(0).spec.name, "lstm");
    }

    #[test]
    fn publish_swaps_atomically_and_returns_the_old_binding() {
        let registry = ModelRegistry::from_specs(specs());
        let held = registry.current(0);
        let new = TenantSpec::new("lstm", NetworkKind::LstmTimit)
            .with_precision(PrecisionPolicy::mixed());
        let old = registry.publish(0, 2, new);
        assert_eq!(old.version, 1);
        assert_eq!(registry.current(0).version, 2);
        // A reader holding the old Arc keeps a coherent snapshot.
        assert_eq!(held.version, 1);
        assert_eq!(held.spec.precision, PrecisionPolicy::uniform_int8());
        // The untouched slot is unaffected.
        assert_eq!(registry.current(1).version, 1);
    }

    #[test]
    fn reverify_covers_unbound_verified_and_corrupted() {
        let registry = ModelRegistry::from_specs(specs());
        // Spec-only binding: nothing to re-check.
        assert_eq!(registry.reverify(0).integrity, ArtifactIntegrity::Unbound);

        let config = BfreeConfig::paper_default();
        let bytes = encode_kind(NetworkKind::LstmTimit, &config, &ArtifactSpec::default());
        let owned = Arc::new(OwnedArtifact::new(bytes).unwrap());
        let spec = TenantSpec::new("lstm", NetworkKind::LstmTimit);
        registry.publish_artifact(0, 2, spec, Arc::clone(&owned));
        let report = registry.reverify(0);
        assert_eq!(report.version, 2);
        assert_eq!(report.integrity, ArtifactIntegrity::Verified);

        // A resident copy that took a flip fails the sweep with the
        // same typed rejection initial parsing would raise.
        let flipped = owned.with_flipped_bit(owned.as_bytes().len() / 2, 3);
        assert!(bfree_model::ModelArtifact::parse(&flipped).is_err());
        let all = registry.reverify_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].integrity, ArtifactIntegrity::Unbound);
    }

    #[test]
    fn artifact_lowers_to_the_spec_it_was_written_from() {
        let config = BfreeConfig::paper_default();
        let spec = ArtifactSpec {
            precision: PrecisionPolicy::mixed(),
            ..ArtifactSpec::default()
        };
        let bytes = encode_kind(NetworkKind::BertBase, &config, &spec);
        let artifact = ModelArtifact::parse(&bytes).unwrap();
        let tenant = ModelRegistry::spec_from_artifact("bert-v2", &artifact).unwrap();
        assert_eq!(tenant.network, NetworkKind::BertBase);
        assert_eq!(tenant.precision, spec.precision);
        assert_eq!(tenant.name, "bert-v2");
    }
}
