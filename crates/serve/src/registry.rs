//! Per-tenant model bindings with atomic version hot-swap.
//!
//! A [`ModelRegistry`] tracks, for every tenant slot, which *model
//! version* is currently live. Each slot holds an `Arc`-swapped
//! [`ModelVersion`] behind its own lock: readers clone the `Arc` (no
//! contention with a publisher), publishers replace the pointer in one
//! store — the serving engine never drains the slice pool or pauses
//! in-flight dispatches to roll a model forward. The deterministic swap
//! *points* live in the virtual-clock engine
//! ([`crate::ServingSim::schedule_model_swap`]); the registry is the
//! authority on what is bound now.
//!
//! Bindings can be lowered straight from `bfree-model` artifacts:
//! [`ModelRegistry::spec_from_artifact`] turns a parsed, checksummed
//! [`ModelArtifact`] into the [`TenantSpec`] the engine prices — the
//! same network, the same precision policy the artifact was written
//! under.

use std::sync::{Arc, RwLock};

use bfree_model::ModelArtifact;
use pim_nn::request::NetworkKind;

use crate::error::ServeError;
use crate::tenant::TenantSpec;

/// One published model version for a tenant slot.
#[derive(Debug, Clone)]
pub struct ModelVersion {
    /// Monotonic version number (1 = the version bound at construction).
    pub version: u64,
    /// The spec serving this version.
    pub spec: TenantSpec,
}

/// The per-tenant model binding table.
#[derive(Debug)]
pub struct ModelRegistry {
    slots: Vec<RwLock<Arc<ModelVersion>>>,
}

impl ModelRegistry {
    /// Binds every spec at version 1, in tenant-index order.
    pub fn from_specs(specs: impl IntoIterator<Item = TenantSpec>) -> Self {
        ModelRegistry {
            slots: specs
                .into_iter()
                .map(|spec| RwLock::new(Arc::new(ModelVersion { version: 1, spec })))
                .collect(),
        }
    }

    /// Number of tenant slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the registry has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The live version for tenant slot `tenant`.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn current(&self, tenant: usize) -> Arc<ModelVersion> {
        Arc::clone(&self.slots[tenant].read().expect("registry lock poisoned"))
    }

    /// Atomically publishes a new version for `tenant` and returns the
    /// version it replaced. One pointer store: concurrent readers see
    /// either the old binding or the new one, never a mix.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn publish(&self, tenant: usize, version: u64, spec: TenantSpec) -> Arc<ModelVersion> {
        let mut slot = self.slots[tenant].write().expect("registry lock poisoned");
        std::mem::replace(&mut *slot, Arc::new(ModelVersion { version, spec }))
    }

    /// Lowers a parsed artifact into the [`TenantSpec`] it describes:
    /// network resolved by the artifact's network name, precision policy
    /// reconstructed from the header tag and per-layer bits, replication
    /// 1 and default priority (serving-side concerns an artifact does
    /// not carry).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidTenants`] when the artifact's network name
    /// matches no catalog workload.
    pub fn spec_from_artifact(
        name: impl Into<String>,
        artifact: &ModelArtifact<'_>,
    ) -> Result<TenantSpec, ServeError> {
        let network = NetworkKind::parse(artifact.network_name()).map_err(|_| {
            ServeError::InvalidTenants {
                reason: format!(
                    "artifact names unknown network {:?}",
                    artifact.network_name()
                ),
            }
        })?;
        Ok(TenantSpec::new(name, network).with_precision(artifact.precision_policy()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfree::{BfreeConfig, PrecisionPolicy};
    use bfree_model::{encode_kind, ArtifactSpec};

    fn specs() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new("lstm", NetworkKind::LstmTimit),
            TenantSpec::new("bert", NetworkKind::BertBase),
        ]
    }

    #[test]
    fn construction_binds_version_one_everywhere() {
        let registry = ModelRegistry::from_specs(specs());
        assert_eq!(registry.len(), 2);
        for slot in 0..registry.len() {
            assert_eq!(registry.current(slot).version, 1);
        }
        assert_eq!(registry.current(0).spec.name, "lstm");
    }

    #[test]
    fn publish_swaps_atomically_and_returns_the_old_binding() {
        let registry = ModelRegistry::from_specs(specs());
        let held = registry.current(0);
        let new = TenantSpec::new("lstm", NetworkKind::LstmTimit)
            .with_precision(PrecisionPolicy::mixed());
        let old = registry.publish(0, 2, new);
        assert_eq!(old.version, 1);
        assert_eq!(registry.current(0).version, 2);
        // A reader holding the old Arc keeps a coherent snapshot.
        assert_eq!(held.version, 1);
        assert_eq!(held.spec.precision, PrecisionPolicy::uniform_int8());
        // The untouched slot is unaffected.
        assert_eq!(registry.current(1).version, 1);
    }

    #[test]
    fn artifact_lowers_to_the_spec_it_was_written_from() {
        let config = BfreeConfig::paper_default();
        let spec = ArtifactSpec {
            precision: PrecisionPolicy::mixed(),
            ..ArtifactSpec::default()
        };
        let bytes = encode_kind(NetworkKind::BertBase, &config, &spec);
        let artifact = ModelArtifact::parse(&bytes).unwrap();
        let tenant = ModelRegistry::spec_from_artifact("bert-v2", &artifact).unwrap();
        assert_eq!(tenant.network, NetworkKind::BertBase);
        assert_eq!(tenant.precision, spec.precision);
        assert_eq!(tenant.name, "bert-v2");
    }
}
