//! The event-driven serving engine.
//!
//! [`ServingSim`] advances a u64-nanosecond *virtual* clock through a
//! totally ordered event heap — (time, sequence-number) — so a run is a
//! pure function of its inputs: no wall clock, no hash-order
//! nondeterminism, bit-identical traces on every execution.
//!
//! At every event the engine sheds expired requests, then greedily
//! dispatches eligible batches while slices remain (small tenants
//! backfill behind large blocked ones). Each dispatch snapshots the
//! number of concurrently active dispatches to price DRAM-bandwidth
//! sharing via [`CoTenancyModel`]; the interval between events is
//! charged to the telemetry's pool-utilization and conventional-traffic
//! integrals.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::Arc;

use bfree::BfreeConfig;
use bfree_fault::{FaultInjector, RetryPolicy};
use bfree_obs::{NullRecorder, Recorder, Subsystem, Unit};
use pim_arch::{Energy, HealthMap};
use pim_bce::BceMode;

use crate::contention::CoTenancyModel;
use crate::error::{RejectReason, ServeError};
use crate::frontend::{Frontend, RequestTrace, TraceOp, WorkCounters, WorkLedger};
use crate::pool::{SliceAllocation, SlicePool};
use crate::registry::ModelRegistry;
use crate::scheduler::{QueuedRequest, Scheduler, ServeConfig};
use crate::telemetry::{Outcome, RequestRecord, ServingTelemetry, Telemetry};
use crate::tenant::{Tenant, TenantSpec};

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    Arrival { request_id: u64, tenant: usize },
    Completion { dispatch: u64 },
    Deadline,
    SliceFail { slice: usize },
    SliceRecover { slice: usize },
    Retry { request: QueuedRequest },
    // Index into `staged_swaps` — the payload (a fully-priced Tenant)
    // is not Ord/Eq, so it lives outside the event heap.
    ModelSwap { swap: usize },
}

/// A scheduled hot-swap, priced eagerly at schedule time so the swap
/// event itself cannot fail.
#[derive(Debug)]
struct StagedSwap {
    tenant: usize,
    version: u64,
    state: Option<Tenant>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time_ns: u64,
    seq: u64,
    kind: EventKind,
}

// Min-heap order on (time, seq); seq is unique, so the order is total
// and consistent with Eq.
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time_ns, other.seq).cmp(&(self.time_ns, self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct ActiveDispatch {
    dispatch: u64,
    tenant: usize,
    allocation: SliceAllocation,
    requests: Vec<QueuedRequest>,
    dispatch_ns: u64,
    complete_ns: u64,
    energy_per_request: Energy,
    // Snapshotted at dispatch so a mid-flight model swap cannot change
    // what an already-launched batch is charged.
    work_per_request: WorkCounters,
    mode: BceMode,
}

/// The multi-tenant serving simulator.
///
/// See the crate-level example for typical use: build with a
/// [`ServeConfig`] and tenant specs, [`submit`](ServingSim::submit)
/// requests, then [`run_to_idle`](ServingSim::run_to_idle).
///
/// Generic over a [`Recorder`]: [`ServingSim::new`] runs with the
/// zero-cost [`NullRecorder`]; [`ServingSim::with_recorder`] emits the
/// request lifecycle (arrival → admit/reject → dispatch → complete)
/// plus queue-depth and free-slice gauges to any recorder.
#[derive(Debug)]
pub struct ServingSim<R: Recorder = NullRecorder> {
    tenants: Vec<Tenant>,
    base: BfreeConfig,
    registry: Arc<ModelRegistry>,
    staged_swaps: Vec<StagedSwap>,
    pool: SlicePool,
    health: HealthMap,
    scheduler: Scheduler,
    contention: CoTenancyModel,
    telemetry: Telemetry,
    injector: FaultInjector,
    retry: RetryPolicy,
    deadline_ns: Option<u64>,
    shed_watermark: f64,
    events: BinaryHeap<Event>,
    scheduled_deadlines: BTreeSet<u64>,
    active: Vec<ActiveDispatch>,
    aborted: BTreeSet<u64>,
    lut_repaired: Vec<bool>,
    clock_ns: u64,
    next_request_id: u64,
    next_dispatch_id: u64,
    next_seq: u64,
    pending_retries: u64,
    work_conservation_violations: u64,
    work: WorkLedger,
    recorder: R,
}

/// Validated construction path for [`ServingSim`]: seeded with the
/// config and tenant specs, optionally given a recorder and fault
/// injector, checked as a whole by [`build`](ServingSimBuilder::build).
///
/// ```
/// use bfree_serve::{ServeConfig, ServingSim, TenantSpec};
/// use pim_nn::request::NetworkKind;
///
/// let sim = ServingSim::builder(
///     ServeConfig::default(),
///     vec![TenantSpec::new("lstm", NetworkKind::LstmTimit)],
/// )
/// .build()
/// .unwrap();
/// assert_eq!(sim.tenants().len(), 1);
/// ```
#[derive(Debug)]
#[must_use = "call build() to construct the simulator"]
pub struct ServingSimBuilder<R: Recorder = NullRecorder> {
    config: ServeConfig,
    specs: Vec<TenantSpec>,
    recorder: R,
    injector: Option<FaultInjector>,
}

impl<R: Recorder> ServingSimBuilder<R> {
    /// Swaps in an event recorder (replacing the default
    /// [`NullRecorder`]).
    pub fn recorder<R2: Recorder>(self, recorder: R2) -> ServingSimBuilder<R2> {
        ServingSimBuilder {
            config: self.config,
            specs: self.specs,
            recorder,
            injector: self.injector,
        }
    }

    /// Runs the simulation under `injector`'s fault load.
    pub fn injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Validates everything and constructs the simulator.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for bad parameters or an injector
    /// resolved for the wrong slice count,
    /// [`ServeError::InvalidTenants`] for an empty tenant list, and
    /// [`ServeError::Arch`] if a tenant's partial geometry cannot be
    /// built.
    pub fn build(self) -> Result<ServingSim<R>, ServeError> {
        let injector = match self.injector {
            Some(injector) => injector,
            None => FaultInjector::none(self.config.base.geometry.slices()),
        };
        ServingSim::construct(self.config, self.specs, self.recorder, injector)
    }
}

impl ServingSim {
    /// Builds a simulator for `specs` sharing `config.base`'s cache,
    /// with instrumentation compiled out ([`NullRecorder`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for bad parameters,
    /// [`ServeError::InvalidTenants`] for an empty tenant list, and
    /// [`ServeError::Arch`] if a tenant's partial geometry cannot be
    /// built.
    pub fn new(config: ServeConfig, specs: Vec<TenantSpec>) -> Result<Self, ServeError> {
        Self::with_recorder(config, specs, NullRecorder)
    }

    /// [`new`](ServingSim::new) under an injected fault load. The
    /// injector's scheduled slice failures become virtual-clock events;
    /// its stragglers, LUT corruption and transient errors perturb
    /// dispatches as they happen. `FaultInjector::none` reproduces the
    /// fault-free engine byte-for-byte.
    ///
    /// # Errors
    ///
    /// Same as [`new`](ServingSim::new), plus
    /// [`ServeError::InvalidConfig`] when the injector was resolved for
    /// a different slice count than `config.base`'s cache.
    pub fn with_faults(
        config: ServeConfig,
        specs: Vec<TenantSpec>,
        injector: FaultInjector,
    ) -> Result<Self, ServeError> {
        Self::construct(config, specs, NullRecorder, injector)
    }

    /// Starts a [`ServingSimBuilder`]: the preferred construction path
    /// when a recorder or fault injector (or both) are in play.
    pub fn builder(config: ServeConfig, specs: Vec<TenantSpec>) -> ServingSimBuilder {
        ServingSimBuilder {
            config,
            specs,
            recorder: NullRecorder,
            injector: None,
        }
    }
}

impl<R: Recorder> ServingSim<R> {
    /// [`new`](ServingSim::new) with an explicit event recorder.
    ///
    /// # Errors
    ///
    /// Same as [`new`](ServingSim::new).
    pub fn with_recorder(
        config: ServeConfig,
        specs: Vec<TenantSpec>,
        recorder: R,
    ) -> Result<Self, ServeError> {
        let slices = config.base.geometry.slices();
        Self::construct(config, specs, recorder, FaultInjector::none(slices))
    }

    /// [`with_faults`](ServingSim::with_faults) with an explicit event
    /// recorder.
    ///
    /// # Errors
    ///
    /// Same as [`with_faults`](ServingSim::with_faults).
    #[deprecated(
        since = "0.1.0",
        note = "use ServingSim::builder(..).recorder(..).injector(..).build() \
                — the validated builder is the one construction path"
    )]
    pub fn with_recorder_and_faults(
        config: ServeConfig,
        specs: Vec<TenantSpec>,
        recorder: R,
        injector: FaultInjector,
    ) -> Result<Self, ServeError> {
        Self::construct(config, specs, recorder, injector)
    }

    /// The one real constructor every public path delegates to.
    fn construct(
        config: ServeConfig,
        specs: Vec<TenantSpec>,
        recorder: R,
        injector: FaultInjector,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        if specs.is_empty() {
            return Err(ServeError::InvalidTenants {
                reason: "at least one tenant is required".to_string(),
            });
        }
        let tenants: Vec<Tenant> = specs
            .into_iter()
            .map(|spec| Tenant::new(spec, &config.base))
            .collect::<Result<_, _>>()?;
        let geometry = config.base.geometry.clone();
        if injector.slices() != geometry.slices() {
            return Err(ServeError::InvalidConfig {
                parameter: "injector",
                reason: format!(
                    "fault injector resolved for {} slices but the cache has {}",
                    injector.slices(),
                    geometry.slices()
                ),
            });
        }
        let interference =
            bfree::InterferenceModel::new(geometry.clone(), config.base.timing.clone());
        let contention = CoTenancyModel::new(interference, geometry.total_subarrays());
        let pool = SlicePool::new(geometry.clone());
        let scheduler = Scheduler::new(&config, tenants.len());
        let telemetry = Telemetry::new(geometry.slices());
        let registry = Arc::new(ModelRegistry::from_specs(
            tenants.iter().map(|t| t.spec().clone()),
        ));
        let mut sim = ServingSim {
            tenants,
            base: config.base.clone(),
            registry,
            staged_swaps: Vec::new(),
            pool,
            health: HealthMap::new(geometry.slices()),
            scheduler,
            contention,
            telemetry,
            retry: config.retry.clone(),
            deadline_ns: config.deadline_ns,
            shed_watermark: config.shed_watermark,
            injector,
            events: BinaryHeap::new(),
            scheduled_deadlines: BTreeSet::new(),
            active: Vec::new(),
            aborted: BTreeSet::new(),
            lut_repaired: vec![false; geometry.slices()],
            clock_ns: 0,
            next_request_id: 0,
            next_dispatch_id: 0,
            next_seq: 0,
            pending_retries: 0,
            work_conservation_violations: 0,
            work: WorkLedger::new(),
            recorder,
        };
        // A fault-free injector schedules nothing: the event heap (and
        // therefore the whole run) is identical to the pre-fault engine.
        let failures: Vec<_> = sim.injector.slice_failures().to_vec();
        for fault in failures {
            sim.push_event(
                fault.fail_at_ns,
                EventKind::SliceFail { slice: fault.slice },
            );
            if let Some(recover_ns) = fault.recover_at_ns {
                sim.push_event(recover_ns, EventKind::SliceRecover { slice: fault.slice });
            }
        }
        Ok(sim)
    }

    /// The recorder this simulator emits to.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Submits one inference request for tenant `tenant` arriving at
    /// virtual time `at_ns` (clamped forward to the current clock), and
    /// returns its request ID.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn submit(&mut self, tenant: usize, at_ns: u64) -> u64 {
        assert!(
            tenant < self.tenants.len(),
            "tenant index {tenant} out of range"
        );
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let time_ns = at_ns.max(self.clock_ns);
        self.push_event(time_ns, EventKind::Arrival { request_id, tenant });
        request_id
    }

    /// The current virtual time in nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Requests admitted and still waiting for dispatch.
    pub fn queued(&self) -> u64 {
        self.scheduler.queued() as u64
    }

    /// Requests dispatched and not yet complete.
    pub fn in_flight(&self) -> u64 {
        self.active.iter().map(|d| d.requests.len() as u64).sum()
    }

    /// Requests waiting out a retry backoff: faulted, not terminal, not
    /// yet re-queued. Part of the conservation identity
    /// `submitted = completed + rejected + queued + in_flight +
    /// pending_retries`.
    pub fn pending_retries(&self) -> u64 {
        self.pending_retries
    }

    /// Slices currently unallocated (quarantined slices included: a
    /// failed slice is unusable, not owned).
    pub fn free_slices(&self) -> usize {
        self.pool.free_slices()
    }

    /// Per-slice health as the engine currently sees it.
    pub fn health(&self) -> &HealthMap {
        &self.health
    }

    /// The fault injector driving this run.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// The tenants, in submission-index order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// The per-tenant model binding table. Holds version 1 of every
    /// construction-time spec until a scheduled swap publishes a
    /// successor; with no swaps scheduled the engine is byte-identical
    /// to its pre-registry behavior.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Schedules an atomic model hot-swap: at virtual time `at_ns`
    /// (clamped forward to the current clock) tenant slot `tenant` is
    /// republished as `version` serving `spec`. The replacement tenant
    /// is priced *now* — same mapper, same demand derivation as
    /// construction — so the swap event itself cannot fail; at the swap
    /// point the binding flips in one pointer store. In-flight
    /// dispatches retire under the version that launched them (their
    /// latency, energy and slice allocation are already committed);
    /// queued and future requests dispatch under the new version. The
    /// slice pool is never drained.
    ///
    /// # Errors
    ///
    /// [`ServeError::Arch`] when the replacement spec's partial
    /// geometry cannot be built.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn schedule_model_swap(
        &mut self,
        tenant: usize,
        at_ns: u64,
        version: u64,
        spec: TenantSpec,
    ) -> Result<(), ServeError> {
        assert!(
            tenant < self.tenants.len(),
            "tenant index {tenant} out of range"
        );
        let state = Tenant::new(spec, &self.base)?;
        let swap = self.staged_swaps.len();
        self.staged_swaps.push(StagedSwap {
            tenant,
            version,
            state: Some(state),
        });
        self.push_event(at_ns.max(self.clock_ns), EventKind::ModelSwap { swap });
        Ok(())
    }

    /// Telemetry collected so far.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Per-request work performed so far (see [`WorkLedger`]): every
    /// service attempt that ran charges the work profile of the model
    /// version that launched it.
    pub fn work_ledger(&self) -> &WorkLedger {
        &self.work
    }

    /// Times the engine found an eligible batch but could not place it —
    /// always 0 unless there is a scheduler/pool bug. Exposed for
    /// property tests.
    pub fn work_conservation_violations(&self) -> u64 {
        self.work_conservation_violations
    }

    /// Runs until no events remain, then returns the telemetry.
    pub fn run_to_idle(&mut self) -> &Telemetry {
        while self.step() {}
        &self.telemetry
    }

    /// Processes events up to and including virtual time `until_ns`,
    /// then advances the clock to `until_ns`.
    pub fn run_until(&mut self, until_ns: u64) -> &Telemetry {
        while self.events.peek().is_some_and(|e| e.time_ns <= until_ns) {
            self.step();
        }
        if until_ns > self.clock_ns {
            self.advance_clock(until_ns);
        }
        &self.telemetry
    }

    /// Pops and handles the single next event; `false` when the heap is
    /// empty. Drivers that must react between events (closed-loop
    /// clients) step the engine manually; everyone else uses
    /// [`run_to_idle`](ServingSim::run_to_idle).
    pub fn step(&mut self) -> bool {
        let Some(event) = self.events.pop() else {
            return false;
        };
        self.advance_clock(event.time_ns);
        match event.kind {
            EventKind::Arrival { request_id, tenant } => {
                self.telemetry.note_submit(self.clock_ns);
                self.recorder.instant(
                    Subsystem::Serve,
                    "request/arrival",
                    self.clock_ns as f64,
                    || {
                        format!(
                            "request={request_id} tenant={}",
                            self.tenants[tenant].name()
                        )
                    },
                );
                let request = QueuedRequest {
                    request_id,
                    tenant,
                    submit_ns: self.clock_ns,
                    attempt: 0,
                };
                if self
                    .shed_floor()
                    .is_some_and(|floor| self.tenants[tenant].spec().priority < floor)
                {
                    self.recorder.instant(
                        Subsystem::Fault,
                        "request/shed",
                        self.clock_ns as f64,
                        || {
                            format!(
                                "request={request_id} tenant={} healthy={:.3}",
                                self.tenants[tenant].name(),
                                self.health.available_fraction(),
                            )
                        },
                    );
                    self.record_rejection(request, RejectReason::Shed);
                } else {
                    match self.scheduler.admit(request, &self.tenants) {
                        Ok(()) => self.recorder.counter(
                            Subsystem::Serve,
                            "request/admitted",
                            1.0,
                            Unit::Count,
                        ),
                        Err(reason) => self.record_rejection(request, reason),
                    }
                }
            }
            EventKind::Completion { dispatch } => self.complete(dispatch),
            EventKind::Deadline => {
                self.scheduled_deadlines.remove(&event.time_ns);
            }
            EventKind::SliceFail { slice } => self.fail_slice(slice),
            EventKind::SliceRecover { slice } => {
                if self.health.mark_recovered(slice) {
                    self.recorder.instant(
                        Subsystem::Fault,
                        "fault/slice_recovered",
                        self.clock_ns as f64,
                        || format!("slice={slice}"),
                    );
                }
            }
            EventKind::ModelSwap { swap } => {
                let staged = &mut self.staged_swaps[swap];
                let tenant = staged.tenant;
                let version = staged.version;
                let state = staged
                    .state
                    .take()
                    .expect("a swap event fires exactly once");
                let old_version = self.registry.current(tenant).version;
                self.registry.publish(tenant, version, state.spec().clone());
                self.tenants[tenant] = state;
                self.recorder
                    .instant(Subsystem::Model, "model/swap", self.clock_ns as f64, || {
                        format!(
                            "tenant={} version={old_version}->{version} demand={}",
                            self.tenants[tenant].name(),
                            self.tenants[tenant].demand_slices(),
                        )
                    });
            }
            EventKind::Retry { request } => {
                self.pending_retries -= 1;
                match self.scheduler.admit(request, &self.tenants) {
                    Ok(()) => self.recorder.counter(
                        Subsystem::Fault,
                        "request/retry_admitted",
                        1.0,
                        Unit::Count,
                    ),
                    Err(reason) => self.record_rejection(request, reason),
                }
            }
        }
        self.dispatch_loop();
        if self.recorder.is_enabled() {
            let now = self.clock_ns as f64;
            self.recorder
                .gauge(Subsystem::Serve, "queue/depth", now, self.queued() as f64);
            self.recorder.gauge(
                Subsystem::Serve,
                "pool/free_slices",
                now,
                self.pool.free_slices() as f64,
            );
            self.recorder.gauge(
                Subsystem::Serve,
                "requests/in_flight",
                now,
                self.in_flight() as f64,
            );
        }
        true
    }

    /// Charges the interval `[clock, to]` to the telemetry integrals and
    /// moves the clock.
    fn advance_clock(&mut self, to_ns: u64) {
        debug_assert!(
            to_ns >= self.clock_ns,
            "virtual clock must not run backwards"
        );
        if to_ns > self.clock_ns {
            let busy: usize = self.active.iter().map(|d| d.allocation.slices()).sum();
            let modes: Vec<(BceMode, usize)> = self
                .active
                .iter()
                .map(|d| (d.mode, d.allocation.subarrays()))
                .collect();
            let slowdown = self.contention.conventional_slowdown(&modes);
            self.telemetry
                .note_interval(self.clock_ns, to_ns, busy, slowdown);
            self.clock_ns = to_ns;
        }
    }

    /// Sheds expired requests, then dispatches every batch the policy
    /// and the free healthy slices allow.
    fn dispatch_loop(&mut self) {
        for (request, reason) in self.scheduler.shed_expired(self.clock_ns) {
            if reason == RejectReason::DeadlineExpired {
                self.recorder.instant(
                    Subsystem::Fault,
                    "request/deadline_miss",
                    self.clock_ns as f64,
                    || format!("request={} stage=queued", request.request_id),
                );
            }
            self.record_rejection(request, reason);
        }
        loop {
            let free = self.pool.free_available_slices(&self.health);
            let Some(batch) = self
                .scheduler
                .next_batch(self.clock_ns, &mut self.tenants, free)
            else {
                break;
            };
            let tenant = &mut self.tenants[batch.tenant];
            let Some(allocation) = self
                .pool
                .allocate_available(tenant.demand_slices(), &self.health)
            else {
                // next_batch only offers tenants that fit `free`; landing
                // here means the accounting diverged. Count it (property
                // tests assert zero) and drop to avoid an infinite loop.
                self.work_conservation_violations += 1;
                break;
            };
            let report = tenant.base_report(batch.requests.len());
            let streamers = self.active.len() + 1;
            let service = self.contention.service_latency(report, streamers);
            // Straggler slices stretch the whole (lock-step) dispatch by
            // the worst multiplier; first-touch LUT repair rewrites each
            // slice's corrupted rows, in parallel across slices. Both
            // are exact no-ops under a fault-free injector (multiplier
            // exactly 1.0, zero corrupted rows), keeping this path
            // byte-identical to the pre-fault engine.
            let straggler = allocation
                .slice_ids
                .iter()
                .map(|&s| self.injector.straggler_multiplier(s))
                .fold(1.0_f64, f64::max);
            let repair_ns = allocation
                .slice_ids
                .iter()
                .filter(|&&s| !self.lut_repaired[s])
                .map(|&s| self.injector.lut_repair_ns(s))
                .max()
                .unwrap_or(0);
            for &s in &allocation.slice_ids {
                self.lut_repaired[s] = true;
            }
            let service_ns =
                ((service.nanoseconds() * straggler).ceil() as u64).saturating_add(repair_ns);
            let energy_per_request = report.total_energy() / batch.requests.len() as f64;
            let dispatch = self.next_dispatch_id;
            self.next_dispatch_id += 1;
            let complete_ns = self.clock_ns.saturating_add(service_ns.max(1));
            self.recorder.span_with(
                Subsystem::Serve,
                "dispatch",
                self.clock_ns as f64,
                (complete_ns - self.clock_ns) as f64,
                || {
                    let ids: Vec<String> = batch
                        .requests
                        .iter()
                        .map(|r| r.request_id.to_string())
                        .collect();
                    format!(
                        "dispatch={dispatch} tenant={} batch={} slices={} streamers={streamers} requests={}",
                        tenant.name(),
                        batch.requests.len(),
                        allocation.slices(),
                        ids.join("+"),
                    )
                },
            );
            self.recorder.counter(
                Subsystem::Serve,
                "dispatch/batched_requests",
                batch.requests.len() as f64,
                Unit::Count,
            );
            self.active.push(ActiveDispatch {
                dispatch,
                tenant: batch.tenant,
                allocation,
                requests: batch.requests,
                dispatch_ns: self.clock_ns,
                complete_ns,
                energy_per_request,
                work_per_request: tenant.request_work(),
                mode: tenant.mode(),
            });
            self.push_event(complete_ns, EventKind::Completion { dispatch });
        }
        if let Some(deadline) = self.scheduler.next_deadline(self.clock_ns) {
            if self.scheduled_deadlines.insert(deadline) {
                self.push_event(deadline, EventKind::Deadline);
            }
        }
    }

    /// Retires an active dispatch: frees its slices and records one
    /// completion per coalesced request — except requests whose service
    /// attempt hit an injected transient error, which go back through
    /// the retry policy instead.
    fn complete(&mut self, dispatch: u64) {
        // A dispatch aborted by a mid-flight slice failure already
        // settled its requests; its stale completion event is dropped.
        if self.aborted.remove(&dispatch) {
            return;
        }
        // Invariant: a completion event is enqueued exactly once per
        // dispatch pushed to `active`, and `complete` fires once per
        // event, so the dispatch is always present.
        let idx = self
            .active
            .iter()
            .position(|d| d.dispatch == dispatch)
            .expect("completion event for unknown dispatch");
        let done = self.active.swap_remove(idx);
        let batch = done.requests.len();
        for request in &done.requests {
            // Every service attempt that ran to its completion point did
            // the work — faulted attempts included (the fault corrupts
            // the answer, not the ops executed). Slice-failure aborts
            // never reach here, so aborted work is not charged.
            self.work.charge(request.request_id, done.work_per_request);
            if self
                .injector
                .transient_error(request.request_id, request.attempt)
            {
                self.recorder.instant(
                    Subsystem::Fault,
                    "fault/injected",
                    self.clock_ns as f64,
                    || {
                        format!(
                            "request={} attempt={} kind=transient",
                            request.request_id, request.attempt
                        )
                    },
                );
                self.settle_faulted(*request);
                continue;
            }
            self.recorder
                .counter(Subsystem::Serve, "request/completed", 1.0, Unit::Count);
            // The request id rides along as a detail so per-request
            // critical paths can be reconstructed from the trace
            // (`bfree_obs::RequestPaths`); aggregation keys ignore the
            // detail, so the distributions are unchanged.
            self.recorder.histogram_with(
                Subsystem::Serve,
                "latency/queue",
                (done.dispatch_ns - request.submit_ns) as f64,
                Unit::Nanoseconds,
                || format!("request={}", request.request_id),
            );
            self.recorder.histogram_with(
                Subsystem::Serve,
                "latency/total",
                (done.complete_ns - request.submit_ns) as f64,
                Unit::Nanoseconds,
                || format!("request={}", request.request_id),
            );
            self.recorder.counter(
                Subsystem::Serve,
                "request/energy",
                done.energy_per_request.picojoules(),
                Unit::Picojoules,
            );
            if self
                .deadline_ns
                .is_some_and(|d| done.complete_ns > request.submit_ns.saturating_add(d))
            {
                self.telemetry.note_deadline_violation();
                self.recorder.instant(
                    Subsystem::Fault,
                    "request/deadline_miss",
                    self.clock_ns as f64,
                    || format!("request={} stage=completed", request.request_id),
                );
            }
            self.telemetry.push(RequestRecord {
                request_id: request.request_id,
                tenant: done.tenant,
                tenant_name: self.tenants[done.tenant].name().to_string(),
                submit_ns: request.submit_ns,
                dispatch_ns: done.dispatch_ns,
                complete_ns: done.complete_ns,
                batch,
                energy: done.energy_per_request,
                outcome: Outcome::Completed,
            });
        }
        self.pool.release(done.allocation);
    }

    /// Quarantines `slice` and aborts any in-flight dispatch holding
    /// it: the dispatch's healthy slices return to the pool (the failed
    /// one stays excluded via the health map) and its requests re-enter
    /// through the retry policy.
    fn fail_slice(&mut self, slice: usize) {
        if !self.health.mark_failed(slice) {
            return;
        }
        self.recorder.instant(
            Subsystem::Fault,
            "fault/slice_failed",
            self.clock_ns as f64,
            || format!("slice={slice}"),
        );
        self.recorder.instant(
            Subsystem::Fault,
            "pool/quarantine",
            self.clock_ns as f64,
            || {
                format!(
                    "slice={slice} available={}/{}",
                    self.health.available_slices(),
                    self.health.slices()
                )
            },
        );
        // Slices are exclusively owned, so at most one dispatch holds it.
        if let Some(idx) = self
            .active
            .iter()
            .position(|d| d.allocation.slice_ids.contains(&slice))
        {
            let done = self.active.swap_remove(idx);
            self.aborted.insert(done.dispatch);
            for request in &done.requests {
                self.settle_faulted(*request);
            }
            self.pool.release(done.allocation);
        }
    }

    /// Settles one faulted service attempt: schedules a retry after the
    /// policy's deterministic backoff, or terminates the request with
    /// [`RejectReason::RetriesExhausted`] when no attempts remain.
    fn settle_faulted(&mut self, request: QueuedRequest) {
        let next_attempt = request.attempt + 1;
        if next_attempt < self.retry.max_attempts {
            let backoff =
                self.retry
                    .backoff_ns(self.injector.seed(), request.request_id, next_attempt);
            let at = self.clock_ns.saturating_add(backoff.max(1));
            self.pending_retries += 1;
            self.telemetry.note_retry();
            self.recorder
                .instant(Subsystem::Fault, "request/retry", at as f64, || {
                    format!(
                        "request={} attempt={next_attempt} backoff_ns={backoff}",
                        request.request_id
                    )
                });
            self.push_event(
                at,
                EventKind::Retry {
                    request: QueuedRequest {
                        attempt: next_attempt,
                        ..request
                    },
                },
            );
        } else {
            self.record_rejection(request, RejectReason::RetriesExhausted);
        }
    }

    /// The tenant-priority class below which arrivals are currently
    /// shed, or `None` when capacity is above the watermark (or
    /// shedding is disabled). The deficit below the watermark decides
    /// how many of the lowest classes are sacrificed; the top class
    /// always survives.
    fn shed_floor(&self) -> Option<u8> {
        if self.shed_watermark <= 0.0 {
            return None;
        }
        let available = self.health.available_fraction();
        if available >= self.shed_watermark {
            return None;
        }
        let mut classes: Vec<u8> = self.tenants.iter().map(|t| t.spec().priority).collect();
        classes.sort_unstable();
        classes.dedup();
        if classes.len() <= 1 {
            return None;
        }
        let deficit = 1.0 - available / self.shed_watermark;
        let cut = ((deficit * classes.len() as f64).ceil() as usize).clamp(1, classes.len() - 1);
        Some(classes[cut])
    }

    fn record_rejection(&mut self, request: QueuedRequest, reason: RejectReason) {
        self.recorder
            .counter(Subsystem::Serve, "request/rejected", 1.0, Unit::Count);
        self.recorder.instant(
            Subsystem::Serve,
            "request/rejection",
            self.clock_ns as f64,
            || format!("request={} reason={}", request.request_id, reason.label()),
        );
        self.telemetry.push(RequestRecord {
            request_id: request.request_id,
            tenant: request.tenant,
            tenant_name: self.tenants[request.tenant].name().to_string(),
            submit_ns: request.submit_ns,
            dispatch_ns: self.clock_ns,
            complete_ns: self.clock_ns,
            batch: 0,
            energy: Energy::ZERO,
            outcome: Outcome::Rejected(reason),
        });
    }

    fn push_event(&mut self, time_ns: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Event { time_ns, seq, kind });
    }
}

impl<R: Recorder> Frontend for ServingSim<R> {
    fn engine(&self) -> &'static str {
        "virtual-clock"
    }

    fn submit_trace(&mut self, trace: &RequestTrace) -> Result<u64, ServeError> {
        // Validate every tenant index up front so a bad trace leaves the
        // engine untouched instead of half-enqueued.
        for event in trace.events() {
            let (TraceOp::Submit { tenant } | TraceOp::Swap { tenant, .. }) = &event.op;
            let tenant = *tenant;
            if tenant >= self.tenants.len() {
                return Err(ServeError::InvalidTenants {
                    reason: format!(
                        "trace targets tenant {tenant} but only {} are bound",
                        self.tenants.len()
                    ),
                });
            }
        }
        let mut submitted = 0;
        for event in trace.ordered() {
            match event.op {
                TraceOp::Submit { tenant } => {
                    self.submit(tenant, event.at_ns);
                    submitted += 1;
                }
                TraceOp::Swap {
                    tenant,
                    version,
                    spec,
                } => {
                    self.schedule_model_swap(tenant, event.at_ns, version, spec)?;
                }
            }
        }
        Ok(submitted)
    }

    fn drive_to_idle(&mut self) -> Result<(), ServeError> {
        self.run_to_idle();
        Ok(())
    }

    fn serving_telemetry(&self) -> &ServingTelemetry {
        &self.telemetry
    }

    fn work_ledger(&self) -> &WorkLedger {
        &self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfree::{BfreeConfig, BfreeSimulator};
    use pim_baselines::InferenceModel;
    use pim_nn::request::NetworkKind;

    fn lstm_spec() -> TenantSpec {
        TenantSpec::new("lstm", NetworkKind::LstmTimit)
    }

    #[test]
    fn single_request_matches_partial_cache_simulator_exactly() {
        let mut sim = ServingSim::new(ServeConfig::default(), vec![lstm_spec()]).unwrap();
        sim.submit(0, 0);
        let record = sim.run_to_idle().records()[0].clone();
        assert_eq!(record.outcome, Outcome::Completed);

        let demand = sim.tenants()[0].demand_slices();
        let config = BfreeConfig::paper_default()
            .with_slice_count(demand)
            .unwrap();
        let expect = BfreeSimulator::new(config)
            .run(&NetworkKind::LstmTimit.instantiate(), 1)
            .total_latency()
            .nanoseconds();
        let got = record.service_ns() as f64;
        assert!(
            (got / expect - 1.0).abs() < 0.01,
            "zero-contention service {got} ns vs dedicated {expect} ns"
        );
    }

    #[test]
    fn runs_are_bit_identical() {
        let run = || {
            let specs = vec![lstm_spec(), TenantSpec::new("bert", NetworkKind::BertBase)];
            let mut sim = ServingSim::new(ServeConfig::default(), specs).unwrap();
            for i in 0..20 {
                sim.submit((i % 2) as usize, i * 50_000);
            }
            sim.run_to_idle().csv_rows().join("\n")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn overload_sheds_with_typed_reasons_and_never_panics() {
        let config = ServeConfig {
            queue_capacity: 4,
            ..ServeConfig::default()
        };
        let mut sim = ServingSim::new(config, vec![lstm_spec()]).unwrap();
        // A burst far beyond queue capacity, all at t=0.
        for _ in 0..100 {
            sim.submit(0, 0);
        }
        let summary = sim.run_to_idle().summary();
        assert_eq!(summary.submitted, 100);
        assert_eq!(summary.completed + summary.rejected, 100);
        assert!(summary.rejected > 0);
        assert_eq!(sim.work_conservation_violations(), 0);
    }

    #[test]
    fn accounting_identity_holds_mid_run() {
        let mut sim = ServingSim::new(ServeConfig::default(), vec![lstm_spec()]).unwrap();
        for i in 0..10 {
            sim.submit(0, i * 1_000);
        }
        sim.run_until(5_000);
        let summary = sim.telemetry().summary();
        let accounted = summary.completed + summary.rejected + sim.queued() + sim.in_flight();
        assert_eq!(accounted, summary.submitted);
    }

    #[test]
    fn concurrent_tenants_slow_each_other_down() {
        let specs = vec![
            lstm_spec(),
            TenantSpec::new("lstm2", NetworkKind::LstmTimit),
        ];
        let mut solo = ServingSim::new(ServeConfig::default(), specs.clone()).unwrap();
        solo.submit(0, 0);
        let solo_service = solo.run_to_idle().records()[0].service_ns();

        let mut duo = ServingSim::new(ServeConfig::default(), specs).unwrap();
        duo.submit(0, 0);
        duo.submit(1, 0);
        let duo_telemetry = duo.run_to_idle();
        let slowest = duo_telemetry
            .records()
            .iter()
            .map(|r| r.service_ns())
            .max()
            .unwrap();
        assert!(
            slowest > solo_service,
            "co-running tenants must see DRAM contention: {slowest} vs {solo_service}"
        );
        assert!(duo_telemetry.summary().avg_conventional_slowdown > 1.0);
    }

    #[test]
    fn recorder_sees_full_request_lifecycle() {
        use bfree_obs::AggRecorder;

        let config = ServeConfig {
            queue_capacity: 3,
            ..ServeConfig::default()
        };
        let mut sim =
            ServingSim::with_recorder(config, vec![lstm_spec()], AggRecorder::new()).unwrap();
        for _ in 0..100 {
            sim.submit(0, 0);
        }
        sim.run_to_idle();
        let summary = sim.telemetry().summary();
        let rec = sim.recorder();
        assert_eq!(
            rec.sum(Subsystem::Serve, "request/admitted"),
            (summary.submitted - summary.rejected) as f64
        );
        assert_eq!(
            rec.sum(Subsystem::Serve, "request/completed"),
            summary.completed as f64
        );
        assert_eq!(
            rec.sum(Subsystem::Serve, "request/rejected"),
            summary.rejected as f64
        );
        assert!(summary.rejected > 0, "burst above capacity must shed");
        // Queue-latency and total-latency distributions carry one
        // observation per completed request.
        let entries = rec.snapshot();
        let total_latency = entries
            .iter()
            .find(|e| e.name == "latency/total")
            .expect("latency/total histogram");
        assert_eq!(total_latency.count, summary.completed);
        assert!(total_latency.min > 0.0);
        // Gauges sampled the queue after every event.
        assert!(entries.iter().any(|e| e.name == "queue/depth"));
        assert!(entries.iter().any(|e| e.name == "pool/free_slices"));
    }

    #[test]
    fn request_paths_reconstruct_from_the_trace_exactly() {
        use bfree_obs::{RequestPaths, RingRecorder};

        let specs = vec![lstm_spec(), TenantSpec::new("bert", NetworkKind::BertBase)];
        let mut sim =
            ServingSim::with_recorder(ServeConfig::default(), specs, RingRecorder::new(65536))
                .unwrap();
        for i in 0..30 {
            sim.submit((i % 2) as usize, i * 40_000);
        }
        sim.run_to_idle();
        let paths = RequestPaths::from_events(&sim.recorder().events());
        let completed: Vec<_> = sim
            .telemetry()
            .records()
            .iter()
            .filter(|r| r.outcome == Outcome::Completed)
            .cloned()
            .collect();
        assert_eq!(paths.len(), completed.len());
        // Every reconstructed path matches its telemetry record with
        // 0.0 divergence — the trace carries the full answer.
        for record in &completed {
            let path = paths
                .paths()
                .iter()
                .find(|p| p.request_id == record.request_id)
                .expect("every completed request reconstructs");
            assert_eq!(
                path.total_ns,
                (record.complete_ns - record.submit_ns) as f64
            );
            assert_eq!(
                path.queue_ns,
                (record.dispatch_ns - record.submit_ns) as f64
            );
            assert_eq!(path.service_ns, path.total_ns - path.queue_ns);
            assert_eq!(path.tenant.as_deref(), Some(record.tenant_name.as_str()));
        }
        assert!(paths.exemplar(99.0).is_some());
    }

    #[test]
    fn recorded_run_keeps_telemetry_identical() {
        use bfree_obs::RingRecorder;

        fn drive<R: Recorder>(mut sim: ServingSim<R>) -> String {
            for i in 0..12 {
                sim.submit(0, i * 40_000);
            }
            sim.run_to_idle().csv_rows().join("\n")
        }
        let plain = drive(ServingSim::new(ServeConfig::default(), vec![lstm_spec()]).unwrap());
        let recorded = drive(
            ServingSim::with_recorder(
                ServeConfig::default(),
                vec![lstm_spec()],
                RingRecorder::new(4096),
            )
            .unwrap(),
        );
        assert_eq!(plain, recorded);
    }

    #[test]
    fn transient_errors_retry_and_converge() {
        use bfree_fault::{FaultInjector, FaultPlan, RetryPolicy};

        let plan = FaultPlan::none().with_transient_errors(0.3);
        let injector = FaultInjector::new(plan, 42, 14, 0).unwrap();
        let config = ServeConfig {
            retry: RetryPolicy::standard(),
            ..ServeConfig::default()
        };
        let mut sim = ServingSim::with_faults(config, vec![lstm_spec()], injector).unwrap();
        for i in 0..40 {
            sim.submit(0, i * 30_000);
        }
        let summary = sim.run_to_idle().summary().clone();
        assert_eq!(summary.submitted, 40);
        assert_eq!(
            summary.completed + summary.rejected,
            40,
            "every request must end exactly once"
        );
        assert!(summary.retries > 0, "30% fault rate must trigger retries");
        assert!(
            summary.completed > summary.retries_exhausted,
            "4 attempts at 30% per-attempt failure should mostly converge"
        );
        assert_eq!(sim.pending_retries(), 0);
        assert_eq!(sim.free_slices(), 14);
    }

    #[test]
    fn slice_failure_quarantines_and_recovery_restores() {
        use bfree_fault::{FaultInjector, FaultPlan, RetryPolicy};
        use pim_arch::SliceState;

        // Force exactly slice-level failures with certainty: rate 1.0
        // fails every slice, which is too much; instead check a 50% draw
        // and assert against what the injector actually resolved.
        let plan = FaultPlan::none().with_slice_failures(0.3, 50_000_000, Some(25_000_000));
        let injector = FaultInjector::new(plan, 7, 14, 0).unwrap();
        let failures = injector.slice_failures().to_vec();
        assert!(!failures.is_empty(), "30% of 14 slices at seed 7");

        let config = ServeConfig {
            retry: RetryPolicy::standard(),
            ..ServeConfig::default()
        };
        let mut sim = ServingSim::with_faults(config, vec![lstm_spec()], injector).unwrap();
        for i in 0..30 {
            sim.submit(0, i * 5_000_000);
        }
        // Mid-run (after all failures, before any recovery completes at
        // the earliest failure's recovery time) the failed slices are
        // quarantined.
        let first_recovery = failures
            .iter()
            .map(|f| f.recover_at_ns.unwrap())
            .min()
            .unwrap();
        sim.run_until(first_recovery - 1);
        for f in failures.iter().filter(|f| f.fail_at_ns < first_recovery) {
            assert_eq!(sim.health().state(f.slice), SliceState::Failed);
        }
        let summary = sim.run_to_idle().summary().clone();
        // After run-to-idle every failure has recovered.
        for f in &failures {
            assert_eq!(sim.health().state(f.slice), SliceState::Healthy);
        }
        assert_eq!(summary.completed + summary.rejected, summary.submitted);
        assert_eq!(sim.pending_retries(), 0);
        assert_eq!(sim.free_slices(), 14);
        assert_eq!(sim.work_conservation_violations(), 0);
    }

    #[test]
    fn load_shedding_sacrifices_low_priority_first() {
        use bfree_fault::{FaultInjector, FaultPlan};

        // Fail half the pool immediately and never recover; watermark
        // 0.9 puts the pool deep under water.
        let plan = FaultPlan::none().with_slice_failures(0.5, 1, None);
        let injector = FaultInjector::new(plan, 3, 14, 0).unwrap();
        assert!(injector.slice_failures().len() >= 4);
        let specs = vec![
            TenantSpec::new("batch", NetworkKind::LstmTimit).with_priority(0),
            TenantSpec::new("interactive", NetworkKind::LstmTimit).with_priority(9),
        ];
        let config = ServeConfig {
            shed_watermark: 0.9,
            ..ServeConfig::default()
        };
        let mut sim = ServingSim::with_faults(config, specs, injector).unwrap();
        for i in 0..20 {
            // Interleave arrivals from both classes, after the failures.
            sim.submit((i % 2) as usize, 1_000 + i * 200_000);
        }
        sim.run_to_idle();
        let records = sim.telemetry().records();
        let shed_tenants: Vec<usize> = records
            .iter()
            .filter(|r| r.outcome == Outcome::Rejected(RejectReason::Shed))
            .map(|r| r.tenant)
            .collect();
        assert!(!shed_tenants.is_empty(), "watermark breach must shed");
        assert!(
            shed_tenants.iter().all(|&t| t == 0),
            "only the low-priority class may be shed: {shed_tenants:?}"
        );
        let completed_hi = records
            .iter()
            .filter(|r| r.tenant == 1 && r.outcome == Outcome::Completed)
            .count();
        assert_eq!(completed_hi, 10, "the protected class must fully complete");
    }

    #[test]
    fn deadline_violations_split_goodput_from_throughput() {
        use bfree_fault::FaultInjector;

        let config = ServeConfig {
            deadline_ns: Some(2_000_000),
            queue_capacity: 64,
            ..ServeConfig::default()
        };
        let injector = FaultInjector::none(14);
        let mut sim = ServingSim::with_faults(config, vec![lstm_spec()], injector).unwrap();
        // A burst at t=0 queues far past a 2 ms deadline.
        for _ in 0..40 {
            sim.submit(0, 0);
        }
        let summary = sim.run_to_idle().summary().clone();
        assert_eq!(summary.completed + summary.rejected, summary.submitted);
        assert!(
            summary.deadline_expired > 0 || summary.deadline_violations > 0,
            "a 40-deep burst must blow a 2 ms deadline somewhere"
        );
        assert!(summary.goodput_rps <= summary.throughput_rps);
        assert!((summary.availability - summary.completed as f64 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn zero_fault_injector_reproduces_the_plain_engine() {
        use bfree_fault::FaultInjector;

        let drive = |mut sim: ServingSim| {
            for i in 0..25 {
                sim.submit((i % 2) as usize, i * 35_000);
            }
            sim.run_to_idle().csv_rows().join("\n")
        };
        let specs = || vec![lstm_spec(), TenantSpec::new("bert", NetworkKind::BertBase)];
        let plain = drive(ServingSim::new(ServeConfig::default(), specs()).unwrap());
        let faultless = drive(
            ServingSim::with_faults(ServeConfig::default(), specs(), FaultInjector::none(14))
                .unwrap(),
        );
        assert_eq!(plain, faultless, "FaultInjector::none must be a no-op");
    }

    #[test]
    fn single_version_registry_is_byte_identical_to_pre_registry_runs() {
        // A registry with every tenant at version 1 (the default) must
        // not perturb the engine at all: no events, no telemetry drift.
        let mut sim = ServingSim::new(ServeConfig::default(), vec![lstm_spec()]).unwrap();
        assert_eq!(sim.registry().len(), 1);
        assert_eq!(sim.registry().current(0).version, 1);
        for i in 0..12 {
            sim.submit(0, i * 40_000);
        }
        let summary = sim.run_to_idle().summary();
        assert_eq!(summary.completed + summary.rejected, summary.submitted);
        assert_eq!(sim.registry().current(0).version, 1);
    }

    #[test]
    fn model_swap_republishes_without_draining_the_pool() {
        use bfree::PrecisionPolicy;

        let mut sim = ServingSim::new(ServeConfig::default(), vec![lstm_spec()]).unwrap();
        let old_demand = sim.tenants()[0].demand_slices();
        // Version 2: same network at int4, whose weights need half the
        // subarrays.
        let v2 = TenantSpec::new("lstm", NetworkKind::LstmTimit)
            .with_precision(PrecisionPolicy::Uniform(pim_bce::Precision::Int4));
        sim.schedule_model_swap(0, 10_000_000, 2, v2).unwrap();
        for i in 0..20 {
            sim.submit(0, i * 1_000_000);
        }
        let summary = sim.run_to_idle().summary().clone();
        assert_eq!(summary.completed + summary.rejected, summary.submitted);
        assert_eq!(sim.registry().current(0).version, 2);
        assert!(sim.tenants()[0].demand_slices() <= old_demand);
        assert_eq!(sim.free_slices(), 14, "swap must never leak slices");
        assert_eq!(sim.work_conservation_violations(), 0);
    }

    #[test]
    fn swapped_runs_are_bit_identical() {
        use bfree::PrecisionPolicy;

        let run = || {
            let mut sim = ServingSim::new(ServeConfig::default(), vec![lstm_spec()]).unwrap();
            let v2 = TenantSpec::new("lstm", NetworkKind::LstmTimit)
                .with_precision(PrecisionPolicy::mixed());
            sim.schedule_model_swap(0, 5_000_000, 2, v2).unwrap();
            for i in 0..16 {
                sim.submit(0, i * 700_000);
            }
            sim.run_to_idle().csv_rows().join("\n")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn swap_emits_a_model_subsystem_instant() {
        use bfree_obs::RingRecorder;

        let mut sim = ServingSim::with_recorder(
            ServeConfig::default(),
            vec![lstm_spec()],
            RingRecorder::new(4096),
        )
        .unwrap();
        sim.schedule_model_swap(0, 1_000, 2, lstm_spec()).unwrap();
        sim.submit(0, 2_000);
        sim.run_to_idle();
        let swaps: Vec<_> = sim
            .recorder()
            .events()
            .iter()
            .filter(|e| e.subsystem == Subsystem::Model && e.name == "model/swap")
            .cloned()
            .collect();
        assert_eq!(swaps.len(), 1);
        assert!(swaps[0].detail.as_deref().unwrap_or("").contains("1->2"));
    }

    #[test]
    fn unbuildable_swap_spec_fails_at_schedule_time() {
        let mut sim = ServingSim::new(ServeConfig::default(), vec![lstm_spec()]).unwrap();
        // Pricing happens eagerly, so the error surfaces here and the
        // run stays clean — an oversized tenant simply does not fit
        // (fits() = false) rather than erroring, so build one that does
        // error: there is no such spec today, meaning schedule always
        // succeeds; assert the staged swap still fires deterministically.
        let huge = TenantSpec::new("lstm", NetworkKind::BertLarge).with_replication(10_000);
        sim.schedule_model_swap(0, 1, 2, huge).unwrap();
        sim.submit(0, 10);
        let summary = sim.run_to_idle().summary().clone();
        // After the swap the tenant no longer fits: its requests shed
        // with a typed reason instead of panicking.
        assert_eq!(summary.completed + summary.rejected, summary.submitted);
        assert!(!sim.tenants()[0].fits());
    }

    #[test]
    fn mismatched_injector_shape_is_rejected() {
        use bfree_fault::FaultInjector;

        let err = ServingSim::with_faults(
            ServeConfig::default(),
            vec![lstm_spec()],
            FaultInjector::none(13),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidConfig {
                parameter: "injector",
                ..
            }
        ));
    }

    #[test]
    fn pool_never_oversubscribed_during_run() {
        let specs = vec![
            TenantSpec::new("a", NetworkKind::BertBase),
            TenantSpec::new("b", NetworkKind::BertBase),
            TenantSpec::new("c", NetworkKind::LstmTimit),
        ];
        let mut sim = ServingSim::new(ServeConfig::default(), specs).unwrap();
        for i in 0..30 {
            sim.submit((i % 3) as usize, i * 10_000);
        }
        sim.run_to_idle();
        assert_eq!(sim.free_slices(), 14);
        assert_eq!(sim.work_conservation_violations(), 0);
    }
}
