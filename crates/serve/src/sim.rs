//! The event-driven serving engine.
//!
//! [`ServingSim`] advances a u64-nanosecond *virtual* clock through a
//! totally ordered event heap — (time, sequence-number) — so a run is a
//! pure function of its inputs: no wall clock, no hash-order
//! nondeterminism, bit-identical traces on every execution.
//!
//! At every event the engine sheds expired requests, then greedily
//! dispatches eligible batches while slices remain (small tenants
//! backfill behind large blocked ones). Each dispatch snapshots the
//! number of concurrently active dispatches to price DRAM-bandwidth
//! sharing via [`CoTenancyModel`]; the interval between events is
//! charged to the telemetry's pool-utilization and conventional-traffic
//! integrals.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use bfree_obs::{NullRecorder, Recorder, Subsystem, Unit};
use pim_arch::Energy;
use pim_bce::BceMode;

use crate::contention::CoTenancyModel;
use crate::error::{RejectReason, ServeError};
use crate::pool::{SliceAllocation, SlicePool};
use crate::scheduler::{QueuedRequest, Scheduler, ServeConfig};
use crate::telemetry::{Outcome, RequestRecord, Telemetry};
use crate::tenant::{Tenant, TenantSpec};

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    Arrival { request_id: u64, tenant: usize },
    Completion { dispatch: u64 },
    Deadline,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time_ns: u64,
    seq: u64,
    kind: EventKind,
}

// Min-heap order on (time, seq); seq is unique, so the order is total
// and consistent with Eq.
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time_ns, other.seq).cmp(&(self.time_ns, self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct ActiveDispatch {
    dispatch: u64,
    tenant: usize,
    allocation: SliceAllocation,
    requests: Vec<QueuedRequest>,
    dispatch_ns: u64,
    complete_ns: u64,
    energy_per_request: Energy,
    mode: BceMode,
}

/// The multi-tenant serving simulator.
///
/// See the crate-level example for typical use: build with a
/// [`ServeConfig`] and tenant specs, [`submit`](ServingSim::submit)
/// requests, then [`run_to_idle`](ServingSim::run_to_idle).
///
/// Generic over a [`Recorder`]: [`ServingSim::new`] runs with the
/// zero-cost [`NullRecorder`]; [`ServingSim::with_recorder`] emits the
/// request lifecycle (arrival → admit/reject → dispatch → complete)
/// plus queue-depth and free-slice gauges to any recorder.
#[derive(Debug)]
pub struct ServingSim<R: Recorder = NullRecorder> {
    tenants: Vec<Tenant>,
    pool: SlicePool,
    scheduler: Scheduler,
    contention: CoTenancyModel,
    telemetry: Telemetry,
    events: BinaryHeap<Event>,
    scheduled_deadlines: BTreeSet<u64>,
    active: Vec<ActiveDispatch>,
    clock_ns: u64,
    next_request_id: u64,
    next_dispatch_id: u64,
    next_seq: u64,
    work_conservation_violations: u64,
    recorder: R,
}

impl ServingSim {
    /// Builds a simulator for `specs` sharing `config.base`'s cache,
    /// with instrumentation compiled out ([`NullRecorder`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for bad parameters,
    /// [`ServeError::InvalidTenants`] for an empty tenant list, and
    /// [`ServeError::Arch`] if a tenant's partial geometry cannot be
    /// built.
    pub fn new(config: ServeConfig, specs: Vec<TenantSpec>) -> Result<Self, ServeError> {
        Self::with_recorder(config, specs, NullRecorder)
    }
}

impl<R: Recorder> ServingSim<R> {
    /// [`new`](ServingSim::new) with an explicit event recorder.
    ///
    /// # Errors
    ///
    /// Same as [`new`](ServingSim::new).
    pub fn with_recorder(
        config: ServeConfig,
        specs: Vec<TenantSpec>,
        recorder: R,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        if specs.is_empty() {
            return Err(ServeError::InvalidTenants {
                reason: "at least one tenant is required".to_string(),
            });
        }
        let tenants: Vec<Tenant> = specs
            .into_iter()
            .map(|spec| Tenant::new(spec, &config.base))
            .collect::<Result<_, _>>()?;
        let geometry = config.base.geometry.clone();
        let interference =
            bfree::InterferenceModel::new(geometry.clone(), config.base.timing.clone());
        let contention = CoTenancyModel::new(interference, geometry.total_subarrays());
        let pool = SlicePool::new(geometry.clone());
        let scheduler = Scheduler::new(&config, tenants.len());
        let telemetry = Telemetry::new(geometry.slices());
        Ok(ServingSim {
            tenants,
            pool,
            scheduler,
            contention,
            telemetry,
            events: BinaryHeap::new(),
            scheduled_deadlines: BTreeSet::new(),
            active: Vec::new(),
            clock_ns: 0,
            next_request_id: 0,
            next_dispatch_id: 0,
            next_seq: 0,
            work_conservation_violations: 0,
            recorder,
        })
    }

    /// The recorder this simulator emits to.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Submits one inference request for tenant `tenant` arriving at
    /// virtual time `at_ns` (clamped forward to the current clock), and
    /// returns its request ID.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn submit(&mut self, tenant: usize, at_ns: u64) -> u64 {
        assert!(
            tenant < self.tenants.len(),
            "tenant index {tenant} out of range"
        );
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let time_ns = at_ns.max(self.clock_ns);
        self.push_event(time_ns, EventKind::Arrival { request_id, tenant });
        request_id
    }

    /// The current virtual time in nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Requests admitted and still waiting for dispatch.
    pub fn queued(&self) -> u64 {
        self.scheduler.queued() as u64
    }

    /// Requests dispatched and not yet complete.
    pub fn in_flight(&self) -> u64 {
        self.active.iter().map(|d| d.requests.len() as u64).sum()
    }

    /// Slices currently unallocated.
    pub fn free_slices(&self) -> usize {
        self.pool.free_slices()
    }

    /// The tenants, in submission-index order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Telemetry collected so far.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Times the engine found an eligible batch but could not place it —
    /// always 0 unless there is a scheduler/pool bug. Exposed for
    /// property tests.
    pub fn work_conservation_violations(&self) -> u64 {
        self.work_conservation_violations
    }

    /// Runs until no events remain, then returns the telemetry.
    pub fn run_to_idle(&mut self) -> &Telemetry {
        while self.step() {}
        &self.telemetry
    }

    /// Processes events up to and including virtual time `until_ns`,
    /// then advances the clock to `until_ns`.
    pub fn run_until(&mut self, until_ns: u64) -> &Telemetry {
        while self.events.peek().is_some_and(|e| e.time_ns <= until_ns) {
            self.step();
        }
        if until_ns > self.clock_ns {
            self.advance_clock(until_ns);
        }
        &self.telemetry
    }

    /// Pops and handles the single next event; `false` when the heap is
    /// empty. Drivers that must react between events (closed-loop
    /// clients) step the engine manually; everyone else uses
    /// [`run_to_idle`](ServingSim::run_to_idle).
    pub fn step(&mut self) -> bool {
        let Some(event) = self.events.pop() else {
            return false;
        };
        self.advance_clock(event.time_ns);
        match event.kind {
            EventKind::Arrival { request_id, tenant } => {
                self.telemetry.note_submit(self.clock_ns);
                self.recorder.instant(
                    Subsystem::Serve,
                    "request/arrival",
                    self.clock_ns as f64,
                    || {
                        format!(
                            "request={request_id} tenant={}",
                            self.tenants[tenant].name()
                        )
                    },
                );
                let request = QueuedRequest {
                    request_id,
                    tenant,
                    submit_ns: self.clock_ns,
                };
                match self.scheduler.admit(request, &self.tenants) {
                    Ok(()) => self.recorder.counter(
                        Subsystem::Serve,
                        "request/admitted",
                        1.0,
                        Unit::Count,
                    ),
                    Err(reason) => self.record_rejection(request, reason),
                }
            }
            EventKind::Completion { dispatch } => self.complete(dispatch),
            EventKind::Deadline => {
                self.scheduled_deadlines.remove(&event.time_ns);
            }
        }
        self.dispatch_loop();
        if self.recorder.is_enabled() {
            let now = self.clock_ns as f64;
            self.recorder
                .gauge(Subsystem::Serve, "queue/depth", now, self.queued() as f64);
            self.recorder.gauge(
                Subsystem::Serve,
                "pool/free_slices",
                now,
                self.pool.free_slices() as f64,
            );
            self.recorder.gauge(
                Subsystem::Serve,
                "requests/in_flight",
                now,
                self.in_flight() as f64,
            );
        }
        true
    }

    /// Charges the interval `[clock, to]` to the telemetry integrals and
    /// moves the clock.
    fn advance_clock(&mut self, to_ns: u64) {
        debug_assert!(
            to_ns >= self.clock_ns,
            "virtual clock must not run backwards"
        );
        if to_ns > self.clock_ns {
            let busy: usize = self.active.iter().map(|d| d.allocation.slices()).sum();
            let modes: Vec<(BceMode, usize)> = self
                .active
                .iter()
                .map(|d| (d.mode, d.allocation.subarrays()))
                .collect();
            let slowdown = self.contention.conventional_slowdown(&modes);
            self.telemetry
                .note_interval(self.clock_ns, to_ns, busy, slowdown);
            self.clock_ns = to_ns;
        }
    }

    /// Sheds expired requests, then dispatches every batch the policy
    /// and the free slices allow.
    fn dispatch_loop(&mut self) {
        for request in self.scheduler.shed_timeouts(self.clock_ns) {
            self.record_rejection(request, RejectReason::TimedOut);
        }
        loop {
            let free = self.pool.free_slices();
            let Some(batch) = self
                .scheduler
                .next_batch(self.clock_ns, &mut self.tenants, free)
            else {
                break;
            };
            let tenant = &mut self.tenants[batch.tenant];
            let Some(allocation) = self.pool.allocate(tenant.demand_slices()) else {
                // next_batch only offers tenants that fit `free`; landing
                // here means the accounting diverged. Count it (property
                // tests assert zero) and drop to avoid an infinite loop.
                self.work_conservation_violations += 1;
                break;
            };
            let report = tenant.base_report(batch.requests.len());
            let streamers = self.active.len() + 1;
            let service = self.contention.service_latency(report, streamers);
            let service_ns = service.nanoseconds().ceil() as u64;
            let energy_per_request = report.total_energy() / batch.requests.len() as f64;
            let dispatch = self.next_dispatch_id;
            self.next_dispatch_id += 1;
            let complete_ns = self.clock_ns.saturating_add(service_ns.max(1));
            self.recorder.span_with(
                Subsystem::Serve,
                "dispatch",
                self.clock_ns as f64,
                (complete_ns - self.clock_ns) as f64,
                || {
                    format!(
                        "tenant={} batch={} slices={} streamers={streamers}",
                        tenant.name(),
                        batch.requests.len(),
                        allocation.slices(),
                    )
                },
            );
            self.recorder.counter(
                Subsystem::Serve,
                "dispatch/batched_requests",
                batch.requests.len() as f64,
                Unit::Count,
            );
            self.active.push(ActiveDispatch {
                dispatch,
                tenant: batch.tenant,
                allocation,
                requests: batch.requests,
                dispatch_ns: self.clock_ns,
                complete_ns,
                energy_per_request,
                mode: tenant.mode(),
            });
            self.push_event(complete_ns, EventKind::Completion { dispatch });
        }
        if let Some(deadline) = self.scheduler.next_deadline(self.clock_ns) {
            if self.scheduled_deadlines.insert(deadline) {
                self.push_event(deadline, EventKind::Deadline);
            }
        }
    }

    /// Retires an active dispatch: frees its slices and records one
    /// completion per coalesced request.
    fn complete(&mut self, dispatch: u64) {
        // Invariant: a completion event is enqueued exactly once per
        // dispatch pushed to `active`, and `complete` fires once per
        // event, so the dispatch is always present.
        let idx = self
            .active
            .iter()
            .position(|d| d.dispatch == dispatch)
            .expect("completion event for unknown dispatch");
        let done = self.active.swap_remove(idx);
        let batch = done.requests.len();
        for request in &done.requests {
            self.recorder
                .counter(Subsystem::Serve, "request/completed", 1.0, Unit::Count);
            self.recorder.histogram(
                Subsystem::Serve,
                "latency/queue",
                (done.dispatch_ns - request.submit_ns) as f64,
                Unit::Nanoseconds,
            );
            self.recorder.histogram(
                Subsystem::Serve,
                "latency/total",
                (done.complete_ns - request.submit_ns) as f64,
                Unit::Nanoseconds,
            );
            self.recorder.counter(
                Subsystem::Serve,
                "request/energy",
                done.energy_per_request.picojoules(),
                Unit::Picojoules,
            );
            self.telemetry.push(RequestRecord {
                request_id: request.request_id,
                tenant: done.tenant,
                tenant_name: self.tenants[done.tenant].name().to_string(),
                submit_ns: request.submit_ns,
                dispatch_ns: done.dispatch_ns,
                complete_ns: done.complete_ns,
                batch,
                energy: done.energy_per_request,
                outcome: Outcome::Completed,
            });
        }
        self.pool.release(done.allocation);
    }

    fn record_rejection(&mut self, request: QueuedRequest, reason: RejectReason) {
        self.recorder
            .counter(Subsystem::Serve, "request/rejected", 1.0, Unit::Count);
        self.recorder.instant(
            Subsystem::Serve,
            "request/rejection",
            self.clock_ns as f64,
            || format!("request={} reason={}", request.request_id, reason.label()),
        );
        self.telemetry.push(RequestRecord {
            request_id: request.request_id,
            tenant: request.tenant,
            tenant_name: self.tenants[request.tenant].name().to_string(),
            submit_ns: request.submit_ns,
            dispatch_ns: self.clock_ns,
            complete_ns: self.clock_ns,
            batch: 0,
            energy: Energy::ZERO,
            outcome: Outcome::Rejected(reason),
        });
    }

    fn push_event(&mut self, time_ns: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Event { time_ns, seq, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfree::{BfreeConfig, BfreeSimulator};
    use pim_baselines::InferenceModel;
    use pim_nn::request::NetworkKind;

    fn lstm_spec() -> TenantSpec {
        TenantSpec::new("lstm", NetworkKind::LstmTimit)
    }

    #[test]
    fn single_request_matches_partial_cache_simulator_exactly() {
        let mut sim = ServingSim::new(ServeConfig::default(), vec![lstm_spec()]).unwrap();
        sim.submit(0, 0);
        let record = sim.run_to_idle().records()[0].clone();
        assert_eq!(record.outcome, Outcome::Completed);

        let demand = sim.tenants()[0].demand_slices();
        let config = BfreeConfig::paper_default()
            .with_slice_count(demand)
            .unwrap();
        let expect = BfreeSimulator::new(config)
            .run(&NetworkKind::LstmTimit.instantiate(), 1)
            .total_latency()
            .nanoseconds();
        let got = record.service_ns() as f64;
        assert!(
            (got / expect - 1.0).abs() < 0.01,
            "zero-contention service {got} ns vs dedicated {expect} ns"
        );
    }

    #[test]
    fn runs_are_bit_identical() {
        let run = || {
            let specs = vec![lstm_spec(), TenantSpec::new("bert", NetworkKind::BertBase)];
            let mut sim = ServingSim::new(ServeConfig::default(), specs).unwrap();
            for i in 0..20 {
                sim.submit((i % 2) as usize, i * 50_000);
            }
            sim.run_to_idle().csv_rows().join("\n")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn overload_sheds_with_typed_reasons_and_never_panics() {
        let config = ServeConfig {
            queue_capacity: 4,
            ..ServeConfig::default()
        };
        let mut sim = ServingSim::new(config, vec![lstm_spec()]).unwrap();
        // A burst far beyond queue capacity, all at t=0.
        for _ in 0..100 {
            sim.submit(0, 0);
        }
        let summary = sim.run_to_idle().summary();
        assert_eq!(summary.submitted, 100);
        assert_eq!(summary.completed + summary.rejected, 100);
        assert!(summary.rejected > 0);
        assert_eq!(sim.work_conservation_violations(), 0);
    }

    #[test]
    fn accounting_identity_holds_mid_run() {
        let mut sim = ServingSim::new(ServeConfig::default(), vec![lstm_spec()]).unwrap();
        for i in 0..10 {
            sim.submit(0, i * 1_000);
        }
        sim.run_until(5_000);
        let summary = sim.telemetry().summary();
        let accounted = summary.completed + summary.rejected + sim.queued() + sim.in_flight();
        assert_eq!(accounted, summary.submitted);
    }

    #[test]
    fn concurrent_tenants_slow_each_other_down() {
        let specs = vec![
            lstm_spec(),
            TenantSpec::new("lstm2", NetworkKind::LstmTimit),
        ];
        let mut solo = ServingSim::new(ServeConfig::default(), specs.clone()).unwrap();
        solo.submit(0, 0);
        let solo_service = solo.run_to_idle().records()[0].service_ns();

        let mut duo = ServingSim::new(ServeConfig::default(), specs).unwrap();
        duo.submit(0, 0);
        duo.submit(1, 0);
        let duo_telemetry = duo.run_to_idle();
        let slowest = duo_telemetry
            .records()
            .iter()
            .map(|r| r.service_ns())
            .max()
            .unwrap();
        assert!(
            slowest > solo_service,
            "co-running tenants must see DRAM contention: {slowest} vs {solo_service}"
        );
        assert!(duo_telemetry.summary().avg_conventional_slowdown > 1.0);
    }

    #[test]
    fn recorder_sees_full_request_lifecycle() {
        use bfree_obs::AggRecorder;

        let config = ServeConfig {
            queue_capacity: 3,
            ..ServeConfig::default()
        };
        let mut sim =
            ServingSim::with_recorder(config, vec![lstm_spec()], AggRecorder::new()).unwrap();
        for _ in 0..100 {
            sim.submit(0, 0);
        }
        sim.run_to_idle();
        let summary = sim.telemetry().summary();
        let rec = sim.recorder();
        assert_eq!(
            rec.sum(Subsystem::Serve, "request/admitted"),
            (summary.submitted - summary.rejected) as f64
        );
        assert_eq!(
            rec.sum(Subsystem::Serve, "request/completed"),
            summary.completed as f64
        );
        assert_eq!(
            rec.sum(Subsystem::Serve, "request/rejected"),
            summary.rejected as f64
        );
        assert!(summary.rejected > 0, "burst above capacity must shed");
        // Queue-latency and total-latency distributions carry one
        // observation per completed request.
        let entries = rec.snapshot();
        let total_latency = entries
            .iter()
            .find(|e| e.name == "latency/total")
            .expect("latency/total histogram");
        assert_eq!(total_latency.count, summary.completed);
        assert!(total_latency.min > 0.0);
        // Gauges sampled the queue after every event.
        assert!(entries.iter().any(|e| e.name == "queue/depth"));
        assert!(entries.iter().any(|e| e.name == "pool/free_slices"));
    }

    #[test]
    fn recorded_run_keeps_telemetry_identical() {
        use bfree_obs::RingRecorder;

        fn drive<R: Recorder>(mut sim: ServingSim<R>) -> String {
            for i in 0..12 {
                sim.submit(0, i * 40_000);
            }
            sim.run_to_idle().csv_rows().join("\n")
        }
        let plain = drive(ServingSim::new(ServeConfig::default(), vec![lstm_spec()]).unwrap());
        let recorded = drive(
            ServingSim::with_recorder(
                ServeConfig::default(),
                vec![lstm_spec()],
                RingRecorder::new(4096),
            )
            .unwrap(),
        );
        assert_eq!(plain, recorded);
    }

    #[test]
    fn pool_never_oversubscribed_during_run() {
        let specs = vec![
            TenantSpec::new("a", NetworkKind::BertBase),
            TenantSpec::new("b", NetworkKind::BertBase),
            TenantSpec::new("c", NetworkKind::LstmTimit),
        ];
        let mut sim = ServingSim::new(ServeConfig::default(), specs).unwrap();
        for i in 0..30 {
            sim.submit((i % 3) as usize, i * 10_000);
        }
        sim.run_to_idle();
        assert_eq!(sim.free_slices(), 14);
        assert_eq!(sim.work_conservation_violations(), 0);
    }
}
