//! Co-tenancy cost composition.
//!
//! Per-tenant [`RunReport`]s are priced against a *private* slice share,
//! but two resources stay shared when tenants run concurrently:
//!
//! * **DRAM streaming bandwidth.** Weight loading, batched input
//!   streaming and batched writeback all ride the one main-memory
//!   channel (paper Fig. 12(b): weight load dominates BFree runtime).
//!   With `n` tenants streaming concurrently each sees `1/n` of the
//!   bandwidth, so the memory-bound phases of a dispatch inflate by the
//!   number of active streamers at dispatch time.
//! * **Conventional cache traffic.** The cores still use the LLC as a
//!   cache. [`InterferenceModel`] (paper §II-A/III-A) prices what the
//!   PIM kernels' bitline occupancy costs a random conventional access;
//!   the serving layer reports the time-weighted slowdown over the run.
//!
//! Compute, quantize and configuration phases stay private to the
//! tenant's slices and are not inflated.

use bfree::InterferenceModel;
use pim_arch::{Latency, Phase};
use pim_baselines::RunReport;
use pim_bce::BceMode;

/// The phases that contend for DRAM bandwidth.
const MEMORY_PHASES: [Phase; 3] = [Phase::WeightLoad, Phase::InputLoad, Phase::Writeback];

/// Composes private phase reports with shared-resource contention.
#[derive(Debug, Clone)]
pub struct CoTenancyModel {
    interference: InterferenceModel,
    total_subarrays: usize,
}

impl CoTenancyModel {
    /// Builds the model for a machine.
    pub fn new(interference: InterferenceModel, total_subarrays: usize) -> Self {
        CoTenancyModel {
            interference,
            total_subarrays,
        }
    }

    /// End-to-end service latency of a dispatch whose contention-free
    /// report is `base`, when `dram_streamers` tenants (including this
    /// one) share the memory channel.
    ///
    /// With one streamer this is exactly `base.total_latency()`.
    pub fn service_latency(&self, base: &RunReport, dram_streamers: usize) -> Latency {
        let share = dram_streamers.max(1) as f64;
        let mut total = Latency::ZERO;
        for (phase, latency) in base.latency.iter() {
            if MEMORY_PHASES.contains(&phase) {
                total += latency * share;
            } else {
                total += latency;
            }
        }
        total
    }

    /// Slowdown of conventional (non-PIM) cache accesses while the given
    /// dispatches are active, each contributing `subarrays` running in
    /// `mode`. 1.0 means unaffected.
    pub fn conventional_slowdown(&self, active: &[(BceMode, usize)]) -> f64 {
        let total = self.total_subarrays.max(1) as f64;
        let mut slowdown = 1.0;
        for &(mode, subarrays) in active {
            let fraction = (subarrays as f64 / total).clamp(0.0, 1.0);
            slowdown += self.interference.slowdown(mode, fraction) - 1.0;
        }
        slowdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfree::{BfreeConfig, BfreeSimulator};
    use pim_baselines::InferenceModel;
    use pim_nn::networks;

    fn model() -> CoTenancyModel {
        CoTenancyModel::new(InterferenceModel::paper_default(), 4480)
    }

    fn report() -> RunReport {
        BfreeSimulator::new(BfreeConfig::paper_default()).run(&networks::lstm_timit(), 1)
    }

    #[test]
    fn single_streamer_is_exactly_the_base_latency() {
        let base = report();
        let lat = model().service_latency(&base, 1);
        assert!((lat.ratio(base.total_latency()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn streamers_inflate_only_memory_phases() {
        let base = report();
        let one = model().service_latency(&base, 1);
        let four = model().service_latency(&base, 4);
        let memory: Latency = MEMORY_PHASES.iter().map(|&p| base.latency.get(p)).sum();
        let expected = one + memory * 3.0;
        assert!((four.ratio(expected) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conventional_slowdown_composes_tenants() {
        let m = model();
        assert_eq!(m.conventional_slowdown(&[]), 1.0);
        let half = m.conventional_slowdown(&[(BceMode::MatMul, 2240)]);
        let both = m.conventional_slowdown(&[(BceMode::MatMul, 2240), (BceMode::Conv, 2240)]);
        assert!(half > 1.0);
        assert!(both > half);
        // Even a fully PIM-busy cache stays within the paper's
        // "minimal impact" envelope.
        let full = m.conventional_slowdown(&[(BceMode::MatMul, 4480)]);
        assert!(full < 1.01);
    }
}
