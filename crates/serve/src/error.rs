//! Typed failure modes of the serving layer.
//!
//! Overload and misconfiguration are expected operating conditions for a
//! serving system, so they surface as values — a shed request carries a
//! [`RejectReason`], never a panic.

use std::error::Error;
use std::fmt;

/// Why the scheduler shed a request instead of serving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The admission queue was at capacity (backpressure).
    QueueFull,
    /// The request waited in the queue past its timeout.
    TimedOut,
    /// The tenant's slice demand exceeds the whole pool; no schedule
    /// could ever place it.
    DoesNotFit,
    /// Load shedding: healthy-slice capacity fell below the configured
    /// watermark and the tenant's priority class was sacrificed.
    Shed,
    /// The request's end-to-end deadline expired while it was still
    /// queued; serving it would only produce a dead answer.
    DeadlineExpired,
    /// Every allowed service attempt hit an injected fault (a transient
    /// compute error or a mid-flight slice failure). Requests with no
    /// retry budget land here on their first fault.
    RetriesExhausted,
}

impl RejectReason {
    /// Short machine-readable label for traces.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::TimedOut => "timed_out",
            RejectReason::DoesNotFit => "does_not_fit",
            RejectReason::Shed => "shed",
            RejectReason::DeadlineExpired => "deadline_expired",
            RejectReason::RetriesExhausted => "retries_exhausted",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Errors constructing or driving a serving simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// A tenant list problem: empty, or an index out of range.
    InvalidTenants {
        /// Why the tenant set is unusable.
        reason: String,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// The offending parameter.
        parameter: &'static str,
        /// Why it is invalid.
        reason: String,
    },
    /// The underlying architecture model rejected a derived geometry.
    Arch(pim_arch::ArchError),
    /// The realtime engine could not run: a double drive, a failed
    /// worker, or a conformance reconciliation failure.
    Realtime {
        /// Why the realtime run failed.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidTenants { reason } => {
                write!(f, "invalid tenant set: {reason}")
            }
            ServeError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid serving config {parameter}: {reason}")
            }
            ServeError::Arch(e) => write!(f, "architecture model error: {e}"),
            ServeError::Realtime { reason } => {
                write!(f, "realtime serving error: {reason}")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pim_arch::ArchError> for ServeError {
    fn from(e: pim_arch::ArchError) -> Self {
        ServeError::Arch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reasons_have_stable_labels() {
        assert_eq!(RejectReason::QueueFull.label(), "queue_full");
        assert_eq!(RejectReason::TimedOut.to_string(), "timed_out");
        assert_eq!(RejectReason::DoesNotFit.label(), "does_not_fit");
    }

    #[test]
    fn errors_display_context() {
        let e = ServeError::InvalidConfig {
            parameter: "max_batch",
            reason: "must be at least 1".to_string(),
        };
        assert!(e.to_string().contains("max_batch"));
    }
}
