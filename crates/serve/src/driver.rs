//! Load generators: open-loop Poisson arrivals and closed-loop clients.
//!
//! Both drivers are deterministic. The open-loop driver draws
//! inter-arrival gaps from an explicitly seeded [`StdRng`] — same seed,
//! same trace, no wall clock anywhere. The closed-loop driver needs no
//! randomness at all: each client issues its next request a fixed think
//! time after its previous one terminates.

use std::collections::BTreeMap;

use bfree_obs::Recorder;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::sim::ServingSim;

/// Open-loop (arrival-rate-driven) load: each tenant receives a Poisson
/// stream at its configured rate, regardless of how the system keeps up
/// — the standard way to expose queueing collapse under overload.
#[derive(Debug)]
pub struct OpenLoopDriver {
    rng: StdRng,
    rates_rps: Vec<f64>,
}

impl OpenLoopDriver {
    /// A driver submitting `rates_rps[t]` requests per second of virtual
    /// time for tenant `t`, from the explicit `seed`.
    pub fn new(seed: u64, rates_rps: Vec<f64>) -> Self {
        OpenLoopDriver {
            rng: StdRng::seed_from_u64(seed),
            rates_rps,
        }
    }

    /// Generates every arrival in `[0, horizon_ns)` as `(at_ns, tenant)`
    /// pairs in global time order, advancing the driver's RNG. This is
    /// the trace-building primitive behind [`drive`](Self::drive): the
    /// realtime experiments and the conformance harness use it to build
    /// a [`RequestTrace`](crate::RequestTrace) they can replay through
    /// *both* engines.
    pub fn arrivals(&mut self, horizon_ns: u64) -> Vec<(u64, usize)> {
        let mut arrivals: Vec<(u64, usize)> = Vec::new();
        for (tenant, &rate) in self.rates_rps.iter().enumerate() {
            if rate <= 0.0 {
                continue;
            }
            let mean_gap_ns = 1e9 / rate;
            let mut t_ns = 0u64;
            loop {
                // Exponential inter-arrival: -ln(1 - U), U in [0, 1).
                let u: f64 = self.rng.random_range(0.0..1.0);
                let gap = (-(1.0 - u).ln() * mean_gap_ns).ceil() as u64;
                t_ns = t_ns.saturating_add(gap);
                if t_ns >= horizon_ns {
                    break;
                }
                arrivals.push((t_ns, tenant));
            }
        }
        arrivals.sort_unstable();
        arrivals
    }

    /// Generates and submits every arrival in `[0, horizon_ns)`, in
    /// global time order, and returns how many were submitted.
    ///
    /// # Panics
    ///
    /// Panics if the driver has more rates than `sim` has tenants.
    pub fn drive<R: Recorder>(&mut self, sim: &mut ServingSim<R>, horizon_ns: u64) -> u64 {
        assert!(
            self.rates_rps.len() <= sim.tenants().len(),
            "driver configured for more tenants than the simulator has"
        );
        let arrivals = self.arrivals(horizon_ns);
        let count = arrivals.len() as u64;
        for (at_ns, tenant) in arrivals {
            sim.submit(tenant, at_ns);
        }
        count
    }
}

/// One closed-loop client: a tenant it targets and how long it thinks
/// between receiving a response and issuing the next request.
#[derive(Debug, Clone, Copy)]
struct Client {
    tenant: usize,
    think_ns: u64,
}

/// Closed-loop (concurrency-driven) load: a fixed population of clients,
/// each with at most one request outstanding — throughput self-limits to
/// what the system sustains instead of queueing without bound.
#[derive(Debug, Default)]
pub struct ClosedLoopDriver {
    clients: Vec<Client>,
}

impl ClosedLoopDriver {
    /// A driver with no clients; add populations with
    /// [`with_clients`](ClosedLoopDriver::with_clients).
    pub fn new() -> Self {
        ClosedLoopDriver::default()
    }

    /// Adds `count` clients of tenant `tenant`, each thinking
    /// `think_ns` between its response and its next request.
    pub fn with_clients(mut self, tenant: usize, count: usize, think_ns: u64) -> Self {
        self.clients
            .extend((0..count).map(|_| Client { tenant, think_ns }));
        self
    }

    /// Runs every client for `requests_per_client` requests (counting
    /// shed ones), stepping the engine one event at a time so each
    /// follow-up is issued exactly at its predecessor's terminal time
    /// plus the think time. Returns the total submitted.
    pub fn drive<R: Recorder>(&mut self, sim: &mut ServingSim<R>, requests_per_client: u64) -> u64 {
        if self.clients.is_empty() || requests_per_client == 0 {
            return 0;
        }
        let mut remaining: Vec<u64> = vec![requests_per_client - 1; self.clients.len()];
        let mut owner: BTreeMap<u64, usize> = BTreeMap::new();
        let mut submitted = 0u64;
        for (client, spec) in self.clients.iter().enumerate() {
            // Stagger the initial wave by 1 ns per client so same-tenant
            // clients do not alias into one indistinguishable burst.
            let id = sim.submit(spec.tenant, client as u64);
            owner.insert(id, client);
            submitted += 1;
        }
        // Submissions never append records, so everything past this
        // cursor is a terminal event from this drive.
        let mut cursor = sim.telemetry().records().len();
        while sim.step() {
            let records = sim.telemetry().records();
            let mut followups: Vec<(u64, usize)> = Vec::new();
            while cursor < records.len() {
                let record = &records[cursor];
                cursor += 1;
                if let Some(client) = owner.remove(&record.request_id) {
                    if remaining[client] > 0 {
                        remaining[client] -= 1;
                        let spec = self.clients[client];
                        followups.push((record.complete_ns.saturating_add(spec.think_ns), client));
                    }
                }
            }
            for (at_ns, client) in followups {
                let id = sim.submit(self.clients[client].tenant, at_ns);
                owner.insert(id, client);
                submitted += 1;
            }
        }
        submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServeConfig;
    use crate::tenant::TenantSpec;
    use pim_nn::request::NetworkKind;

    fn sim() -> ServingSim {
        let specs = vec![
            TenantSpec::new("lstm", NetworkKind::LstmTimit),
            TenantSpec::new("bert", NetworkKind::BertBase),
        ];
        ServingSim::new(ServeConfig::default(), specs).unwrap()
    }

    #[test]
    fn open_loop_is_seed_deterministic() {
        let run = |seed| {
            let mut s = sim();
            let n = OpenLoopDriver::new(seed, vec![2_000.0, 500.0]).drive(&mut s, 10_000_000);
            (n, s.run_to_idle().csv_rows().join("\n"))
        };
        assert_eq!(run(7), run(7));
        let (n_a, trace_a) = run(7);
        let (_, trace_b) = run(8);
        assert!(n_a > 0);
        assert_ne!(
            trace_a, trace_b,
            "different seeds must give different traces"
        );
    }

    #[test]
    fn open_loop_rate_controls_arrival_count() {
        let mut s = sim();
        let slow = OpenLoopDriver::new(1, vec![100.0]).drive(&mut s, 100_000_000);
        let mut s2 = sim();
        let fast = OpenLoopDriver::new(1, vec![10_000.0]).drive(&mut s2, 100_000_000);
        assert!(fast > slow * 10, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn arrivals_match_what_drive_submits() {
        let mut trace_driver = OpenLoopDriver::new(7, vec![2_000.0, 500.0]);
        let arrivals = trace_driver.arrivals(10_000_000);
        let mut s = sim();
        let driven = OpenLoopDriver::new(7, vec![2_000.0, 500.0]).drive(&mut s, 10_000_000);
        assert_eq!(arrivals.len() as u64, driven);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "sorted by time");
    }

    #[test]
    fn closed_loop_completes_every_request() {
        let mut s = sim();
        let submitted = ClosedLoopDriver::new()
            .with_clients(0, 3, 100_000)
            .with_clients(1, 1, 0)
            .drive(&mut s, 5);
        assert_eq!(submitted, 4 * 5);
        let summary = s.telemetry().summary();
        assert_eq!(summary.submitted, 20);
        assert_eq!(summary.completed + summary.rejected, 20);
        assert_eq!(s.queued() + s.in_flight(), 0);
    }

    #[test]
    fn closed_loop_think_time_spaces_requests() {
        let mut s = sim();
        ClosedLoopDriver::new()
            .with_clients(0, 1, 1_000_000)
            .drive(&mut s, 3);
        let records = s.telemetry().records();
        assert_eq!(records.len(), 3);
        // Each follow-up submits exactly think_ns after the previous
        // completion (records are in completion order for one client).
        for pair in records.windows(2) {
            assert_eq!(pair[1].submit_ns, pair[0].complete_ns + 1_000_000);
        }
    }
}
