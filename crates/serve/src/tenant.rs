//! Tenants: a request class (network + precision + replication) and its
//! footprint on the slice pool.
//!
//! A tenant's *demand* is derived with the same [`Mapper`] the
//! single-tenant simulator uses: one replica of the network's largest
//! weight layer defines the minimum contiguous footprint, the requested
//! replication factor scales it (more replicas = more parallelism =
//! lower compute latency), and the result rounds up to whole slices —
//! the pool's tenancy grain. Each tenant then carries a
//! [`BfreeSimulator`] configured for exactly its slice share, so
//! per-tenant phase reports price the partial cache it actually owns.

use std::collections::BTreeMap;

use bfree::{BfreeConfig, BfreeSimulator, Mapper, PrecisionPolicy};
use pim_baselines::{InferenceModel, RunReport};
use pim_bce::BceMode;
use pim_nn::request::NetworkKind;
use pim_nn::Network;

use crate::error::ServeError;
use crate::frontend::WorkCounters;

/// Declarative description of one tenant.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name used in traces.
    pub name: String,
    /// The network this tenant serves.
    pub network: NetworkKind,
    /// Per-layer operand precision.
    pub precision: PrecisionPolicy,
    /// Weight replication factor: how many copies of the largest
    /// layer's weights the tenant wants resident for parallelism.
    pub replication: usize,
    /// Priority class (higher wins under the priority policy).
    pub priority: u8,
}

impl TenantSpec {
    /// A tenant with uniform int8 precision, replication 1 and default
    /// priority.
    pub fn new(name: impl Into<String>, network: NetworkKind) -> Self {
        TenantSpec {
            name: name.into(),
            network,
            precision: PrecisionPolicy::uniform_int8(),
            replication: 1,
            priority: 0,
        }
    }

    /// Sets the replication factor (clamped to at least 1).
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication.max(1);
        self
    }

    /// Sets the precision policy.
    pub fn with_precision(mut self, precision: PrecisionPolicy) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the priority class.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

/// A tenant bound to a base machine: demand computed, partial-cache
/// simulator built, service reports cached per batch size.
#[derive(Debug, Clone)]
pub struct Tenant {
    spec: TenantSpec,
    network: Network,
    demand_slices: usize,
    fits: bool,
    mode: BceMode,
    simulator: Option<BfreeSimulator>,
    report_cache: BTreeMap<usize, RunReport>,
    layer_work: Vec<WorkCounters>,
    request_work: WorkCounters,
}

impl Tenant {
    /// Prices a spec against the pool's base machine.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeError::Arch`] if the partial geometry cannot be
    /// constructed (cannot happen for non-zero demand).
    pub fn new(spec: TenantSpec, base: &BfreeConfig) -> Result<Self, ServeError> {
        let network = spec.network.instantiate();
        let geometry = &base.geometry;
        let mapper = Mapper::new(geometry.clone());
        let weight_names: Vec<&str> = network.weight_layers().map(|l| l.name()).collect();
        let per_slice = geometry.subarrays_per_slice();

        // One replica of the largest layer sets the footprint; layers
        // bigger than the whole cache tile it (utilization 1), so their
        // footprint is the full cache.
        let mut max_replica_subarrays = 1usize;
        let mut matmul_layers = 0usize;
        let mut weight_layers = 0usize;
        for layer in network.weight_layers() {
            weight_layers += 1;
            let mode = if base.uses_matmul(layer, 1) {
                matmul_layers += 1;
                BceMode::MatMul
            } else {
                BceMode::Conv
            };
            let precision = spec.precision.layer_precision(layer, &weight_names);
            let replica = match mapper.map_layer(layer, mode, precision) {
                Ok(mapping) => mapping.subarrays_per_replica,
                Err(_) => geometry.total_subarrays(),
            };
            max_replica_subarrays = max_replica_subarrays.max(replica);
        }

        let demand_subarrays = max_replica_subarrays.saturating_mul(spec.replication.max(1));
        let demand_slices = demand_subarrays.div_ceil(per_slice).max(1);
        let fits = demand_slices <= geometry.slices();
        let mode = if matmul_layers * 2 >= weight_layers {
            BceMode::MatMul
        } else {
            BceMode::Conv
        };

        let simulator = if fits {
            let config = base
                .clone()
                .with_precision(spec.precision.clone())
                .with_slice_count(demand_slices)?;
            Some(BfreeSimulator::new(config))
        } else {
            None
        };

        // Batch-independent work profile over the *serviced* layer set —
        // exactly the layers the execution engine emits `per_layer`
        // timings for — so realtime layer-step indices line up with the
        // cached report's per-layer latencies.
        let mut layer_work = Vec::new();
        for layer in network.layers() {
            if !(layer.is_weight_layer() || layer.element_ops() > 0) {
                continue;
            }
            let macs = layer.macs();
            let work = if layer.is_weight_layer() {
                let bits = spec.precision.layer_precision(layer, &weight_names).bits();
                // 4-bit operand decomposition: an n-nibble × n-nibble
                // product costs n² LUT-row reads per MAC.
                let nibbles = u64::from(bits / 4).max(1);
                WorkCounters {
                    ops: macs + layer.element_ops(),
                    lut_reads: macs * nibbles * nibbles,
                    bytes: layer.weight_bytes(bits)
                        + layer.input_elements()
                        + layer.output_elements(),
                }
            } else {
                WorkCounters {
                    ops: layer.element_ops(),
                    lut_reads: 0,
                    bytes: layer.input_elements() + layer.output_elements(),
                }
            };
            layer_work.push(work);
        }
        let request_work = layer_work
            .iter()
            .fold(WorkCounters::ZERO, |acc, &w| acc + w);

        Ok(Tenant {
            spec,
            network,
            demand_slices,
            fits,
            mode,
            simulator,
            report_cache: BTreeMap::new(),
            layer_work,
            request_work,
        })
    }

    /// The spec this tenant was built from.
    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    /// The tenant's display name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Slices one dispatch of this tenant occupies.
    pub fn demand_slices(&self) -> usize {
        self.demand_slices
    }

    /// Whether the demand fits the pool at all; unfit tenants get every
    /// request shed with [`crate::RejectReason::DoesNotFit`].
    pub fn fits(&self) -> bool {
        self.fits
    }

    /// The dominant execution mode (for interference accounting).
    pub fn mode(&self) -> BceMode {
        self.mode
    }

    /// The network served.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The contention-free phase report for a batch on this tenant's
    /// slice share, memoized per batch size.
    ///
    /// # Panics
    ///
    /// Panics if the tenant does not fit the pool — callers must check
    /// [`Tenant::fits`] first (the scheduler rejects such requests at
    /// submission and never dispatches them).
    pub fn base_report(&mut self, batch: usize) -> &RunReport {
        let sim = self
            .simulator
            .as_ref()
            .expect("base_report called on a tenant that does not fit the pool");
        let batch = batch.max(1);
        self.report_cache
            .entry(batch)
            .or_insert_with(|| sim.run(&self.network, batch))
    }

    /// Contention-free service estimate in nanoseconds (SJF ordering).
    pub fn service_estimate_ns(&mut self, batch: usize) -> f64 {
        if !self.fits {
            return f64::INFINITY;
        }
        self.base_report(batch).total_latency().nanoseconds()
    }

    /// Per-layer work counters over the serviced layer set, aligned
    /// index-for-index with `base_report(..).per_layer`.
    pub fn layer_work(&self) -> &[WorkCounters] {
        &self.layer_work
    }

    /// Work one service attempt performs: the sum of [`Tenant::layer_work`].
    /// Batch-independent by construction, so both serving engines charge
    /// identical counters for the same (request, model-version) pair.
    pub fn request_work(&self) -> WorkCounters {
        self.request_work
    }

    /// The memoized report for `batch`, if already priced — the `&self`
    /// read path workers use after [`Tenant::warm_reports`].
    pub fn cached_report(&self, batch: usize) -> Option<&RunReport> {
        self.report_cache.get(&batch.max(1))
    }

    /// Prices and memoizes reports for every batch size `1..=max_batch`,
    /// so subsequent [`Tenant::cached_report`] reads never miss. No-op
    /// for tenants that do not fit.
    pub fn warm_reports(&mut self, max_batch: usize) {
        if !self.fits {
            return;
        }
        for batch in 1..=max_batch.max(1) {
            self.base_report(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> BfreeConfig {
        BfreeConfig::paper_default()
    }

    #[test]
    fn lstm_fits_in_one_slice_at_replication_1() {
        // LSTM-TIMIT's largest layer is ~6 MB of int8 weights... larger
        // than one 2.5 MB slice, so it needs a few slices, far from all.
        let t = Tenant::new(TenantSpec::new("lstm", NetworkKind::LstmTimit), &base()).unwrap();
        assert!(t.fits());
        assert!(t.demand_slices() >= 1);
        assert!(t.demand_slices() < 14, "demand {}", t.demand_slices());
    }

    #[test]
    fn replication_scales_demand_until_it_no_longer_fits() {
        let d1 = Tenant::new(TenantSpec::new("a", NetworkKind::LstmTimit), &base())
            .unwrap()
            .demand_slices();
        let spec4 = TenantSpec::new("b", NetworkKind::LstmTimit).with_replication(4);
        let d4 = Tenant::new(spec4, &base()).unwrap().demand_slices();
        assert!(d4 >= d1);
        let spec_huge = TenantSpec::new("c", NetworkKind::LstmTimit).with_replication(10_000);
        let huge = Tenant::new(spec_huge, &base()).unwrap();
        assert!(!huge.fits());
    }

    #[test]
    fn bert_is_matmul_dominant() {
        let t = Tenant::new(TenantSpec::new("bert", NetworkKind::BertBase), &base()).unwrap();
        assert_eq!(t.mode(), BceMode::MatMul);
    }

    #[test]
    fn base_report_is_cached_and_deterministic() {
        let mut t = Tenant::new(TenantSpec::new("lstm", NetworkKind::LstmTimit), &base()).unwrap();
        let a = t.base_report(1).total_latency();
        let b = t.base_report(1).total_latency();
        assert_eq!(a, b);
        assert!(t.service_estimate_ns(1) > 0.0);
    }

    #[test]
    fn work_profile_aligns_with_per_layer_report() {
        let mut t = Tenant::new(TenantSpec::new("lstm", NetworkKind::LstmTimit), &base()).unwrap();
        let timings = t.base_report(1).per_layer.len();
        assert_eq!(t.layer_work().len(), timings);
        let summed = t
            .layer_work()
            .iter()
            .fold(WorkCounters::ZERO, |acc, &w| acc + w);
        assert_eq!(t.request_work(), summed);
        let total = t.request_work();
        assert!(total.ops > 0 && total.lut_reads > 0 && total.bytes > 0);
        // int8 = two nibbles = 4 LUT reads per MAC, so reads ≥ MACs.
        assert!(total.lut_reads >= total.ops - t.network().total_element_ops());
    }

    #[test]
    fn warm_reports_fills_the_read_only_cache() {
        let mut t = Tenant::new(TenantSpec::new("lstm", NetworkKind::LstmTimit), &base()).unwrap();
        assert!(t.cached_report(2).is_none());
        t.warm_reports(2);
        assert!(t.cached_report(1).is_some());
        assert!(t.cached_report(2).is_some());
        assert!(t.cached_report(3).is_none());
    }

    #[test]
    fn partial_cache_report_prices_fewer_subarrays() {
        // A tenant on a slice share computes with fewer subarrays than
        // the dedicated machine, so compute takes at least as long.
        let mut t = Tenant::new(TenantSpec::new("bert", NetworkKind::BertBase), &base()).unwrap();
        let dedicated = BfreeSimulator::new(base()).run(t.network(), 1);
        let partial_compute = t.base_report(1).latency.get(pim_arch::Phase::Compute);
        assert!(partial_compute >= dedicated.latency.get(pim_arch::Phase::Compute));
    }
}
