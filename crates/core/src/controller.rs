//! The configuration phase of the hierarchical control flow (Fig. 11).
//!
//! Before computing a kernel, the cache controller loads every
//! subarray's LUT rows with the entries the kernel needs and programs
//! the configuration block (CB) of every BCE through the slice
//! controllers. This module prices that phase: it is small (microseconds
//! against milliseconds of execution) but the paper draws it explicitly,
//! so the simulator accounts for it.

use pim_arch::{CacheGeometry, Cycles, Energy, EnergyParams, Latency, TimingParams};
use pim_lut::{LutImage, MultLut};
use serde::{Deserialize, Serialize};

/// Cost of one configuration phase over the whole cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigurationPhase {
    /// Row writes per subarray (LUT rows + CB row).
    pub row_writes_per_subarray: u64,
    /// Wall-clock time of the phase (subarrays program in parallel per
    /// slice, slices sequentially share the fill bus).
    pub latency: Latency,
    /// Total energy of the row writes.
    pub energy: Energy,
}

impl ConfigurationPhase {
    /// Prices the configuration phase for a geometry: the multiply LUT
    /// image (49 entries) plus one CB row per subarray, broadcast slice
    /// by slice.
    pub fn price(geom: &CacheGeometry, timing: &TimingParams, energy: &EnergyParams) -> Self {
        let image = LutImage::from_mult_table(&MultLut::new());
        let row_bytes = geom.row_bytes().get() as usize;
        let lut_rows = image.row_writes(row_bytes) as u64;
        let row_writes = lut_rows + 1; // + the CB row
                                       // All subarrays of a slice program in parallel from the slice
                                       // controller's broadcast; slices proceed in parallel too, but
                                       // each row write costs a full slice access (the data comes from
                                       // the port side).
        let cycles = Cycles::new(row_writes);
        let latency = Latency::from_ns(cycles.count() as f64 * timing.slice_access_ns);
        let writes_total = row_writes * geom.total_subarrays() as u64;
        let energy_total = energy.subarray_row_access() * writes_total
            + energy.slice_access() * row_writes * geom.slices() as u64;
        ConfigurationPhase {
            row_writes_per_subarray: row_writes,
            latency,
            energy: energy_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase() -> ConfigurationPhase {
        ConfigurationPhase::price(
            &CacheGeometry::xeon_l3_35mb(),
            &TimingParams::default(),
            &EnergyParams::default(),
        )
    }

    #[test]
    fn configuration_is_microseconds_not_milliseconds() {
        let p = phase();
        assert!(p.latency.microseconds() < 10.0, "latency {}", p.latency);
        assert!(p.latency.nanoseconds() > 0.0);
    }

    #[test]
    fn row_writes_cover_lut_and_cb() {
        // 49-byte multiply image = 7 row writes, + 1 CB row = 8.
        assert_eq!(phase().row_writes_per_subarray, 8);
    }

    #[test]
    fn energy_scales_with_subarray_count() {
        let small = ConfigurationPhase::price(
            &CacheGeometry::single_slice_2_5mb(),
            &TimingParams::default(),
            &EnergyParams::default(),
        );
        let large = phase();
        assert!(large.energy > small.energy * 10.0);
    }
}
