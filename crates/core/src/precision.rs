//! Per-layer precision assignment (paper §I, Fig. 14).
//!
//! BFree's LUT datapath reconfigures per layer between 4-, 8- and 16-bit
//! operands. Fig. 14 exploits this with the learned layer-wise precision
//! of Khan et al. (DAC 2020): most VGG-16 layers run at 4 bits with ~1%
//! accuracy loss, halving execution time versus uniform 8-bit.

use pim_bce::Precision;
use pim_nn::LayerSpec;
use serde::{Deserialize, Serialize};

/// How operand precision is chosen per layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrecisionPolicy {
    /// Every layer at the same precision.
    Uniform(Precision),
    /// The Fig. 14 mixed policy: first and last weight layers (and any
    /// layer listed by name) stay at 8 bits for accuracy; everything
    /// else runs at 4 bits.
    MixedFourEight {
        /// Additional layer names pinned to 8 bits.
        keep_int8: Vec<String>,
    },
}

impl PrecisionPolicy {
    /// Uniform 8-bit inference, the default.
    pub fn uniform_int8() -> Self {
        PrecisionPolicy::Uniform(Precision::Int8)
    }

    /// The learned mixed 4/8-bit policy of Fig. 14.
    pub fn mixed() -> Self {
        PrecisionPolicy::MixedFourEight {
            keep_int8: Vec::new(),
        }
    }

    /// Precision of `layer`, given the ordered list of weight-layer
    /// names in the network (to identify first and last).
    pub fn layer_precision(&self, layer: &LayerSpec, weight_layer_names: &[&str]) -> Precision {
        match self {
            PrecisionPolicy::Uniform(p) => *p,
            PrecisionPolicy::MixedFourEight { keep_int8 } => {
                let name = layer.name();
                let is_boundary = weight_layer_names.first() == Some(&name)
                    || weight_layer_names.last() == Some(&name);
                if is_boundary || keep_int8.iter().any(|k| k == name) {
                    Precision::Int8
                } else {
                    Precision::Int4
                }
            }
        }
    }
}

impl Default for PrecisionPolicy {
    fn default() -> Self {
        PrecisionPolicy::uniform_int8()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_nn::networks;

    #[test]
    fn uniform_returns_same_precision() {
        let policy = PrecisionPolicy::Uniform(Precision::Int16);
        let net = networks::vgg16();
        let names: Vec<&str> = net.weight_layers().map(|l| l.name()).collect();
        for layer in net.weight_layers() {
            assert_eq!(policy.layer_precision(layer, &names), Precision::Int16);
        }
    }

    #[test]
    fn mixed_keeps_boundary_layers_at_int8() {
        let policy = PrecisionPolicy::mixed();
        let net = networks::vgg16();
        let names: Vec<&str> = net.weight_layers().map(|l| l.name()).collect();
        let layers: Vec<_> = net.weight_layers().collect();
        assert_eq!(policy.layer_precision(layers[0], &names), Precision::Int8);
        assert_eq!(
            policy.layer_precision(layers[layers.len() - 1], &names),
            Precision::Int8
        );
        assert_eq!(policy.layer_precision(layers[5], &names), Precision::Int4);
    }

    #[test]
    fn mixed_respects_pinned_layers() {
        let policy = PrecisionPolicy::MixedFourEight {
            keep_int8: vec!["conv3_2".to_string()],
        };
        let net = networks::vgg16();
        let names: Vec<&str> = net.weight_layers().map(|l| l.name()).collect();
        let pinned = net.weight_layers().find(|l| l.name() == "conv3_2").unwrap();
        assert_eq!(policy.layer_precision(pinned, &names), Precision::Int8);
    }

    #[test]
    fn most_vgg_layers_run_at_int4_under_mixed() {
        // Fig. 14: "most of the layers are executed using 4-bit
        // precision".
        let policy = PrecisionPolicy::mixed();
        let net = networks::vgg16();
        let names: Vec<&str> = net.weight_layers().map(|l| l.name()).collect();
        let int4 = net
            .weight_layers()
            .filter(|l| policy.layer_precision(l, &names) == Precision::Int4)
            .count();
        assert!(int4 as f64 / names.len() as f64 > 0.8);
    }
}
