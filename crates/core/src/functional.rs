//! Value-level execution of quantized networks through the actual BFree
//! LUT datapath.
//!
//! Where [`exec`](crate::exec) prices *cost*, this module computes
//! *values*: convolutions run as im2col + BCE matmul tiles over the
//! nibble-ROM datapath, activations and softmax go through the PWL and
//! division LUTs, and everything is compared against the f32 reference
//! in `pim_nn::reference` — the end-to-end validation that the LUT
//! arithmetic really performs inference.

use std::error::Error;
use std::fmt;

use pim_bce::{Bce, BceMode};
use pim_lut::LutError;
use pim_nn::im2col::im2col;
use pim_nn::quant::QuantParams;
use pim_nn::reference;
use pim_nn::tensor::{Tensor, TensorShape};
use pim_nn::NnError;

/// Errors from the functional pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// A tensor/layer shape problem.
    Nn(NnError),
    /// A LUT construction or evaluation problem.
    Lut(LutError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Nn(e) => write!(f, "workload error: {e}"),
            PipelineError::Lut(e) => write!(f, "lut error: {e}"),
        }
    }
}

impl Error for PipelineError {}

impl From<NnError> for PipelineError {
    fn from(e: NnError) -> Self {
        PipelineError::Nn(e)
    }
}

impl From<LutError> for PipelineError {
    fn from(e: LutError) -> Self {
        PipelineError::Lut(e)
    }
}

/// The functional BFree pipeline: a matmul-mode BCE plus quantization
/// glue.
///
/// ```
/// use bfree::functional::FunctionalPipeline;
/// use pim_nn::tensor::{Tensor, TensorShape};
///
/// let pipeline = FunctionalPipeline::new()?;
/// let input = Tensor::from_fn(TensorShape::chw(1, 4, 4), |i| (i[1] + i[2]) as f32 * 0.1);
/// let filters = Tensor::from_fn(TensorShape::new(vec![2, 1, 3, 3]), |_| 0.1f32);
/// let out = pipeline.conv2d(&input, &filters, &[0.0, 0.0], (1, 1), (1, 1))?;
/// assert_eq!(out.shape().dims(), &[2, 4, 4]);
/// # Ok::<(), bfree::functional::PipelineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FunctionalPipeline {
    bce: Bce,
}

impl FunctionalPipeline {
    /// Creates the pipeline.
    ///
    /// # Errors
    ///
    /// Propagates LUT construction failures.
    pub fn new() -> Result<Self, PipelineError> {
        Ok(FunctionalPipeline {
            bce: Bce::new(BceMode::MatMul)?,
        })
    }

    /// Shared access to the underlying BCE (event counters).
    pub fn bce(&self) -> &Bce {
        &self.bce
    }

    /// Quantized matrix multiply through BCE tiles:
    /// `out[m][n] = sum_k a[m][k] * b[k][n]`, with symmetric int8
    /// quantization of both operands and float dequantization of the
    /// accumulators.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Nn`] for incompatible shapes.
    pub fn matmul(&self, a: &Tensor<f32>, b: &Tensor<f32>) -> Result<Tensor<f32>, PipelineError> {
        let (ad, bd) = (a.shape().dims(), b.shape().dims());
        if ad.len() != 2 || bd.len() != 2 || ad[1] != bd[0] {
            return Err(NnError::ShapeMismatch {
                context: "functional matmul",
                detail: format!("{} x {}", a.shape(), b.shape()),
            }
            .into());
        }
        let (m, k, n) = (ad[0], ad[1], bd[1]);
        let qp_a = symmetric_params(a);
        let qp_b = symmetric_params(b);
        let qa = qp_a.quantize_tensor(a);
        let qb = qp_b.quantize_tensor(b);
        let scale = (qp_a.scale() * qp_b.scale()) as f32;

        let mut out = Tensor::zeros(TensorShape::new(vec![m, n]));
        // Process output columns in groups of eight — one BCE tile.
        // Tiles touch disjoint output columns, so they price in
        // parallel; every value is computed from its own tile alone, so
        // the result is identical whatever the worker count.
        let tiles = crate::par::par_map((0..n).step_by(8).collect(), |n0| {
            let width = (n - n0).min(8);
            // Tile rows: row k holds b[k][n0..n0+8].
            let tile: Vec<[i8; 8]> = (0..k)
                .map(|kk| {
                    std::array::from_fn(|j| {
                        if j < width {
                            qb.data()[kk * n + n0 + j]
                        } else {
                            0
                        }
                    })
                })
                .collect();
            let mut values = vec![0f32; m * width];
            for i in 0..m {
                // Row i of qa is already contiguous — stream it directly.
                let stream = &qa.data()[i * k..(i + 1) * k];
                let (accs, _) = self.bce.matmul_tile(stream, &tile);
                for (j, &acc) in accs.iter().take(width).enumerate() {
                    values[i * width + j] = acc as f32 * scale;
                }
            }
            (n0, width, values)
        });
        for (n0, width, values) in tiles {
            for i in 0..m {
                for j in 0..width {
                    out.data_mut()[i * n + n0 + j] = values[i * width + j];
                }
            }
        }
        Ok(out)
    }

    /// Quantized convolution: im2col then tiled BCE matmul, plus bias.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Nn`] for incompatible shapes.
    pub fn conv2d(
        &self,
        input: &Tensor<f32>,
        filters: &Tensor<f32>,
        bias: &[f32],
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Result<Tensor<f32>, PipelineError> {
        let fdims = filters.shape().dims().to_vec();
        if fdims.len() != 4 || bias.len() != fdims[0] {
            return Err(NnError::ShapeMismatch {
                context: "functional conv2d",
                detail: format!("filters {}", filters.shape()),
            }
            .into());
        }
        let unrolled = im2col(input, (fdims[2], fdims[3]), stride, padding)?;
        let flat = pim_nn::im2col::flatten_filters(filters)?; // (N, C*KH*KW)
                                                              // out (N, cols) = flat (N, rows) * unrolled (rows, cols).
        let product = self.matmul(&flat, &unrolled)?;
        let idims = input.shape().dims();
        let oh = (idims[1] + 2 * padding.0 - fdims[2]) / stride.0 + 1;
        let ow = (idims[2] + 2 * padding.1 - fdims[3]) / stride.1 + 1;
        let mut out = Tensor::zeros(TensorShape::chw(fdims[0], oh, ow));
        let cols = oh * ow;
        for (f, &bias_f) in bias.iter().enumerate() {
            for c in 0..cols {
                out.data_mut()[f * cols + c] = product.data()[f * cols + c] + bias_f;
            }
        }
        Ok(out)
    }

    /// Quantized convolution executed through the cycle-stepped systolic
    /// array (the executable spec of Fig. 9's mapping): the flattened
    /// filter matrix is stationary in the grid, im2col columns stream
    /// through as input waves, and partial sums reduce down the grid.
    /// Returns the output plus the systolic cycle count and link hops.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Nn`] for incompatible shapes.
    pub fn conv2d_systolic(
        &self,
        input: &Tensor<f32>,
        filters: &Tensor<f32>,
        bias: &[f32],
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Result<(Tensor<f32>, u64, u64), PipelineError> {
        use pim_systolic::SystolicArraySim;

        let fdims = filters.shape().dims().to_vec();
        if fdims.len() != 4 || bias.len() != fdims[0] {
            return Err(NnError::ShapeMismatch {
                context: "functional systolic conv2d",
                detail: format!("filters {}", filters.shape()),
            }
            .into());
        }
        let unrolled = im2col(input, (fdims[2], fdims[3]), stride, padding)?;
        let flat = pim_nn::im2col::flatten_filters(filters)?; // (N, rows)

        // Quantize both operands symmetrically, as the matmul path does.
        let qp_w = symmetric_params(&flat);
        let qp_x = symmetric_params(&unrolled);
        let qw = qp_w.quantize_tensor(&flat);
        let qx = qp_x.quantize_tensor(&unrolled);
        let scale = (qp_w.scale() * qp_x.scale()) as f32;

        // Weight-stationary grid: rows = c*kh*kw, cols = filters.
        let (n_filters, rows) = (fdims[0], flat.shape().dims()[1]);
        let weights: Vec<Vec<i32>> = (0..rows)
            .map(|r| {
                (0..n_filters)
                    .map(|f| qw.data()[f * rows + r] as i32)
                    .collect()
            })
            .collect();
        let sim = SystolicArraySim::new(weights).map_err(|e| {
            PipelineError::Nn(NnError::ShapeMismatch {
                context: "systolic grid",
                detail: e.to_string(),
            })
        })?;

        // Each im2col column is one input wave.
        let cols = unrolled.shape().dims()[1];
        let waves: Vec<Vec<i32>> = (0..cols)
            .map(|c| (0..rows).map(|r| qx.data()[r * cols + c] as i32).collect())
            .collect();
        let result = sim.run(&waves).map_err(|e| {
            PipelineError::Nn(NnError::ShapeMismatch {
                context: "systolic stream",
                detail: e.to_string(),
            })
        })?;

        let idims = input.shape().dims();
        let oh = (idims[1] + 2 * padding.0 - fdims[2]) / stride.0 + 1;
        let ow = (idims[2] + 2 * padding.1 - fdims[3]) / stride.1 + 1;
        let mut out = Tensor::zeros(TensorShape::chw(n_filters, oh, ow));
        for (wave, accs) in result.outputs.iter().enumerate() {
            for (f, &acc) in accs.iter().enumerate() {
                out.data_mut()[f * cols + wave] = acc as f32 * scale + bias[f];
            }
        }
        Ok((out, result.cycles, result.hops))
    }

    /// Quantized convolution with **per-output-channel** weight scales:
    /// each filter is quantized against its own range, so channels with
    /// small weights keep their precision. Same BCE datapath as
    /// [`FunctionalPipeline::conv2d`], different dequantization.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Nn`] for incompatible shapes.
    pub fn conv2d_per_channel(
        &self,
        input: &Tensor<f32>,
        filters: &Tensor<f32>,
        bias: &[f32],
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Result<Tensor<f32>, PipelineError> {
        use pim_nn::quant::ChannelQuantParams;

        let fdims = filters.shape().dims().to_vec();
        if fdims.len() != 4 || bias.len() != fdims[0] {
            return Err(NnError::ShapeMismatch {
                context: "functional per-channel conv2d",
                detail: format!("filters {}", filters.shape()),
            }
            .into());
        }
        let unrolled = im2col(input, (fdims[2], fdims[3]), stride, padding)?;
        let qp_x = symmetric_params(&unrolled);
        let qx = qp_x.quantize_tensor(&unrolled);
        let qp_w = ChannelQuantParams::observe(filters)?;
        let qw = qp_w.quantize_tensor(&pim_nn::im2col::flatten_filters(filters)?);

        let (n_filters, rows) = (fdims[0], qw.shape().dims()[1]);
        let cols = unrolled.shape().dims()[1];
        let idims = input.shape().dims();
        let oh = (idims[1] + 2 * padding.0 - fdims[2]) / stride.0 + 1;
        let ow = (idims[2] + 2 * padding.1 - fdims[3]) / stride.1 + 1;
        let mut out = Tensor::zeros(TensorShape::chw(n_filters, oh, ow));

        // Transpose the unrolled input to column-major once, so every
        // tile streams contiguous columns instead of gathering strided
        // elements per column per tile.
        let mut qxt = vec![0i8; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                qxt[c * rows + r] = qx.data()[r * cols + c];
            }
        }

        // One BCE tile per group of eight filters; dequantize each output
        // channel with its own scale. Filter tiles own disjoint output
        // channels, so they run on the worker pool.
        let tiles = crate::par::par_map((0..n_filters).step_by(8).collect(), |f0| {
            let width = (n_filters - f0).min(8);
            let tile: Vec<[i8; 8]> = (0..rows)
                .map(|r| {
                    std::array::from_fn(|j| {
                        if j < width {
                            qw.data()[(f0 + j) * rows + r]
                        } else {
                            0
                        }
                    })
                })
                .collect();
            let mut values = vec![0f32; width * cols];
            for col in 0..cols {
                let stream = &qxt[col * rows..(col + 1) * rows];
                let (accs, _) = self.bce.matmul_tile(stream, &tile);
                for j in 0..width {
                    let scale = (qp_x.scale() * qp_w.scale(f0 + j)) as f32;
                    values[j * cols + col] = accs[j] as f32 * scale + bias[f0 + j];
                }
            }
            (f0, width, values)
        });
        for (f0, width, values) in tiles {
            let span = &mut out.data_mut()[f0 * cols..(f0 + width) * cols];
            span.copy_from_slice(&values);
        }
        Ok(out)
    }

    /// Quantized fully-connected layer.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Nn`] for incompatible shapes.
    pub fn linear(
        &self,
        input: &[f32],
        weights: &Tensor<f32>, // (out, in)
        bias: &[f32],
    ) -> Result<Vec<f32>, PipelineError> {
        let wdims = weights.shape().dims();
        if wdims.len() != 2 || wdims[1] != input.len() || bias.len() != wdims[0] {
            return Err(NnError::ShapeMismatch {
                context: "functional linear",
                detail: format!("input {} weights {}", input.len(), weights.shape()),
            }
            .into());
        }
        let a = Tensor::from_vec(TensorShape::new(vec![1, input.len()]), input.to_vec())?;
        // Transpose weights to (in, out) for the matmul convention.
        let (o, i) = (wdims[0], wdims[1]);
        let bt = Tensor::from_fn(TensorShape::new(vec![i, o]), |idx| {
            weights.data()[idx[1] * i + idx[0]]
        });
        let product = self.matmul(&a, &bt)?;
        Ok(product
            .data()
            .iter()
            .zip(bias)
            .map(|(&p, &b)| p + b)
            .collect())
    }

    /// Max pooling on the quantized datapath (exact on i8 values, so
    /// computed directly on f32 without loss).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Nn`] for a non-rank-3 input.
    pub fn max_pool2d(
        &self,
        input: &Tensor<f32>,
        kernel: (usize, usize),
        stride: (usize, usize),
    ) -> Result<Tensor<f32>, PipelineError> {
        Ok(reference::max_pool2d(input, kernel, stride)?)
    }

    /// ReLU (comparator only).
    pub fn relu(&self, x: &[f32]) -> Vec<f32> {
        reference::relu(x)
    }

    /// Sigmoid through the PWL LUT.
    pub fn sigmoid(&self, x: &[f32]) -> Vec<f64> {
        let xs: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let (y, _) = self.bce.activation(pim_bce::ActivationKind::Sigmoid, &xs);
        y
    }

    /// Tanh through the PWL LUT.
    pub fn tanh(&self, x: &[f32]) -> Vec<f64> {
        let xs: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let (y, _) = self.bce.activation(pim_bce::ActivationKind::Tanh, &xs);
        y
    }

    /// Softmax through the exp PWL and division LUTs.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Lut`] for an empty input.
    pub fn softmax(&self, logits: &[f32]) -> Result<Vec<f64>, PipelineError> {
        let ls: Vec<f64> = logits.iter().map(|&v| v as f64).collect();
        let (y, _) = self.bce.softmax(&ls)?;
        Ok(y)
    }
}

/// Runs a sequential network through the LUT datapath: convolutions and
/// linear layers as quantized BCE matmuls, activations through the PWL
/// tables, pooling through the comparator/division path. The LUT-side
/// twin of [`pim_nn::executor::run_sequential`].
///
/// # Errors
///
/// Returns [`PipelineError::Nn`] for unsupported operators or shape
/// mismatches.
pub fn run_sequential_lut(
    pipeline: &FunctionalPipeline,
    net: &pim_nn::Network,
    weights: &pim_nn::executor::NetworkWeights,
    input: &Tensor<f32>,
) -> Result<Tensor<f32>, PipelineError> {
    use pim_nn::layers::{Act, LayerOp, PoolKind};

    let mut x = input.clone();
    for layer in net.layers() {
        if x.shape() != layer.input_shape()
            && x.len() == layer.input_shape().volume()
            && layer.input_shape().rank() == 1
        {
            x.reshape(layer.input_shape().clone())?;
        }
        if x.shape() != layer.input_shape() {
            return Err(NnError::ShapeMismatch {
                context: "lut sequential execution",
                detail: format!(
                    "layer {} expects {}, data flow carries {}",
                    layer.name(),
                    layer.input_shape(),
                    x.shape()
                ),
            }
            .into());
        }
        x = match *layer.op() {
            LayerOp::Conv2d {
                stride, padding, ..
            } => {
                let (filters, bias) =
                    weights
                        .conv
                        .get(layer.name())
                        .ok_or_else(|| NnError::InvalidLayer {
                            layer: layer.name().to_string(),
                            reason: "missing conv weights".to_string(),
                        })?;
                pipeline.conv2d(&x, filters, bias, stride, padding)?
            }
            LayerOp::Linear { .. } => {
                let (w, bias) =
                    weights
                        .linear
                        .get(layer.name())
                        .ok_or_else(|| NnError::InvalidLayer {
                            layer: layer.name().to_string(),
                            reason: "missing linear weights".to_string(),
                        })?;
                let out = pipeline.linear(x.data(), w, bias)?;
                Tensor::from_vec(TensorShape::vector(out.len()), out)?
            }
            LayerOp::Pool {
                kind,
                kernel,
                stride,
                ..
            } => match kind {
                PoolKind::Max => pipeline.max_pool2d(&x, kernel, stride)?,
                PoolKind::Avg => reference::avg_pool2d(&x, kernel, stride)?,
            },
            LayerOp::Activation(act) => {
                let data: Vec<f32> = match act {
                    Act::Relu => pipeline.relu(x.data()),
                    Act::Sigmoid => pipeline
                        .sigmoid(x.data())
                        .into_iter()
                        .map(|v| v as f32)
                        .collect(),
                    Act::Tanh => pipeline
                        .tanh(x.data())
                        .into_iter()
                        .map(|v| v as f32)
                        .collect(),
                    Act::Softmax => pipeline
                        .softmax(x.data())?
                        .into_iter()
                        .map(|v| v as f32)
                        .collect(),
                    Act::Gelu => {
                        let arg: Vec<f32> = x
                            .data()
                            .iter()
                            .map(|&v| {
                                (2.0f32 / std::f32::consts::PI).sqrt() * (v + 0.044715 * v * v * v)
                            })
                            .collect();
                        let t = pipeline.tanh(&arg);
                        x.data()
                            .iter()
                            .zip(t)
                            .map(|(&v, th)| 0.5 * v * (1.0 + th as f32))
                            .collect()
                    }
                };
                Tensor::from_vec(x.shape().clone(), data)?
            }
            LayerOp::GlobalAvgPool => {
                let dims = x.shape().dims();
                let (c, hw) = (dims[0], dims[1] * dims[2]);
                let pooled: Vec<f32> = (0..c)
                    .map(|ch| x.data()[ch * hw..(ch + 1) * hw].iter().sum::<f32>() / hw as f32)
                    .collect();
                Tensor::from_vec(TensorShape::vector(c), pooled)?
            }
            _ => {
                return Err(NnError::InvalidLayer {
                    layer: layer.name().to_string(),
                    reason: format!("operator {:?} is not sequential-executable", layer.op()),
                }
                .into())
            }
        };
        let expected = layer.output_shape();
        if x.shape() != &expected && x.len() == expected.volume() {
            x.reshape(expected)?;
        }
    }
    Ok(x)
}

fn symmetric_params(t: &Tensor<f32>) -> QuantParams {
    let amax = t
        .data()
        .iter()
        .fold(0.0f64, |m, &v| m.max((v as f64).abs()));
    QuantParams::symmetric(amax)
}

/// Analytic quantization error bound for a dot product of length `k`
/// between tensors quantized at scales `sa` and `sb` with magnitude
/// bounds `amax`/`bmax`:
/// `|sum(ab) - sum(ab_hat)| <= k/2 * (sa * bmax + sb * amax) + k/4 * sa * sb`.
pub fn dot_error_bound(k: usize, sa: f64, sb: f64, amax: f64, bmax: f64) -> f64 {
    let k = k as f64;
    k / 2.0 * (sa * bmax + sb * amax) + k / 4.0 * sa * sb
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_nn::workload::WorkloadGen;

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn matmul_matches_reference_within_quant_bound() {
        let mut gen = WorkloadGen::new(11);
        let a = gen.uniform_f32(TensorShape::new(vec![5, 24]), -1.0, 1.0);
        let b = gen.uniform_f32(TensorShape::new(vec![24, 13]), -0.5, 0.5);
        let pipeline = FunctionalPipeline::new().unwrap();
        let ours = pipeline.matmul(&a, &b).unwrap();
        let exact = reference::matmul(&a, &b).unwrap();
        let bound = dot_error_bound(24, 1.0 / 127.0, 0.5 / 127.0, 1.0, 0.5) as f32;
        let diff = max_abs_diff(ours.data(), exact.data());
        assert!(diff <= bound, "diff {diff} > bound {bound}");
    }

    #[test]
    fn conv2d_matches_reference_within_quant_bound() {
        let mut gen = WorkloadGen::new(23);
        let input = gen.uniform_f32(TensorShape::chw(3, 8, 8), -1.0, 1.0);
        let filters = gen.uniform_f32(TensorShape::new(vec![4, 3, 3, 3]), -0.5, 0.5);
        let bias = [0.1f32, -0.1, 0.0, 0.2];
        let pipeline = FunctionalPipeline::new().unwrap();
        let ours = pipeline
            .conv2d(&input, &filters, &bias, (1, 1), (1, 1))
            .unwrap();
        let exact = reference::conv2d(&input, &filters, &bias, (1, 1), (1, 1)).unwrap();
        assert_eq!(ours.shape(), exact.shape());
        let bound = dot_error_bound(27, 1.0 / 127.0, 0.5 / 127.0, 1.0, 0.5) as f32;
        let diff = max_abs_diff(ours.data(), exact.data());
        assert!(diff <= bound, "diff {diff} > bound {bound}");
    }

    #[test]
    fn per_channel_conv_tightens_small_channels() {
        // Filter 0 carries tiny weights, filter 1 large ones: with a
        // shared scale, filter 0's output collapses to quantization
        // noise; per-channel scales keep it accurate.
        let mut gen = WorkloadGen::new(4141);
        let input = gen.uniform_f32(TensorShape::chw(2, 6, 6), -1.0, 1.0);
        let mut filters = gen.uniform_f32(TensorShape::new(vec![2, 2, 3, 3]), -1.0, 1.0);
        for v in filters.data_mut()[..18].iter_mut() {
            *v *= 0.01; // shrink filter 0
        }
        let bias = [0.0f32; 2];
        let pipeline = FunctionalPipeline::new().unwrap();
        let per_tensor = pipeline
            .conv2d(&input, &filters, &bias, (1, 1), (0, 0))
            .unwrap();
        let per_channel = pipeline
            .conv2d_per_channel(&input, &filters, &bias, (1, 1), (0, 0))
            .unwrap();
        let exact = reference::conv2d(&input, &filters, &bias, (1, 1), (0, 0)).unwrap();

        let spatial = exact.len() / 2;
        let err = |out: &Tensor<f32>| {
            out.data()[..spatial]
                .iter()
                .zip(&exact.data()[..spatial])
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        let pt = err(&per_tensor);
        let pc = err(&per_channel);
        assert!(pc < pt / 5.0, "per-channel {pc} vs per-tensor {pt}");
    }

    #[test]
    fn per_channel_conv_matches_per_tensor_on_balanced_filters() {
        let mut gen = WorkloadGen::new(4242);
        let input = gen.uniform_f32(TensorShape::chw(2, 5, 5), -1.0, 1.0);
        let filters = gen.uniform_f32(TensorShape::new(vec![4, 2, 3, 3]), -0.5, 0.5);
        let bias = [0.1f32, -0.1, 0.0, 0.2];
        let pipeline = FunctionalPipeline::new().unwrap();
        let a = pipeline
            .conv2d(&input, &filters, &bias, (1, 1), (1, 1))
            .unwrap();
        let b = pipeline
            .conv2d_per_channel(&input, &filters, &bias, (1, 1), (1, 1))
            .unwrap();
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 0.05, "{x} vs {y}");
        }
    }

    #[test]
    fn systolic_conv_matches_bce_conv_exactly() {
        // The systolic array and the BCE tile path quantize identically,
        // so their integer accumulations — and therefore outputs — must
        // agree bit-for-bit.
        let mut gen = WorkloadGen::new(55);
        let input = gen.uniform_f32(TensorShape::chw(2, 6, 6), -1.0, 1.0);
        let filters = gen.uniform_f32(TensorShape::new(vec![3, 2, 3, 3]), -0.5, 0.5);
        let bias = [0.05f32, -0.05, 0.0];
        let pipeline = FunctionalPipeline::new().unwrap();
        let via_bce = pipeline
            .conv2d(&input, &filters, &bias, (1, 1), (1, 1))
            .unwrap();
        let (via_systolic, cycles, hops) = pipeline
            .conv2d_systolic(&input, &filters, &bias, (1, 1), (1, 1))
            .unwrap();
        assert_eq!(via_bce.shape(), via_systolic.shape());
        for (a, b) in via_bce.data().iter().zip(via_systolic.data()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        // Timing: 36 output waves through an 18 x 3 grid.
        assert_eq!(cycles, 36 + 18 + 3 - 2);
        assert!(hops > 0);
    }

    #[test]
    fn systolic_conv_matches_reference_within_bound() {
        let mut gen = WorkloadGen::new(56);
        let input = gen.uniform_f32(TensorShape::chw(3, 8, 8), -1.0, 1.0);
        let filters = gen.uniform_f32(TensorShape::new(vec![4, 3, 3, 3]), -0.4, 0.4);
        let pipeline = FunctionalPipeline::new().unwrap();
        let (ours, _, _) = pipeline
            .conv2d_systolic(&input, &filters, &[0.0; 4], (1, 1), (0, 0))
            .unwrap();
        let exact = reference::conv2d(&input, &filters, &[0.0; 4], (1, 1), (0, 0)).unwrap();
        let bound = dot_error_bound(27, 1.0 / 127.0, 0.4 / 127.0, 1.0, 0.4) as f32;
        assert!(max_abs_diff(ours.data(), exact.data()) <= bound);
    }

    #[test]
    fn linear_matches_reference() {
        let mut gen = WorkloadGen::new(37);
        let w = gen.uniform_f32(TensorShape::new(vec![10, 32]), -0.3, 0.3);
        let x = gen.vector_f32(32, -1.0, 1.0);
        let bias = gen.vector_f32(10, -0.1, 0.1);
        let pipeline = FunctionalPipeline::new().unwrap();
        let ours = pipeline.linear(&x, &w, &bias).unwrap();
        let exact = reference::linear(&x, &w, &bias).unwrap();
        let bound = dot_error_bound(32, 1.0 / 127.0, 0.3 / 127.0, 1.0, 0.3) as f32;
        assert!(max_abs_diff(&ours, &exact) <= bound);
    }

    #[test]
    fn tiny_cnn_end_to_end_preserves_prediction() {
        // conv -> relu -> maxpool -> linear -> softmax, LUT datapath vs
        // f32 reference: probabilities agree closely and argmax matches.
        let mut gen = WorkloadGen::new(99);
        let input = gen.uniform_f32(TensorShape::chw(1, 8, 8), -1.0, 1.0);
        let filters = gen.uniform_f32(TensorShape::new(vec![4, 1, 3, 3]), -0.5, 0.5);
        let fc_w = gen.uniform_f32(TensorShape::new(vec![5, 4 * 3 * 3]), -0.3, 0.3);
        let fc_b = gen.vector_f32(5, -0.05, 0.05);

        let pipeline = FunctionalPipeline::new().unwrap();
        let conv = pipeline
            .conv2d(&input, &filters, &[0.0; 4], (1, 1), (0, 0))
            .unwrap();
        let act = pipeline.relu(conv.data());
        let act_t = Tensor::from_vec(conv.shape().clone(), act).unwrap();
        let pooled = pipeline.max_pool2d(&act_t, (2, 2), (2, 2)).unwrap();
        let flat: Vec<f32> = pooled.data().to_vec();
        let logits = pipeline.linear(&flat, &fc_w, &fc_b).unwrap();
        let probs = pipeline.softmax(&logits).unwrap();

        // Reference path.
        let conv_r = reference::conv2d(&input, &filters, &[0.0; 4], (1, 1), (0, 0)).unwrap();
        let act_r = reference::relu(conv_r.data());
        let act_rt = Tensor::from_vec(conv_r.shape().clone(), act_r).unwrap();
        let pooled_r = reference::max_pool2d(&act_rt, (2, 2), (2, 2)).unwrap();
        let logits_r = reference::linear(pooled_r.data(), &fc_w, &fc_b).unwrap();
        let probs_r = reference::softmax(&logits_r);

        let argmax = |v: &[f64]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        let argmax_f = |v: &[f32]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(argmax(&probs), argmax_f(&probs_r));
        for (p, r) in probs.iter().zip(probs_r.iter()) {
            assert!((p - *r as f64).abs() < 0.08, "prob {p} vs {r}");
        }
    }

    #[test]
    fn lut_activations_track_reference() {
        let pipeline = FunctionalPipeline::new().unwrap();
        let xs: Vec<f32> = (-30..=30).map(|i| i as f32 / 10.0).collect();
        let sig = pipeline.sigmoid(&xs);
        let tanh = pipeline.tanh(&xs);
        for (i, &x) in xs.iter().enumerate() {
            assert!((sig[i] - reference::sigmoid(x) as f64).abs() < 2e-3);
            assert!((tanh[i] - (x as f64).tanh()).abs() < 2e-3);
        }
    }

    #[test]
    fn pipeline_exercises_rom_not_host_multiplier() {
        let pipeline = FunctionalPipeline::new().unwrap();
        let a = Tensor::from_fn(TensorShape::new(vec![2, 4]), |i| (i[0] + i[1]) as f32 * 0.1);
        let b = Tensor::from_fn(TensorShape::new(vec![4, 2]), |i| {
            (i[0] * 2 + i[1]) as f32 * 0.1
        });
        let _ = pipeline.matmul(&a, &b).unwrap();
        assert!(pipeline.bce().rom_reads() > 0);
    }

    #[test]
    fn shape_errors_propagate() {
        let pipeline = FunctionalPipeline::new().unwrap();
        let a = Tensor::zeros(TensorShape::new(vec![2, 3]));
        let b = Tensor::zeros(TensorShape::new(vec![4, 2]));
        assert!(matches!(pipeline.matmul(&a, &b), Err(PipelineError::Nn(_))));
    }
}
