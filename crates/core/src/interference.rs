//! Cache-mode interference: what PIM execution costs a conventional
//! access (paper §II-A / §III-A).
//!
//! BFree's design goal is that the PIM circuitry has "minimal impact on
//! conventional memory performance": the BCE snoops the existing
//! data/address bus, LUT rows have their own precharge, and the only
//! shared resource a PIM kernel occupies is a subarray's bitlines during
//! its weight-row reads. A conventional access that lands on a
//! PIM-active subarray must wait out the in-flight row access.
//!
//! This module quantifies that: the bitline *duty cycle* of each
//! execution mode (one weight-row read per N MAC cycles), the conflict
//! probability for a random access, and the expected inflation of the
//! cache access latency.

use pim_arch::{CacheGeometry, Latency, TimingParams};
use pim_bce::BceMode;
use serde::{Deserialize, Serialize};

/// The interference model.
///
/// ```
/// use bfree::interference::InterferenceModel;
/// use pim_bce::BceMode;
/// let model = InterferenceModel::paper_default();
/// // Even with the whole cache computing, conventional accesses slow by
/// // well under 1% — the paper's "minimal impact" claim.
/// let slowdown = model.slowdown(BceMode::Conv, 1.0);
/// assert!(slowdown < 1.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    geometry: CacheGeometry,
    timing: TimingParams,
}

impl InterferenceModel {
    /// Builds the model from a geometry and timing set.
    pub fn new(geometry: CacheGeometry, timing: TimingParams) -> Self {
        InterferenceModel { geometry, timing }
    }

    /// The paper's default machine.
    pub fn paper_default() -> Self {
        InterferenceModel::new(CacheGeometry::xeon_l3_35mb(), TimingParams::default())
    }

    /// Fraction of cycles a PIM-active subarray occupies its bitlines
    /// with weight-row reads. Conv mode reads one 8-byte row per eight
    /// int8 MACs = one bitline cycle in sixteen; matmul mode reuses
    /// registers and reads one row per sixteen MACs = one in four (the
    /// row feeds 16 MACs but they retire at 4/cycle).
    pub fn bitline_duty(&self, mode: BceMode) -> f64 {
        match mode {
            // 8 MACs per row read at 0.5 MAC/cycle: 1 busy cycle / 16.
            BceMode::Conv => 1.0 / 16.0,
            // 16 MACs per row read at 4 MACs/cycle: 1 busy cycle / 4.
            BceMode::MatMul => 1.0 / 4.0,
        }
    }

    /// Probability a random conventional access conflicts with an
    /// in-flight PIM row access, when `pim_fraction` of subarrays run a
    /// kernel in `mode`.
    ///
    /// # Panics
    ///
    /// Panics when `pim_fraction` is outside `[0, 1]`.
    pub fn conflict_probability(&self, mode: BceMode, pim_fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&pim_fraction), "fraction out of range");
        pim_fraction * self.bitline_duty(mode)
    }

    /// Expected conventional access latency under PIM load: the base
    /// slice access plus, on conflict, half a subarray cycle of expected
    /// residual wait.
    pub fn expected_access_latency(&self, mode: BceMode, pim_fraction: f64) -> Latency {
        let base = self.timing.slice_access();
        let stall = self.timing.subarray_access() * 0.5;
        base + stall * self.conflict_probability(mode, pim_fraction)
    }

    /// Slowdown factor of conventional accesses (1.0 = unaffected).
    pub fn slowdown(&self, mode: BceMode, pim_fraction: f64) -> f64 {
        self.expected_access_latency(mode, pim_fraction)
            .ratio(self.timing.slice_access())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_pim_activity_means_no_slowdown() {
        let m = InterferenceModel::paper_default();
        assert_eq!(m.slowdown(BceMode::Conv, 0.0), 1.0);
        assert_eq!(m.slowdown(BceMode::MatMul, 0.0), 1.0);
    }

    #[test]
    fn full_pim_activity_stays_under_one_percent() {
        // The paper's "minimal impact on conventional memory
        // performance": even the worst case is sub-1%.
        let m = InterferenceModel::paper_default();
        assert!(m.slowdown(BceMode::Conv, 1.0) < 1.01);
        assert!(m.slowdown(BceMode::MatMul, 1.0) < 1.01);
    }

    #[test]
    fn matmul_mode_interferes_more_than_conv() {
        let m = InterferenceModel::paper_default();
        assert!(
            m.slowdown(BceMode::MatMul, 0.5) > m.slowdown(BceMode::Conv, 0.5),
            "matmul reads weight rows more often"
        );
    }

    #[test]
    fn slowdown_monotone_in_pim_fraction() {
        let m = InterferenceModel::paper_default();
        let mut prev = 1.0;
        for i in 0..=10 {
            let s = m.slowdown(BceMode::MatMul, i as f64 / 10.0);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn conflict_probability_formula() {
        let m = InterferenceModel::paper_default();
        assert!((m.conflict_probability(BceMode::Conv, 0.8) - 0.8 / 16.0).abs() < 1e-12);
        assert!((m.conflict_probability(BceMode::MatMul, 0.8) - 0.8 / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn out_of_range_fraction_panics() {
        let _ = InterferenceModel::paper_default().conflict_probability(BceMode::Conv, 1.5);
    }
}
