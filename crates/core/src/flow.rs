//! The hierarchical execution-flow state machine of Fig. 11.
//!
//! The paper draws kernel execution as an explicit flow: the cache
//! controller decodes an in-memory instruction, runs the *configuration
//! phase* (program LUT rows, program slice controllers, distribute
//! weights, program CBs), then the *computation phase* (stream inputs,
//! compute, accumulate systolically, redistribute, write back). This
//! module encodes that flow as a typed state machine with an event log,
//! so the simulator's phase accounting has an inspectable, test-backed
//! counterpart.

use serde::{Deserialize, Serialize};

/// States of the kernel execution flow (the boxes of Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowState {
    /// Waiting for an in-memory instruction.
    Idle,
    /// Decoding the kernel instruction at the cache controller.
    DecodeInstruction,
    /// Loading LUT rows with the kernel's entries.
    ProgramLuts,
    /// Programming the slice controllers with kernel control data.
    ProgramSliceControllers,
    /// Broadcasting and distributing weights across slices/subarrays.
    DistributeWeights,
    /// Programming each BCE's configuration block.
    ProgramConfigBlocks,
    /// Streaming inputs into the first sub-bank's BCEs.
    StreamInputs,
    /// LUT/BCE compute with systolic accumulation.
    Compute,
    /// Redistributing accumulated results across sub-arrays.
    Redistribute,
    /// Writing results to the subarrays or next-level memory.
    Writeback,
    /// Kernel complete.
    Done,
}

impl FlowState {
    /// The legal successor of this state in the Fig. 11 flow.
    pub fn next(self) -> FlowState {
        match self {
            FlowState::Idle => FlowState::DecodeInstruction,
            FlowState::DecodeInstruction => FlowState::ProgramLuts,
            FlowState::ProgramLuts => FlowState::ProgramSliceControllers,
            FlowState::ProgramSliceControllers => FlowState::DistributeWeights,
            FlowState::DistributeWeights => FlowState::ProgramConfigBlocks,
            FlowState::ProgramConfigBlocks => FlowState::StreamInputs,
            FlowState::StreamInputs => FlowState::Compute,
            FlowState::Compute => FlowState::Redistribute,
            FlowState::Redistribute => FlowState::Writeback,
            FlowState::Writeback => FlowState::Done,
            FlowState::Done => FlowState::Done,
        }
    }

    /// Whether the state belongs to the configuration phase (Fig. 11's
    /// upper half).
    pub fn is_configuration(self) -> bool {
        matches!(
            self,
            FlowState::DecodeInstruction
                | FlowState::ProgramLuts
                | FlowState::ProgramSliceControllers
                | FlowState::DistributeWeights
                | FlowState::ProgramConfigBlocks
        )
    }

    /// Whether the state belongs to the computation phase.
    pub fn is_computation(self) -> bool {
        matches!(
            self,
            FlowState::StreamInputs
                | FlowState::Compute
                | FlowState::Redistribute
                | FlowState::Writeback
        )
    }

    /// Short label for traces.
    pub fn label(self) -> &'static str {
        match self {
            FlowState::Idle => "idle",
            FlowState::DecodeInstruction => "decode-instruction",
            FlowState::ProgramLuts => "program-luts",
            FlowState::ProgramSliceControllers => "program-slice-controllers",
            FlowState::DistributeWeights => "distribute-weights",
            FlowState::ProgramConfigBlocks => "program-config-blocks",
            FlowState::StreamInputs => "stream-inputs",
            FlowState::Compute => "compute",
            FlowState::Redistribute => "redistribute",
            FlowState::Writeback => "writeback",
            FlowState::Done => "done",
        }
    }
}

/// A kernel execution flow with an event log.
///
/// ```
/// use bfree::flow::{FlowState, KernelFlow};
/// let mut flow = KernelFlow::new("conv kernel");
/// let log = flow.run_to_completion();
/// assert_eq!(log.first().copied(), Some(FlowState::DecodeInstruction));
/// assert_eq!(flow.state(), FlowState::Done);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelFlow {
    kernel: String,
    state: FlowState,
    log: Vec<FlowState>,
}

impl KernelFlow {
    /// Creates an idle flow for a named kernel.
    pub fn new(kernel: impl Into<String>) -> Self {
        KernelFlow {
            kernel: kernel.into(),
            state: FlowState::Idle,
            log: Vec::new(),
        }
    }

    /// The kernel name.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// The current state.
    pub fn state(&self) -> FlowState {
        self.state
    }

    /// Advances one state, logging the transition. Returns the new
    /// state.
    pub fn step(&mut self) -> FlowState {
        self.state = self.state.next();
        if self.state != FlowState::Done || self.log.last() != Some(&FlowState::Done) {
            self.log.push(self.state);
        }
        self.state
    }

    /// Runs to completion, returning the ordered state log.
    pub fn run_to_completion(&mut self) -> Vec<FlowState> {
        while self.state != FlowState::Done {
            self.step();
        }
        self.log.clone()
    }

    /// The transition log so far.
    pub fn log(&self) -> &[FlowState] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_visits_every_fig11_box_in_order() {
        let mut flow = KernelFlow::new("test");
        let log = flow.run_to_completion();
        assert_eq!(
            log,
            vec![
                FlowState::DecodeInstruction,
                FlowState::ProgramLuts,
                FlowState::ProgramSliceControllers,
                FlowState::DistributeWeights,
                FlowState::ProgramConfigBlocks,
                FlowState::StreamInputs,
                FlowState::Compute,
                FlowState::Redistribute,
                FlowState::Writeback,
                FlowState::Done,
            ]
        );
    }

    #[test]
    fn configuration_precedes_computation() {
        let mut flow = KernelFlow::new("ordering");
        let log = flow.run_to_completion();
        let last_config = log
            .iter()
            .rposition(|s| s.is_configuration())
            .expect("config states present");
        let first_compute = log
            .iter()
            .position(|s| s.is_computation())
            .expect("compute states present");
        assert!(last_config < first_compute);
    }

    #[test]
    fn phases_partition_the_flow() {
        for state in [
            FlowState::DecodeInstruction,
            FlowState::ProgramLuts,
            FlowState::StreamInputs,
            FlowState::Writeback,
        ] {
            assert!(state.is_configuration() ^ state.is_computation());
        }
        assert!(!FlowState::Idle.is_configuration() && !FlowState::Idle.is_computation());
        assert!(!FlowState::Done.is_configuration() && !FlowState::Done.is_computation());
    }

    #[test]
    fn done_is_absorbing() {
        let mut flow = KernelFlow::new("absorbing");
        flow.run_to_completion();
        let log_len = flow.log().len();
        flow.step();
        flow.step();
        assert_eq!(flow.state(), FlowState::Done);
        assert_eq!(flow.log().len(), log_len, "done must not re-log");
    }

    #[test]
    fn labels_are_distinct() {
        let mut flow = KernelFlow::new("labels");
        let mut labels: Vec<&str> = flow.run_to_completion().iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 10);
    }
}
