//! Weight distribution across the cache (paper §IV, Fig. 9).
//!
//! The cache controller "distributes the weights across and within each
//! slice for efficient execution. It employs weight duplication, and
//! efficient partition across sub-arrays to increase the parallelism"
//! (§IV-C). The [`Mapper`] computes, per layer: how many subarrays one
//! copy of the weights needs, how many replicas fit, and therefore how
//! many subarrays compute in parallel.

use pim_arch::CacheGeometry;
use pim_bce::{BceMode, Precision};
use pim_nn::LayerSpec;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Mapping failure: a single copy of the layer does not fit the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTooLargeError {
    /// The layer name.
    pub layer: String,
    /// Bytes one replica needs.
    pub required: u64,
    /// Usable weight bytes in the cache.
    pub available: u64,
}

impl fmt::Display for LayerTooLargeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layer {} needs {} weight bytes but the cache holds {}",
            self.layer, self.required, self.available
        )
    }
}

impl Error for LayerTooLargeError {}

/// The placement of one layer's weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// The layer name.
    pub layer: String,
    /// Execution mode for this layer.
    pub mode: BceMode,
    /// Operand precision.
    pub precision: Precision,
    /// Subarrays holding one copy of the weights.
    pub subarrays_per_replica: usize,
    /// Weight copies placed across the cache.
    pub replicas: usize,
    /// Subarrays with work (replicas x subarrays per replica, capped at
    /// the cache).
    pub active_subarrays: usize,
    /// Fraction of all subarrays active.
    pub utilization: f64,
}

impl Mapping {
    /// Peak MACs per cycle this mapping sustains.
    pub fn macs_per_cycle(&self) -> f64 {
        let per_subarray = match (self.mode, self.precision) {
            (BceMode::Conv, Precision::Int4) => 1.0,
            (BceMode::Conv, Precision::Int8) => 0.5,
            (BceMode::Conv, Precision::Int16) => 0.125,
            (BceMode::MatMul, Precision::Int4) => 8.0,
            (BceMode::MatMul, Precision::Int8) => 4.0,
            (BceMode::MatMul, Precision::Int16) => 1.0,
        };
        per_subarray * self.active_subarrays as f64
    }
}

/// Computes layer mappings for a cache geometry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapper {
    geometry: CacheGeometry,
}

impl Mapper {
    /// Creates a mapper over a geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        Mapper { geometry }
    }

    /// The geometry in use.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Maps one layer.
    ///
    /// One replica spreads over `ceil(weight_bytes / usable subarray
    /// bytes)` subarrays; replicas are then duplicated until the cache
    /// is full or the layer's intrinsic parallelism (one independent
    /// work unit per output element) is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`LayerTooLargeError`] when even a single replica
    /// exceeds the cache (networks stream such layers in tiles; the
    /// simulator treats them as one full-cache replica after this check
    /// via [`Mapper::map_layer_tiled`]).
    pub fn map_layer(
        &self,
        layer: &LayerSpec,
        mode: BceMode,
        precision: Precision,
    ) -> Result<Mapping, LayerTooLargeError> {
        let bytes = layer.weight_bytes(precision.bits());
        let per_subarray = self.geometry.usable_subarray_capacity().get().max(1);
        let total = self.geometry.total_subarrays();
        let available = per_subarray * total as u64;
        if bytes > available {
            return Err(LayerTooLargeError {
                layer: layer.name().to_string(),
                required: bytes,
                available,
            });
        }
        let subarrays_per_replica = (bytes.div_ceil(per_subarray) as usize).max(1);
        // Independent work units: one per output element (each needs its
        // own dot product); more replicas than that would idle.
        let work_units = layer.output_elements().max(1) as usize;
        let max_replicas_by_space = total / subarrays_per_replica;
        let replicas = max_replicas_by_space.min(work_units).max(1);
        let active_subarrays = (replicas * subarrays_per_replica).min(total);
        Ok(Mapping {
            layer: layer.name().to_string(),
            mode,
            precision,
            subarrays_per_replica,
            replicas,
            active_subarrays,
            utilization: active_subarrays as f64 / total as f64,
        })
    }

    /// Maps a layer that may exceed the cache: oversized layers process
    /// in weight tiles that each fill the whole cache (utilization 1).
    pub fn map_layer_tiled(
        &self,
        layer: &LayerSpec,
        mode: BceMode,
        precision: Precision,
    ) -> Mapping {
        match self.map_layer(layer, mode, precision) {
            Ok(mapping) => mapping,
            Err(_) => {
                let total = self.geometry.total_subarrays();
                Mapping {
                    layer: layer.name().to_string(),
                    mode,
                    precision,
                    subarrays_per_replica: total,
                    replicas: 1,
                    active_subarrays: total,
                    utilization: 1.0,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_nn::networks;

    fn mapper() -> Mapper {
        Mapper::new(CacheGeometry::xeon_l3_35mb())
    }

    #[test]
    fn small_layer_replicates_widely() {
        // Inception stem conv: ~0.9 KB of weights, huge output map.
        let net = networks::inception_v3();
        let first = net.weight_layers().next().unwrap();
        let m = mapper()
            .map_layer(first, BceMode::Conv, Precision::Int8)
            .unwrap();
        assert_eq!(m.subarrays_per_replica, 1);
        assert!(m.replicas > 1000, "replicas {}", m.replicas);
        assert!(m.utilization > 0.9);
    }

    #[test]
    fn replicas_capped_by_output_parallelism() {
        // The 1000-way classifier has only 1000 independent outputs.
        let net = networks::inception_v3();
        let fc = net.weight_layers().find(|l| l.name() == "fc").unwrap();
        let m = mapper()
            .map_layer(fc, BceMode::MatMul, Precision::Int8)
            .unwrap();
        assert!(m.replicas <= 1000);
    }

    #[test]
    fn vgg_fc1_spans_many_subarrays() {
        // fc1: 4096 x 25088 weights ~ 103 MB > cache: must tile.
        let net = networks::vgg16();
        let fc1 = net.weight_layers().find(|l| l.name() == "fc1").unwrap();
        assert!(mapper()
            .map_layer(fc1, BceMode::MatMul, Precision::Int8)
            .is_err());
        let tiled = mapper().map_layer_tiled(fc1, BceMode::MatMul, Precision::Int8);
        assert_eq!(tiled.utilization, 1.0);
        assert_eq!(tiled.active_subarrays, 4480);
    }

    #[test]
    fn int4_halves_weight_footprint() {
        let net = networks::vgg16();
        let conv = net.weight_layers().find(|l| l.name() == "conv5_1").unwrap();
        let m8 = mapper()
            .map_layer(conv, BceMode::Conv, Precision::Int8)
            .unwrap();
        let m4 = mapper()
            .map_layer(conv, BceMode::Conv, Precision::Int4)
            .unwrap();
        assert!(m4.subarrays_per_replica <= m8.subarrays_per_replica);
        assert!(m4.replicas >= m8.replicas);
    }

    #[test]
    fn macs_per_cycle_reflects_mode_and_precision() {
        let net = networks::inception_v3();
        let first = net.weight_layers().next().unwrap();
        let conv8 = mapper()
            .map_layer(first, BceMode::Conv, Precision::Int8)
            .unwrap();
        let mm8 = mapper()
            .map_layer(first, BceMode::MatMul, Precision::Int8)
            .unwrap();
        assert!((mm8.macs_per_cycle() / conv8.macs_per_cycle() - 8.0).abs() < 1e-9);
        let mm4 = mapper()
            .map_layer(first, BceMode::MatMul, Precision::Int4)
            .unwrap();
        assert!((mm4.macs_per_cycle() / mm8.macs_per_cycle() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_peak_throughput_matches_section5d() {
        // §V-D: "4 MACs/subarray, and a total of 4480 sub-arrays".
        let net = networks::bert_base();
        let attn = net.weight_layers().next().unwrap();
        let m = mapper()
            .map_layer(attn, BceMode::MatMul, Precision::Int8)
            .unwrap();
        // A 2.4 MB attention layer replicates ~14x and keeps most of
        // the cache busy.
        assert!(m.utilization > 0.9, "utilization {}", m.utilization);
        assert!(m.macs_per_cycle() > 0.9 * 4.0 * 4480.0);
    }

    #[test]
    fn error_message_is_informative() {
        let net = networks::vgg16();
        let fc1 = net.weight_layers().find(|l| l.name() == "fc1").unwrap();
        let err = mapper()
            .map_layer(fc1, BceMode::MatMul, Precision::Int8)
            .unwrap_err();
        assert!(err.to_string().contains("fc1"));
    }
}
