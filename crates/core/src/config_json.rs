//! JSON round-trip for [`BfreeConfig`].
//!
//! The workspace's vendored `serde` is a no-op marker stub, so config
//! persistence goes through the hand-rolled `bfree_obs::json` layer
//! instead of derive macros. The schema is flat and explicit: one JSON
//! object per parameter struct, enums as kebab-case strings. The
//! round-trip contract (`from_json_str(to_json_string(c)) == c`) is
//! what the serde-round-trip integration tests pin.

use bfree_obs::{JsonValue, ObsError};
use pim_arch::{
    AreaModel, CacheGeometry, EnergyParams, LutRowDesign, MemoryTech, MemoryTechKind,
    RingInterconnect, TimingParams,
};
use pim_bce::Precision;

use crate::config::{BfreeConfig, ConvDataflow};
use crate::precision::PrecisionPolicy;

fn schema_err(field: &str, expected: &'static str) -> ObsError {
    ObsError::Schema {
        field: field.to_string(),
        expected,
    }
}

fn lut_design_label(design: LutRowDesign) -> &'static str {
    match design {
        LutRowDesign::Standalone => "standalone",
        LutRowDesign::SharedBitline => "shared-bitline",
        LutRowDesign::DecoupledBitline => "decoupled-bitline",
    }
}

fn lut_design_parse(label: &str) -> Result<LutRowDesign, ObsError> {
    match label {
        "standalone" => Ok(LutRowDesign::Standalone),
        "shared-bitline" => Ok(LutRowDesign::SharedBitline),
        "decoupled-bitline" => Ok(LutRowDesign::DecoupledBitline),
        _ => Err(schema_err("lut_design", "a LUT-row design label")),
    }
}

fn memory_kind_label(kind: MemoryTechKind) -> &'static str {
    match kind {
        MemoryTechKind::Dram => "dram",
        MemoryTechKind::Edram => "edram",
        MemoryTechKind::Hbm => "hbm",
    }
}

fn memory_kind_parse(label: &str) -> Result<MemoryTechKind, ObsError> {
    match label {
        "dram" => Ok(MemoryTechKind::Dram),
        "edram" => Ok(MemoryTechKind::Edram),
        "hbm" => Ok(MemoryTechKind::Hbm),
        _ => Err(schema_err("memory.kind", "a memory technology label")),
    }
}

fn dataflow_label(dataflow: ConvDataflow) -> &'static str {
    match dataflow {
        ConvDataflow::Direct => "direct",
        ConvDataflow::Im2col => "im2col",
        ConvDataflow::Auto => "auto",
    }
}

fn dataflow_parse(label: &str) -> Result<ConvDataflow, ObsError> {
    match label {
        "direct" => Ok(ConvDataflow::Direct),
        "im2col" => Ok(ConvDataflow::Im2col),
        "auto" => Ok(ConvDataflow::Auto),
        _ => Err(schema_err("conv_dataflow", "a dataflow label")),
    }
}

fn precision_label(precision: Precision) -> &'static str {
    match precision {
        Precision::Int4 => "int4",
        Precision::Int8 => "int8",
        Precision::Int16 => "int16",
    }
}

fn precision_parse(label: &str) -> Result<Precision, ObsError> {
    match label {
        "int4" => Ok(Precision::Int4),
        "int8" => Ok(Precision::Int8),
        "int16" => Ok(Precision::Int16),
        _ => Err(schema_err("precision", "an operand precision label")),
    }
}

fn geometry_to_json(geom: &CacheGeometry) -> JsonValue {
    JsonValue::object([
        ("slices", JsonValue::Number(geom.slices() as f64)),
        (
            "banks_per_slice",
            JsonValue::Number(geom.banks_per_slice() as f64),
        ),
        (
            "subbanks_per_bank",
            JsonValue::Number(geom.subbanks_per_bank() as f64),
        ),
        (
            "subarrays_per_subbank",
            JsonValue::Number(geom.subarrays_per_subbank() as f64),
        ),
        (
            "partitions_per_subarray",
            JsonValue::Number(geom.partitions_per_subarray() as f64),
        ),
        (
            "rows_per_partition",
            JsonValue::Number(geom.rows_per_partition() as f64),
        ),
        (
            "bits_per_row",
            JsonValue::Number(geom.bits_per_row() as f64),
        ),
        (
            "lut_rows_per_partition",
            JsonValue::Number(geom.lut_rows_per_partition() as f64),
        ),
    ])
}

fn geometry_from_json(value: &JsonValue) -> Result<CacheGeometry, ObsError> {
    let dim = |key: &str| -> Result<usize, ObsError> { Ok(value.require_u64(key)? as usize) };
    CacheGeometry::new(
        dim("slices")?,
        dim("banks_per_slice")?,
        dim("subbanks_per_bank")?,
        dim("subarrays_per_subbank")?,
        dim("partitions_per_subarray")?,
        dim("rows_per_partition")?,
        dim("bits_per_row")?,
        dim("lut_rows_per_partition")?,
    )
    .map_err(|_| schema_err("geometry", "a valid cache geometry"))
}

fn timing_to_json(t: &TimingParams) -> JsonValue {
    JsonValue::object([
        (
            "subarray_clock_ghz",
            JsonValue::Number(t.subarray_clock_ghz),
        ),
        ("slice_access_ns", JsonValue::Number(t.slice_access_ns)),
        (
            "interconnect_latency_fraction",
            JsonValue::Number(t.interconnect_latency_fraction),
        ),
        (
            "subarray_latency_fraction",
            JsonValue::Number(t.subarray_latency_fraction),
        ),
        ("fast_lut_speedup", JsonValue::Number(t.fast_lut_speedup)),
        (
            "bitline_compute_clock_derate",
            JsonValue::Number(t.bitline_compute_clock_derate),
        ),
    ])
}

fn timing_from_json(value: &JsonValue) -> Result<TimingParams, ObsError> {
    Ok(TimingParams {
        subarray_clock_ghz: value.require_f64("subarray_clock_ghz")?,
        slice_access_ns: value.require_f64("slice_access_ns")?,
        interconnect_latency_fraction: value.require_f64("interconnect_latency_fraction")?,
        subarray_latency_fraction: value.require_f64("subarray_latency_fraction")?,
        fast_lut_speedup: value.require_f64("fast_lut_speedup")?,
        bitline_compute_clock_derate: value.require_f64("bitline_compute_clock_derate")?,
    })
}

fn energy_to_json(e: &EnergyParams) -> JsonValue {
    JsonValue::object([
        (
            "subarray_row_access_pj",
            JsonValue::Number(e.subarray_row_access_pj),
        ),
        (
            "bitline_compute_op_pj",
            JsonValue::Number(e.bitline_compute_op_pj),
        ),
        (
            "fast_lut_efficiency",
            JsonValue::Number(e.fast_lut_efficiency),
        ),
        ("bce_rom_mac_pj", JsonValue::Number(e.bce_rom_mac_pj)),
        (
            "interconnect_energy_fraction",
            JsonValue::Number(e.interconnect_energy_fraction),
        ),
        (
            "subarray_energy_fraction",
            JsonValue::Number(e.subarray_energy_fraction),
        ),
        (
            "router_hop_pj_per_byte",
            JsonValue::Number(e.router_hop_pj_per_byte),
        ),
        (
            "cache_controller_mw",
            JsonValue::Number(e.cache_controller_mw),
        ),
        (
            "slice_controller_mw",
            JsonValue::Number(e.slice_controller_mw),
        ),
        ("bce_conv_mode_mw", JsonValue::Number(e.bce_conv_mode_mw)),
        (
            "bce_matmul_mode_mw",
            JsonValue::Number(e.bce_matmul_mode_mw),
        ),
    ])
}

fn energy_from_json(value: &JsonValue) -> Result<EnergyParams, ObsError> {
    Ok(EnergyParams {
        subarray_row_access_pj: value.require_f64("subarray_row_access_pj")?,
        bitline_compute_op_pj: value.require_f64("bitline_compute_op_pj")?,
        fast_lut_efficiency: value.require_f64("fast_lut_efficiency")?,
        bce_rom_mac_pj: value.require_f64("bce_rom_mac_pj")?,
        interconnect_energy_fraction: value.require_f64("interconnect_energy_fraction")?,
        subarray_energy_fraction: value.require_f64("subarray_energy_fraction")?,
        router_hop_pj_per_byte: value.require_f64("router_hop_pj_per_byte")?,
        cache_controller_mw: value.require_f64("cache_controller_mw")?,
        slice_controller_mw: value.require_f64("slice_controller_mw")?,
        bce_conv_mode_mw: value.require_f64("bce_conv_mode_mw")?,
        bce_matmul_mode_mw: value.require_f64("bce_matmul_mode_mw")?,
    })
}

fn area_to_json(a: &AreaModel) -> JsonValue {
    JsonValue::object([
        ("slice_area_mm2", JsonValue::Number(a.slice_area_mm2)),
        (
            "subarray_area_fraction",
            JsonValue::Number(a.subarray_area_fraction),
        ),
        (
            "bce_slice_overhead",
            JsonValue::Number(a.bce_slice_overhead),
        ),
        (
            "router_slice_overhead",
            JsonValue::Number(a.router_slice_overhead),
        ),
        (
            "controller_cache_overhead",
            JsonValue::Number(a.controller_cache_overhead),
        ),
        (
            "lut_design",
            JsonValue::String(lut_design_label(a.lut_design).to_string()),
        ),
        (
            "specialized_mac_relative_area",
            JsonValue::Number(a.specialized_mac_relative_area),
        ),
        (
            "bce_vs_mac_energy_gain",
            JsonValue::Number(a.bce_vs_mac_energy_gain),
        ),
    ])
}

fn area_from_json(value: &JsonValue) -> Result<AreaModel, ObsError> {
    Ok(AreaModel {
        slice_area_mm2: value.require_f64("slice_area_mm2")?,
        subarray_area_fraction: value.require_f64("subarray_area_fraction")?,
        bce_slice_overhead: value.require_f64("bce_slice_overhead")?,
        router_slice_overhead: value.require_f64("router_slice_overhead")?,
        controller_cache_overhead: value.require_f64("controller_cache_overhead")?,
        lut_design: lut_design_parse(value.require_str("lut_design")?)?,
        specialized_mac_relative_area: value.require_f64("specialized_mac_relative_area")?,
        bce_vs_mac_energy_gain: value.require_f64("bce_vs_mac_energy_gain")?,
    })
}

fn memory_to_json(m: &MemoryTech) -> JsonValue {
    JsonValue::object([
        (
            "kind",
            JsonValue::String(memory_kind_label(m.kind).to_string()),
        ),
        ("bandwidth_gbps", JsonValue::Number(m.bandwidth_gbps)),
        ("pj_per_bit", JsonValue::Number(m.pj_per_bit)),
    ])
}

fn memory_from_json(value: &JsonValue) -> Result<MemoryTech, ObsError> {
    Ok(MemoryTech {
        kind: memory_kind_parse(value.require_str("kind")?)?,
        bandwidth_gbps: value.require_f64("bandwidth_gbps")?,
        pj_per_bit: value.require_f64("pj_per_bit")?,
    })
}

fn ring_to_json(r: &RingInterconnect) -> JsonValue {
    JsonValue::object([
        ("slices", JsonValue::Number(r.slices as f64)),
        ("hop_ns", JsonValue::Number(r.hop_ns)),
        ("hop_pj_per_byte", JsonValue::Number(r.hop_pj_per_byte)),
        ("link_bytes", JsonValue::Number(r.link_bytes as f64)),
    ])
}

fn ring_from_json(value: &JsonValue) -> Result<RingInterconnect, ObsError> {
    Ok(RingInterconnect {
        slices: value.require_u64("slices")? as usize,
        hop_ns: value.require_f64("hop_ns")?,
        hop_pj_per_byte: value.require_f64("hop_pj_per_byte")?,
        link_bytes: value.require_u64("link_bytes")?,
    })
}

fn precision_policy_to_json(p: &PrecisionPolicy) -> JsonValue {
    match p {
        PrecisionPolicy::Uniform(precision) => JsonValue::object([
            ("policy", JsonValue::String("uniform".to_string())),
            (
                "precision",
                JsonValue::String(precision_label(*precision).to_string()),
            ),
        ]),
        PrecisionPolicy::MixedFourEight { keep_int8 } => JsonValue::object([
            ("policy", JsonValue::String("mixed-four-eight".to_string())),
            (
                "keep_int8",
                JsonValue::Array(
                    keep_int8
                        .iter()
                        .map(|name| JsonValue::String(name.clone()))
                        .collect(),
                ),
            ),
        ]),
    }
}

fn precision_policy_from_json(value: &JsonValue) -> Result<PrecisionPolicy, ObsError> {
    match value.require_str("policy")? {
        "uniform" => Ok(PrecisionPolicy::Uniform(precision_parse(
            value.require_str("precision")?,
        )?)),
        "mixed-four-eight" => {
            let names = value
                .get("keep_int8")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| schema_err("precision.keep_int8", "an array of layer names"))?;
            let keep_int8 = names
                .iter()
                .map(|n| {
                    n.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| schema_err("precision.keep_int8", "a layer name string"))
                })
                .collect::<Result<Vec<String>, ObsError>>()?;
            Ok(PrecisionPolicy::MixedFourEight { keep_int8 })
        }
        _ => Err(schema_err("precision.policy", "a precision policy label")),
    }
}

impl BfreeConfig {
    /// Serializes this configuration as a [`JsonValue`] tree.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("geometry", geometry_to_json(&self.geometry)),
            ("timing", timing_to_json(&self.timing)),
            ("energy", energy_to_json(&self.energy)),
            (
                "lut_design",
                JsonValue::String(lut_design_label(self.lut_design).to_string()),
            ),
            ("area", area_to_json(&self.area)),
            ("memory", memory_to_json(&self.memory)),
            ("ring", ring_to_json(&self.ring)),
            (
                "conv_dataflow",
                JsonValue::String(dataflow_label(self.conv_dataflow).to_string()),
            ),
            ("precision", precision_policy_to_json(&self.precision)),
        ])
    }

    /// Serializes this configuration as a JSON string with
    /// deterministic key order.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Deserializes a configuration from a [`JsonValue`] tree.
    ///
    /// # Errors
    ///
    /// [`ObsError::Schema`] for a missing or mistyped field, including
    /// a geometry that fails [`CacheGeometry::new`]'s invariants.
    pub fn from_json(value: &JsonValue) -> Result<BfreeConfig, ObsError> {
        let section = |key: &'static str| -> Result<&JsonValue, ObsError> {
            value.get(key).ok_or_else(|| schema_err(key, "an object"))
        };
        Ok(BfreeConfig {
            geometry: geometry_from_json(section("geometry")?)?,
            timing: timing_from_json(section("timing")?)?,
            energy: energy_from_json(section("energy")?)?,
            lut_design: lut_design_parse(value.require_str("lut_design")?)?,
            area: area_from_json(section("area")?)?,
            memory: memory_from_json(section("memory")?)?,
            ring: ring_from_json(section("ring")?)?,
            conv_dataflow: dataflow_parse(value.require_str("conv_dataflow")?)?,
            precision: precision_policy_from_json(section("precision")?)?,
        })
    }

    /// Deserializes a configuration from JSON text.
    ///
    /// # Errors
    ///
    /// [`ObsError::Parse`] for malformed JSON, [`ObsError::Schema`] for
    /// a well-formed document with missing or mistyped fields.
    pub fn from_json_str(text: &str) -> Result<BfreeConfig, ObsError> {
        Self::from_json(&JsonValue::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_round_trips() {
        let config = BfreeConfig::paper_default();
        let text = config.to_json_string();
        let back = BfreeConfig::from_json_str(&text).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn non_default_fields_round_trip() {
        let config = BfreeConfig::builder()
            .memory(MemoryTech::hbm())
            .lut_design(LutRowDesign::Standalone)
            .conv_dataflow(ConvDataflow::Im2col)
            .precision(PrecisionPolicy::MixedFourEight {
                keep_int8: vec!["conv1".to_string(), "fc8".to_string()],
            })
            .build()
            .unwrap();
        let back = BfreeConfig::from_json_str(&config.to_json_string()).unwrap();
        assert_eq!(back, config);
        assert_eq!(back.memory.kind, MemoryTechKind::Hbm);
    }

    #[test]
    fn missing_field_is_a_schema_error() {
        let mut doc = match BfreeConfig::paper_default().to_json() {
            JsonValue::Object(map) => map,
            _ => unreachable!(),
        };
        doc.remove("timing");
        let err = BfreeConfig::from_json(&JsonValue::Object(doc)).unwrap_err();
        assert!(matches!(err, ObsError::Schema { .. }));
    }

    #[test]
    fn invalid_geometry_is_a_schema_error() {
        let text = BfreeConfig::paper_default()
            .to_json_string()
            .replace("\"slices\":14", "\"slices\":0");
        let err = BfreeConfig::from_json_str(&text).unwrap_err();
        assert!(matches!(err, ObsError::Schema { .. }));
    }

    #[test]
    fn malformed_text_is_a_parse_error() {
        assert!(matches!(
            BfreeConfig::from_json_str("{not json"),
            Err(ObsError::Parse { .. })
        ));
    }
}
