//! Storage-backed weight placement: the value-level counterpart of
//! [`Mapper`](crate::mapping::Mapper).
//!
//! Where the mapper computes *how many* subarrays a layer needs, this
//! module actually writes quantized weights into
//! [`SubarrayStorage`] rows (skipping the LUT region and the CB row),
//! loads the multiply-LUT image into the LUT rows during a modeled
//! configuration phase, and executes dot products by reading the weight
//! rows back out of storage — so placement, configuration and execution
//! are all exercised against real bytes.

use pim_arch::{ArchError, CacheGeometry, SubarrayStorage};
use pim_bce::{Bce, BceStats, Precision};
use pim_lut::{LutImage, MultLut};

use crate::mapping::Mapping;

/// One replica of a layer's weights, resident in modeled subarrays.
///
/// ```
/// use bfree::storage::WeightStore;
/// use bfree::{BfreeConfig, Mapper};
/// use pim_bce::{BceMode, Precision};
/// use pim_nn::networks;
///
/// let config = BfreeConfig::paper_default();
/// let mapper = Mapper::new(config.geometry.clone());
/// let net = networks::inception_v3();
/// let layer = net.weight_layers().next().unwrap();
/// let mapping = mapper.map_layer(layer, BceMode::Conv, Precision::Int8).unwrap();
/// let weights: Vec<i8> = (0..layer.params()).map(|i| (i % 251) as i8).collect();
/// let store = WeightStore::place(&config.geometry, &mapping, &weights).unwrap();
/// assert_eq!(store.read_back(), weights);
/// ```
#[derive(Debug, Clone)]
pub struct WeightStore {
    subarrays: Vec<SubarrayStorage>,
    weight_len: usize,
    partitions: usize,
    rows_per_partition: usize,
    /// First usable data row (after the LUT region).
    base_row: usize,
}

impl WeightStore {
    /// Places `weights` into freshly allocated subarrays according to a
    /// mapping, loading the multiply-LUT image into every subarray's
    /// LUT rows first (the Fig. 11 configuration phase).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] when the weights exceed
    /// the mapping's capacity.
    pub fn place(
        geom: &CacheGeometry,
        mapping: &Mapping,
        weights: &[i8],
    ) -> Result<Self, ArchError> {
        let row_bytes = geom.row_bytes().get() as usize;
        let base_row = geom.lut_rows_per_partition();
        let partitions = geom.partitions_per_subarray();
        let data_rows_per_partition = geom.rows_per_partition() - base_row;
        // One row of partition 0 is the CB row.
        let usable_rows = partitions * data_rows_per_partition - 1;
        let capacity = mapping.subarrays_per_replica * usable_rows * row_bytes;
        if weights.len() > capacity {
            return Err(ArchError::InvalidParameter {
                parameter: "weights",
                reason: format!(
                    "{} weight bytes exceed the replica capacity of {capacity}",
                    weights.len()
                ),
            });
        }

        let lut_image = LutImage::from_mult_table(&MultLut::new());
        let mut subarrays = Vec::with_capacity(mapping.subarrays_per_replica);
        let mut cursor = 0usize;
        for _ in 0..mapping.subarrays_per_replica {
            let mut sa = SubarrayStorage::new(geom);
            sa.load_lut_image(lut_image.bytes())?;
            // Row iteration order: partition-major, skipping the CB row
            // (partition 0, first data row).
            'fill: for partition in 0..partitions {
                for row in base_row..geom.rows_per_partition() {
                    if partition == 0 && row == base_row {
                        continue; // CB row
                    }
                    if cursor >= weights.len() {
                        break 'fill;
                    }
                    let take = (weights.len() - cursor).min(row_bytes);
                    let mut bytes = vec![0u8; row_bytes];
                    for (i, b) in bytes.iter_mut().enumerate().take(take) {
                        *b = weights[cursor + i] as u8;
                    }
                    sa.write_row(partition, row, &bytes)?;
                    cursor += take;
                }
            }
            subarrays.push(sa);
            if cursor >= weights.len() {
                break;
            }
        }
        Ok(WeightStore {
            subarrays,
            weight_len: weights.len(),
            partitions,
            rows_per_partition: geom.rows_per_partition(),
            base_row,
        })
    }

    /// The resident subarrays.
    pub fn subarrays(&self) -> &[SubarrayStorage] {
        &self.subarrays
    }

    /// Number of weight elements resident.
    pub fn len(&self) -> usize {
        self.weight_len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.weight_len == 0
    }

    /// Reads every weight back in placement order.
    pub fn read_back(&self) -> Vec<i8> {
        let mut out = Vec::with_capacity(self.weight_len);
        for sa in &self.subarrays {
            'drain: for partition in 0..self.partitions {
                for row in self.base_row..self.rows_per_partition {
                    if partition == 0 && row == self.base_row {
                        continue; // CB row
                    }
                    if out.len() >= self.weight_len {
                        break 'drain;
                    }
                    // Invariant: the loop bounds mirror `place`'s write
                    // loop, so every coordinate read here was written.
                    let bytes = sa
                        .read_row(partition, row)
                        .expect("placement wrote only valid coordinates");
                    for &b in bytes.iter().take(self.weight_len - out.len()) {
                        out.push(b as i8);
                    }
                }
            }
            if out.len() >= self.weight_len {
                break;
            }
        }
        out
    }

    /// Executes a dot product with inputs against the resident weights,
    /// reading weight rows from storage through the BCE. Returns the
    /// accumulated result, the BCE stats and the storage row reads.
    ///
    /// # Panics
    ///
    /// Panics when `inputs.len()` differs from the resident weight
    /// count.
    pub fn dot(&self, bce: &Bce, inputs: &[i8], precision: Precision) -> (i32, BceStats, u64) {
        assert_eq!(inputs.len(), self.weight_len, "input length mismatch");
        let reads_before: u64 = self.subarrays.iter().map(|s| s.data_reads()).sum();
        let weights = self.read_back();
        let (acc, stats) = bce.dot_conv(&weights, inputs, precision);
        let reads_after: u64 = self.subarrays.iter().map(|s| s.data_reads()).sum();
        (acc, stats, reads_after - reads_before)
    }

    /// Verifies every subarray's LUT region still decodes to the exact
    /// multiply table (configuration-integrity check; fails if a LUT row
    /// was corrupted).
    ///
    /// # Errors
    ///
    /// Returns the underlying decode error on corruption.
    pub fn verify_lut_integrity(&self) -> Result<(), pim_lut::LutError> {
        for sa in &self.subarrays {
            let image = sa
                .dump_lut_image(49)
                .map_err(|_| pim_lut::LutError::InvalidTable {
                    parameter: "lut region",
                    reason: "unreadable".to_string(),
                })?;
            MultLut::from_image_bytes(&image)?;
        }
        Ok(())
    }

    /// Total data-row writes across the store (placement traffic).
    pub fn total_row_writes(&self) -> u64 {
        self.subarrays.iter().map(|s| s.data_writes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BfreeConfig;
    use crate::mapping::Mapper;
    use pim_bce::BceMode;
    use pim_nn::networks;
    use pim_nn::workload::WorkloadGen;

    fn place_first_inception_layer() -> (WeightStore, Vec<i8>) {
        let config = BfreeConfig::paper_default();
        let mapper = Mapper::new(config.geometry.clone());
        let net = networks::inception_v3();
        let layer = net.weight_layers().next().unwrap();
        let mapping = mapper
            .map_layer(layer, BceMode::Conv, Precision::Int8)
            .unwrap();
        let mut gen = WorkloadGen::new(8);
        let weights = gen
            .random_i8(pim_nn::TensorShape::vector(layer.params() as usize))
            .into_data();
        let store = WeightStore::place(&config.geometry, &mapping, &weights).unwrap();
        (store, weights)
    }

    #[test]
    fn placement_round_trips_bit_exact() {
        let (store, weights) = place_first_inception_layer();
        assert_eq!(store.read_back(), weights);
        assert_eq!(store.len(), weights.len());
    }

    #[test]
    fn placement_row_writes_match_weight_volume() {
        let (store, weights) = place_first_inception_layer();
        assert_eq!(store.total_row_writes(), (weights.len() as u64).div_ceil(8));
    }

    #[test]
    fn storage_backed_dot_matches_direct() {
        let (store, weights) = place_first_inception_layer();
        let mut gen = WorkloadGen::new(9);
        let inputs = gen
            .random_i8(pim_nn::TensorShape::vector(weights.len()))
            .into_data();
        let bce = Bce::new(BceMode::Conv).unwrap();
        let (from_storage, _, row_reads) = store.dot(&bce, &inputs, Precision::Int8);
        let (direct, _) = bce.dot_conv(&weights, &inputs, Precision::Int8);
        assert_eq!(from_storage, direct);
        assert_eq!(row_reads, (weights.len() as u64).div_ceil(8));
    }

    #[test]
    fn lut_integrity_verified_after_configuration() {
        let (store, _) = place_first_inception_layer();
        store.verify_lut_integrity().unwrap();
    }

    #[test]
    fn oversized_layer_rejected() {
        let config = BfreeConfig::paper_default();
        let mapping = Mapping {
            layer: "tiny".to_string(),
            mode: BceMode::Conv,
            precision: Precision::Int8,
            subarrays_per_replica: 1,
            replicas: 1,
            active_subarrays: 1,
            utilization: 1.0 / 4480.0,
        };
        let too_big = vec![0i8; 9000];
        assert!(WeightStore::place(&config.geometry, &mapping, &too_big).is_err());
    }

    #[test]
    fn multi_subarray_layer_spreads_and_round_trips() {
        // VGG conv5_1 needs ~2.4 MB: hundreds of subarrays.
        let config = BfreeConfig::paper_default();
        let mapper = Mapper::new(config.geometry.clone());
        let net = networks::vgg16();
        let layer = net.weight_layers().find(|l| l.name() == "conv5_1").unwrap();
        let mapping = mapper
            .map_layer(layer, BceMode::Conv, Precision::Int8)
            .unwrap();
        let mut gen = WorkloadGen::new(10);
        let weights = gen
            .random_i8(pim_nn::TensorShape::vector(layer.params() as usize))
            .into_data();
        let store = WeightStore::place(&config.geometry, &mapping, &weights).unwrap();
        assert!(store.subarrays().len() > 100);
        assert_eq!(store.read_back(), weights);
    }
}
