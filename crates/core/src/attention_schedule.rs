//! Kernel scheduling for the self-attention layer (paper Fig. 10,
//! §IV-B2).
//!
//! The attention block is a small task DAG: the K, Q and V projections
//! can run in parallel; the score matrix `P = Q K^T` needs K and Q; the
//! softmax `P'` needs P; the context `O = P' V` needs P' and V; the
//! output projection needs O. The paper's scheduler exploits that "V is
//! not required until P' is computed. So, we overlap the computation of
//! V with the computation of P' which only involves scalar and softmax
//! units" — matmul work and softmax work use *different* BCE resources,
//! so they co-schedule.
//!
//! This module builds that DAG from a BERT configuration, assigns each
//! task a duration from the machine's matmul/softmax throughputs, and
//! compares naive serial execution against the paper's overlapped list
//! schedule.

use pim_nn::networks::BertConfig;
use serde::Serialize;

/// The resource class a task occupies (the two engine groups of
/// §IV-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Resource {
    /// The matmul-mode BCEs (projections, score and context matmuls).
    Matmul,
    /// The scalar/softmax LUT units.
    Softmax,
}

/// One task of the attention DAG.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AttentionTask {
    /// Task name (Fig. 10 labels).
    pub name: &'static str,
    /// Resource class the task occupies.
    pub resource: Resource,
    /// Duration in cycles.
    pub cycles: u64,
    /// Names of tasks that must finish first.
    pub deps: Vec<&'static str>,
}

/// The scheduled attention layer.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AttentionSchedule {
    /// The tasks with their computed start times, in schedule order:
    /// `(task, start_cycle, end_cycle)`.
    pub timeline: Vec<(AttentionTask, u64, u64)>,
    /// Total cycles with dependency-aware overlap.
    pub overlapped_cycles: u64,
    /// Total cycles executing every task serially.
    pub serial_cycles: u64,
}

impl AttentionSchedule {
    /// Builds and schedules the Fig. 10 DAG for a BERT configuration,
    /// given the machine's matmul throughput (MACs/cycle) and softmax
    /// throughput (elements/cycle).
    ///
    /// # Panics
    ///
    /// Panics when either throughput is not positive.
    pub fn plan(
        config: &BertConfig,
        matmul_macs_per_cycle: f64,
        softmax_elems_per_cycle: f64,
    ) -> Self {
        assert!(matmul_macs_per_cycle > 0.0 && softmax_elems_per_cycle > 0.0);
        let (s, h) = (config.seq_len as u64, config.hidden as u64);
        let proj = ((s * h * h) as f64 / matmul_macs_per_cycle).ceil() as u64;
        let scores = ((s * s * h) as f64 / matmul_macs_per_cycle).ceil() as u64;
        let softmax = ((s * s) as f64 / softmax_elems_per_cycle).ceil() as u64;
        let tasks = vec![
            AttentionTask {
                name: "K",
                resource: Resource::Matmul,
                cycles: proj,
                deps: vec![],
            },
            AttentionTask {
                name: "Q",
                resource: Resource::Matmul,
                cycles: proj,
                deps: vec![],
            },
            // V is independent, but on the matmul units; the paper
            // schedules it during the softmax.
            AttentionTask {
                name: "V",
                resource: Resource::Matmul,
                cycles: proj,
                deps: vec![],
            },
            AttentionTask {
                name: "P",
                resource: Resource::Matmul,
                cycles: scores,
                deps: vec!["K", "Q"],
            },
            AttentionTask {
                name: "P'",
                resource: Resource::Softmax,
                cycles: softmax,
                deps: vec!["P"],
            },
            AttentionTask {
                name: "O",
                resource: Resource::Matmul,
                cycles: scores,
                deps: vec!["P'", "V"],
            },
            AttentionTask {
                name: "out-proj",
                resource: Resource::Matmul,
                cycles: proj,
                deps: vec!["O"],
            },
        ];
        let serial_cycles = tasks.iter().map(|t| t.cycles).sum();

        // Critical-path list schedule: one engine group per resource
        // class; among ready tasks the one with the longest remaining
        // path to the exit goes first. This is exactly what defers V
        // into the P' window (the paper's §IV-B2 move): P carries a
        // longer tail than V, so the matmul unit runs K, Q, P first and
        // V fills the softmax gap.
        let priority = |name: &str| -> u64 {
            // Longest path to exit, precomputed for the fixed DAG shape.
            match name {
                "K" | "Q" => proj + scores + softmax + scores + proj,
                "P" => scores + softmax + scores + proj,
                "P'" => softmax + scores + proj,
                "V" => scores + proj,
                "O" => scores + proj,
                "out-proj" => proj,
                _ => 0,
            }
        };
        let mut finish: std::collections::HashMap<&str, u64> = Default::default();
        let mut resource_free: std::collections::HashMap<Resource, u64> = Default::default();
        let mut timeline = Vec::new();
        let mut pending: Vec<AttentionTask> = tasks;
        while !pending.is_empty() {
            let mut best: Option<(usize, u64, u64)> = None; // (idx, priority, start)
            for (i, task) in pending.iter().enumerate() {
                if !task.deps.iter().all(|d| finish.contains_key(d)) {
                    continue;
                }
                let deps_done = task.deps.iter().map(|d| finish[d]).max().unwrap_or(0);
                let start = deps_done.max(*resource_free.get(&task.resource).unwrap_or(&0));
                let prio = priority(task.name);
                let better = match best {
                    None => true,
                    Some((_, bp, bs)) => prio > bp || (prio == bp && start < bs),
                };
                if better {
                    best = Some((i, prio, start));
                }
            }
            // Invariant: `tasks()` builds a forward-only dependency list
            // (each task depends only on earlier-constructed ones), so
            // some pending task always has its deps finished.
            let (idx, _, start) = best.expect("the DAG is acyclic so a task is always ready");
            let task = pending.remove(idx);
            let end = start + task.cycles;
            finish.insert(task.name, end);
            resource_free.insert(task.resource, end);
            timeline.push((task, start, end));
        }
        let overlapped_cycles = timeline.iter().map(|&(_, _, e)| e).max().unwrap_or(0);
        AttentionSchedule {
            timeline,
            overlapped_cycles,
            serial_cycles,
        }
    }

    /// Speedup of the overlapped schedule over serial execution.
    pub fn overlap_gain(&self) -> f64 {
        self.serial_cycles as f64 / self.overlapped_cycles as f64
    }

    /// Start and end cycles of a task by name.
    pub fn window(&self, name: &str) -> Option<(u64, u64)> {
        self.timeline
            .iter()
            .find(|(t, _, _)| t.name == name)
            .map(|&(_, s, e)| (s, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> AttentionSchedule {
        // 4480 subarrays x 4 MACs/cycle for matmul. Softmax parallelism
        // is bounded by the score-matrix rows (one reduction chain per
        // row): 128 rows at ~8 LUT cycles per element => 16 elems/cycle.
        AttentionSchedule::plan(&BertConfig::base(), 4.0 * 4480.0, 16.0)
    }

    #[test]
    fn dependencies_are_respected() {
        let s = schedule();
        let (_, k_end) = s.window("K").unwrap();
        let (_, q_end) = s.window("Q").unwrap();
        let (p_start, p_end) = s.window("P").unwrap();
        assert!(p_start >= k_end.max(q_end));
        let (sm_start, sm_end) = s.window("P'").unwrap();
        assert!(sm_start >= p_end);
        let (o_start, _) = s.window("O").unwrap();
        let (_, v_end) = s.window("V").unwrap();
        assert!(o_start >= sm_end.max(v_end));
    }

    #[test]
    fn v_overlaps_with_softmax() {
        // §IV-B2: "we overlap the computation of V with the computation
        // of P'". V runs on the matmul units while the softmax units
        // process P'.
        let s = schedule();
        let (v_start, v_end) = s.window("V").unwrap();
        let (sm_start, sm_end) = s.window("P'").unwrap();
        let overlap = v_end.min(sm_end).saturating_sub(v_start.max(sm_start));
        assert!(
            overlap > 0,
            "V [{v_start},{v_end}) vs P' [{sm_start},{sm_end})"
        );
    }

    #[test]
    fn overlapped_schedule_beats_serial() {
        let s = schedule();
        assert!(s.overlapped_cycles < s.serial_cycles);
        // V (a full projection) hides the whole softmax window.
        assert!(s.overlap_gain() > 1.02, "gain {}", s.overlap_gain());
    }

    #[test]
    fn critical_path_lower_bound_holds() {
        // The schedule can never beat the K/Q -> P -> P' -> O -> out
        // critical path.
        let s = schedule();
        let critical: u64 = ["Q", "P", "P'", "O", "out-proj"]
            .iter()
            .map(|n| {
                let (start, end) = s.window(n).unwrap();
                end - start
            })
            .sum();
        assert!(s.overlapped_cycles >= critical);
    }

    #[test]
    fn bert_large_scales_up() {
        let base = schedule();
        let large = AttentionSchedule::plan(&BertConfig::large(), 4.0 * 4480.0, 16.0);
        assert!(large.overlapped_cycles > base.overlapped_cycles);
        assert!(large.overlap_gain() > 1.0);
    }
}
