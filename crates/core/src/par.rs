//! Deterministic scoped-thread parallelism for sweeps and simulations.
//!
//! The workspace vendors its third-party crates as minimal offline
//! stubs, so rayon is not available; this module is the std-only
//! replacement the experiment sweeps and the layer-pricing loop use.
//! Three properties drive the design (DESIGN.md §9):
//!
//! 1. **Order preservation.** [`par_map`] writes result `i` into slot
//!    `i`, so the output vector is a pure function of the input vector —
//!    never of thread scheduling. Reductions downstream happen in input
//!    order, which keeps floating-point accumulation (and therefore
//!    every CSV and headline table) bit-identical to the serial path.
//! 2. **Bounded, scoped threads.** Workers are `std::thread::scope`
//!    threads that borrow the closure and die before the call returns:
//!    no global pool, no leaked state between calls, panics from any
//!    worker propagate to the caller on join.
//! 3. **Serial fallback.** With one job (or one item) no thread is
//!    spawned and the closure runs on the caller's stack, so
//!    `--jobs 1` *is* the serial path, not a one-worker emulation.
//!
//! Worker count resolution: [`set_max_jobs`] (the `--jobs` CLI flag)
//! wins, then the `BFREE_JOBS` environment variable, then
//! [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use bfree_obs::{Recorder, Subsystem, Unit};

/// Process-wide worker-count override; 0 means "not set, auto-detect".
static MAX_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Cumulative pool counters (process-wide, monotonic). Plain relaxed
/// atomics: the counts are observability data, never control flow, so
/// they cannot perturb scheduling or results.
static PARALLEL_CALLS: AtomicU64 = AtomicU64::new(0);
static SERIAL_CALLS: AtomicU64 = AtomicU64::new(0);
static ITEMS_PROCESSED: AtomicU64 = AtomicU64::new(0);
static WORKERS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the worker pool's cumulative utilization counters.
///
/// The counters are process-wide and monotonic; utilization over a
/// window is the difference of two snapshots (see
/// [`PoolStats::delta_since`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// `par_map` calls that actually spawned workers.
    pub parallel_calls: u64,
    /// Calls that ran serially (one job, one item, or nested).
    pub serial_calls: u64,
    /// Items mapped, across both paths.
    pub items_processed: u64,
    /// Scoped worker threads spawned in total.
    pub workers_spawned: u64,
}

impl PoolStats {
    /// The counters accumulated since `earlier` (saturating, so a
    /// mismatched pair degrades to zeros instead of wrapping).
    pub fn delta_since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            parallel_calls: self.parallel_calls.saturating_sub(earlier.parallel_calls),
            serial_calls: self.serial_calls.saturating_sub(earlier.serial_calls),
            items_processed: self.items_processed.saturating_sub(earlier.items_processed),
            workers_spawned: self.workers_spawned.saturating_sub(earlier.workers_spawned),
        }
    }

    /// Mean items per spawned worker (0 when no workers ran).
    pub fn items_per_worker(&self) -> f64 {
        if self.workers_spawned == 0 {
            0.0
        } else {
            self.items_processed as f64 / self.workers_spawned as f64
        }
    }

    /// Emits these counters as `Subsystem::Par` events
    /// (`pool/parallel_calls`, `pool/serial_calls`, `pool/items`,
    /// `pool/workers`).
    pub fn record_to<R: Recorder>(&self, recorder: &R) {
        if !recorder.is_enabled() {
            return;
        }
        for (name, value) in [
            ("pool/parallel_calls", self.parallel_calls),
            ("pool/serial_calls", self.serial_calls),
            ("pool/items", self.items_processed),
            ("pool/workers", self.workers_spawned),
        ] {
            recorder.counter(Subsystem::Par, name, value as f64, Unit::Count);
        }
    }
}

/// Snapshots the pool's cumulative utilization counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        parallel_calls: PARALLEL_CALLS.load(Ordering::Relaxed),
        serial_calls: SERIAL_CALLS.load(Ordering::Relaxed),
        items_processed: ITEMS_PROCESSED.load(Ordering::Relaxed),
        workers_spawned: WORKERS_SPAWNED.load(Ordering::Relaxed),
    }
}

thread_local! {
    /// True on pool worker threads: nested parallel calls run serially
    /// instead of multiplying thread counts (an outer sweep already
    /// saturates the machine, and the serial path is bit-identical).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Forces the worker count for all subsequent parallel calls
/// (`experiments --jobs N`). Zero restores auto-detection.
pub fn set_max_jobs(jobs: usize) {
    MAX_JOBS.store(jobs, Ordering::SeqCst);
}

/// The worker count parallel calls will use: [`set_max_jobs`] override,
/// else the `BFREE_JOBS` environment variable, else
/// [`std::thread::available_parallelism`] (1 if undetectable).
pub fn max_jobs() -> usize {
    let forced = MAX_JOBS.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = std::env::var("BFREE_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Locks a mutex, recovering the guard if a sibling worker panicked
/// while holding it. The slot protocol below never leaves a slot
/// half-written (the lock covers a single assignment), so a poisoned
/// lock still guards a consistent value.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Maps `f` over `items` on up to [`max_jobs`] worker threads,
/// returning results **in input order**.
///
/// Work is distributed by an atomic index counter (work stealing at
/// item granularity), so uneven item costs balance across workers; the
/// output position of each result is fixed by its input position, so
/// the returned vector is identical to `items.into_iter().map(f)`
/// regardless of scheduling.
///
/// # Panics
///
/// Propagates the first panic raised inside `f` once all workers have
/// been joined.
///
/// ```
/// let squares = bfree::par::par_map(vec![1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_jobs(max_jobs(), items, f)
}

/// [`par_map`] with an explicit worker count (1 runs serially on the
/// caller's stack).
pub fn par_map_jobs<T, U, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n);
    ITEMS_PROCESSED.fetch_add(n as u64, Ordering::Relaxed);
    if jobs <= 1 || IN_WORKER.with(Cell::get) {
        SERIAL_CALLS.fetch_add(1, Ordering::Relaxed);
        return items.into_iter().map(f).collect();
    }
    PARALLEL_CALLS.fetch_add(1, Ordering::Relaxed);
    WORKERS_SPAWNED.fetch_add(jobs as u64, Ordering::Relaxed);

    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                IN_WORKER.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Each index is claimed exactly once, so the input
                    // slot is always still populated for its claimant.
                    let item = match lock_unpoisoned(&inputs[i]).take() {
                        Some(item) => item,
                        None => break,
                    };
                    let result = f(item);
                    *lock_unpoisoned(&outputs[i]) = Some(result);
                }
            });
        }
    });

    outputs
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match lock_unpoisoned(&slot).take() {
            Some(result) => result,
            // Unreachable: the scope joins every worker, and a worker
            // that claimed index i either filled slot i or panicked —
            // and a worker panic propagates out of the scope above.
            None => unreachable!("parallel map slot {i} left unfilled"),
        })
        .collect()
}

/// [`par_map`] with wall-clock worker profiling: times the whole call
/// (`Histogram` event named `name`) and each worker's busy time
/// (`wall/worker_busy` with a `worker=<id>` detail), all under
/// [`Subsystem::Par`].
///
/// Wall-clock values are host time and therefore *nondeterministic*;
/// only the perf sentinel (`experiments perf`) opts in. The
/// deterministic simulation paths keep calling [`par_map`], whose
/// event-free behavior (and goldens) this function leaves untouched —
/// and under a disabled recorder it *is* [`par_map`]: no clock reads,
/// no extra synchronization.
///
/// Results are in input order, exactly as [`par_map`].
pub fn par_map_profiled<T, U, F, R>(recorder: &R, name: &'static str, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
    R: Recorder + Sync,
{
    if !recorder.is_enabled() {
        return par_map(items, f);
    }
    let call_timer = bfree_obs::perf::WallTimer::start(recorder, Subsystem::Par, name);
    let n = items.len();
    let jobs = max_jobs().max(1).min(n.max(1));
    let serial = jobs <= 1 || IN_WORKER.with(Cell::get);
    let workers = if serial { 1 } else { jobs };
    // Per-worker busy nanoseconds and item counts, indexed by worker
    // id; emission below iterates worker ids in order, so the *event
    // stream shape* is deterministic even though the values are wall
    // time.
    let busy_ns: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let items_done: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let timed_f = |worker: usize, item: T| {
        let started = std::time::Instant::now();
        let result = f(item);
        busy_ns[worker].fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        items_done[worker].fetch_add(1, Ordering::Relaxed);
        result
    };
    let results = if serial {
        ITEMS_PROCESSED.fetch_add(n as u64, Ordering::Relaxed);
        SERIAL_CALLS.fetch_add(1, Ordering::Relaxed);
        items.into_iter().map(|item| timed_f(0, item)).collect()
    } else {
        ITEMS_PROCESSED.fetch_add(n as u64, Ordering::Relaxed);
        PARALLEL_CALLS.fetch_add(1, Ordering::Relaxed);
        WORKERS_SPAWNED.fetch_add(jobs as u64, Ordering::Relaxed);
        let inputs: Vec<Mutex<Option<T>>> =
            items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let outputs: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for worker in 0..jobs {
                // Shadow with shared references so the `move` closure
                // captures borrows (plus its own `worker` id), never the
                // containers themselves.
                let (timed_f, inputs, outputs, next) = (&timed_f, &inputs, &outputs, &next);
                scope.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = match lock_unpoisoned(&inputs[i]).take() {
                            Some(item) => item,
                            None => break,
                        };
                        let result = timed_f(worker, item);
                        *lock_unpoisoned(&outputs[i]) = Some(result);
                    }
                });
            }
        });
        outputs
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match lock_unpoisoned(&slot).take() {
                Some(result) => result,
                // Unreachable for the same reason as par_map_jobs: every
                // claimed index is filled or its panic propagated.
                None => unreachable!("profiled parallel map slot {i} left unfilled"),
            })
            .collect()
    };
    for worker in 0..workers {
        recorder.histogram_with(
            Subsystem::Par,
            "wall/worker_busy",
            busy_ns[worker].load(Ordering::Relaxed) as f64,
            Unit::Nanoseconds,
            || {
                format!(
                    "{name} worker={worker} items={}",
                    items_done[worker].load(Ordering::Relaxed)
                )
            },
        );
    }
    drop(call_timer);
    results
}

/// Maps a fallible `f` over `items` in parallel, returning all results
/// in input order or the error of the **lowest-indexed** failing item.
///
/// Error selection is by input position, not completion time, so which
/// error surfaces is as deterministic as the results themselves.
pub fn try_par_map<T, U, E, F>(items: Vec<T>, f: F) -> Result<Vec<U>, E>
where
    T: Send,
    U: Send,
    E: Send,
    F: Fn(T) -> Result<U, E> + Sync,
{
    par_map(items, f).into_iter().collect()
}

/// Runs `f` over `items` in parallel for its side effects (each item
/// observed exactly once; no ordering guarantee *between* items while
/// running, which is why `f` takes items by value).
pub fn par_for_each<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    par_map(items, f);
}

/// Runs two independent closures, in parallel when more than one job is
/// available, and returns both results as `(a(), b())`.
///
/// # Panics
///
/// Propagates a panic from either closure.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if max_jobs() <= 1 || IN_WORKER.with(Cell::get) {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            IN_WORKER.with(|flag| flag.set(true));
            b()
        });
        let ra = a();
        let rb = match handle.join() {
            Ok(rb) => rb,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        (ra, rb)
    })
}

/// A panic caught inside [`try_run_worker_pool`]: which worker raised
/// it (the lowest id when several panicked) and the payload rendered as
/// text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Id of the panicking worker (ties broken toward the lowest id, so
    /// the surfaced error is deterministic for a given panic set).
    pub worker: usize,
    /// The panic payload as a string (`"non-string panic payload"` when
    /// the payload was neither `&str` nor `String`).
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker {} panicked: {}", self.worker, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// Renders a caught panic payload as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The persistent worker-pool runtime: spawns exactly `workers` scoped
/// threads, runs `body(worker_id)` on each, and joins them all before
/// returning. Unlike [`par_map`] there is no work list — each body *is*
/// the worker loop, pulling its own work from whatever shared structure
/// the caller provides (the realtime serving engine feeds a sharded
/// queue) and returning when it decides the pool is drained.
///
/// Workers run with the nested-parallelism guard set, so simulation
/// code called from inside a worker stays serial exactly as it does
/// under [`par_map`]. `workers` is an explicit count (clamped to at
/// least 1), *not* subject to [`max_jobs`]: a long-lived pool is sized
/// by its owner, not by the ambient job cap.
///
/// A panicking worker is caught ([`std::panic::catch_unwind`]) rather
/// than allowed to unwind through the scope: its siblings keep draining
/// and are joined normally, and the panic comes back as a typed
/// [`WorkerPanic`] — the lowest-id panicker when several went down —
/// instead of poisoning whatever the pool shares with the caller.
///
/// # Errors
///
/// [`WorkerPanic`] when any worker body panicked.
pub fn try_run_worker_pool<F>(workers: usize, body: F) -> Result<(), WorkerPanic>
where
    F: Fn(usize) + Sync,
{
    let workers = workers.max(1);
    PARALLEL_CALLS.fetch_add(1, Ordering::Relaxed);
    WORKERS_SPAWNED.fetch_add(workers as u64, Ordering::Relaxed);
    let first_panic: Mutex<Option<WorkerPanic>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let (body, first_panic) = (&body, &first_panic);
            scope.spawn(move || {
                IN_WORKER.with(|flag| flag.set(true));
                // AssertUnwindSafe: the closure is shared by reference
                // across workers either way; a panic leaves no broken
                // invariant here that joining the scope wouldn't also
                // leave, and the caller decides what to do with the
                // typed error.
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(worker)));
                if let Err(payload) = result {
                    let message = panic_message(payload.as_ref());
                    let mut slot = lock_unpoisoned(first_panic);
                    match &*slot {
                        Some(existing) if existing.worker <= worker => {}
                        _ => *slot = Some(WorkerPanic { worker, message }),
                    }
                }
            });
        }
    });
    let caught = lock_unpoisoned(&first_panic).take();
    match caught {
        Some(panic) => Err(panic),
        None => Ok(()),
    }
}

/// [`try_run_worker_pool`] with a worker-local state handoff:
/// `init(worker)` runs *on the worker thread* before its loop starts,
/// and `body(worker, &mut state)` gets exclusive access to the result
/// for the worker's whole lifetime.
///
/// This is the hook single-producer structures need — the live
/// telemetry plane hands each worker exactly one lock-free event ring
/// this way, making the one-producer-per-ring contract structural
/// instead of conventional. The state never crosses threads, so it
/// needs neither `Send` nor `Sync`.
///
/// # Errors
///
/// [`WorkerPanic`] when any worker body (or init) panicked.
pub fn try_run_worker_pool_with<S, I, F>(
    workers: usize,
    init: I,
    body: F,
) -> Result<(), WorkerPanic>
where
    I: Fn(usize) -> S + Sync,
    F: Fn(usize, &mut S) + Sync,
{
    try_run_worker_pool(workers, |worker| {
        let mut state = init(worker);
        body(worker, &mut state);
    })
}

/// [`try_run_worker_pool`] for callers without an error channel.
///
/// # Panics
///
/// Re-raises a worker panic (as a new panic carrying the rendered
/// [`WorkerPanic`]) once all workers have been joined.
pub fn run_worker_pool<F>(workers: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    if let Err(panic) = try_run_worker_pool(workers, body) {
        panic!("{panic}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_pool_runs_every_worker_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let seen = AtomicU64::new(0);
        run_worker_pool(5, |worker| {
            assert!(worker < 5);
            seen.fetch_add(1 << worker, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 0b11111);
        // Clamps to one worker rather than spawning none.
        let ran = AtomicU64::new(0);
        run_worker_pool(0, |worker| {
            assert_eq!(worker, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_pool_with_state_hands_each_worker_its_own() {
        use std::sync::atomic::AtomicU64;
        let folded = AtomicU64::new(0);
        try_run_worker_pool_with(
            4,
            |worker| vec![worker as u64],
            |worker, state: &mut Vec<u64>| {
                // Exclusive, worker-local: no synchronization needed to
                // mutate it.
                state.push(worker as u64 * 10);
                folded.fetch_add(state.iter().sum::<u64>(), Ordering::Relaxed);
            },
        )
        .unwrap();
        // Each worker folds worker + worker*10: sum over 0..4 = 66.
        assert_eq!(folded.load(Ordering::Relaxed), 66);
    }

    #[test]
    fn worker_pool_panics_surface_as_typed_errors_and_spare_siblings() {
        use std::sync::atomic::AtomicU64;
        let finished = AtomicU64::new(0);
        let err = try_run_worker_pool(4, |worker| {
            if worker == 2 {
                panic!("worker {worker} lost its queue");
            }
            finished.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap_err();
        assert_eq!(err.worker, 2);
        assert!(err.message.contains("lost its queue"), "{}", err.message);
        // The panic did not take the siblings down with it.
        assert_eq!(finished.load(Ordering::Relaxed), 3);

        // Several panickers: the lowest id wins deterministically.
        let err = try_run_worker_pool(4, |worker| {
            if worker >= 1 {
                panic!("boom {worker}");
            }
        })
        .unwrap_err();
        assert_eq!(err.worker, 1);

        assert_eq!(try_run_worker_pool(3, |_| {}), Ok(()));
    }

    #[test]
    fn run_worker_pool_reraises_a_worker_panic() {
        let caught = std::panic::catch_unwind(|| {
            run_worker_pool(2, |worker| {
                if worker == 0 {
                    panic!("fatal");
                }
            });
        });
        let payload = caught.unwrap_err();
        let message = payload.downcast_ref::<String>().unwrap();
        assert!(message.contains("worker 0 panicked: fatal"), "{message}");
    }

    #[test]
    fn par_map_preserves_order_at_every_job_count() {
        let input: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 4, 8, 16, 64] {
            let got = par_map_jobs(jobs, input.clone(), |x| x * 3 + 1);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        assert_eq!(par_map_jobs(8, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map_jobs(8, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_matches_serial_map_bit_for_bit_on_floats() {
        // The determinism contract: identical f64 bit patterns whether
        // one thread or many ran the map.
        let input: Vec<f64> = (1..100).map(|i| i as f64 * 0.37).collect();
        let f = |x: f64| (x.sin() * 1e6).exp().ln() / 3.0;
        let serial: Vec<u64> = input.iter().map(|&x| f(x).to_bits()).collect();
        let parallel: Vec<u64> = par_map_jobs(8, input, f)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn try_par_map_reports_lowest_index_error() {
        let items: Vec<u32> = (0..64).collect();
        let result: Result<Vec<u32>, u32> =
            try_par_map(items, |x| if x % 7 == 3 { Err(x) } else { Ok(x) });
        // 3 is the lowest index failing x % 7 == 3, however threads race.
        assert_eq!(result, Err(3));
    }

    #[test]
    fn try_par_map_collects_all_successes() {
        let items: Vec<u32> = (0..64).collect();
        let result: Result<Vec<u32>, ()> = try_par_map(items.clone(), Ok);
        assert_eq!(result, Ok(items));
    }

    #[test]
    fn par_for_each_observes_every_item_once() {
        use std::sync::atomic::AtomicU64;
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        par_for_each((1..=100u64).collect(), |x| {
            sum.fetch_add(x, Ordering::Relaxed);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map_jobs(4, vec![1u32, 2, 3], |x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_parallel_calls_run_serially_and_stay_correct() {
        let outer: Vec<u64> = (0..8).collect();
        let got = par_map_jobs(4, outer, |i| {
            // Inside a worker the nested call must not spawn more
            // threads, and must still return ordered results.
            let inner = par_map_jobs(4, (0..16u64).collect(), move |j| i * 100 + j);
            inner.iter().sum::<u64>()
        });
        let expected: Vec<u64> = (0..8u64)
            .map(|i| (0..16).map(|j| i * 100 + j).sum())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn pool_stats_count_parallel_and_serial_calls() {
        let before = pool_stats();
        let _ = par_map_jobs(4, (0..20u32).collect(), |x| x);
        let _ = par_map_jobs(1, (0..5u32).collect(), |x| x);
        let delta = pool_stats().delta_since(&before);
        // Other tests run concurrently against the same global
        // counters, so assert lower bounds only.
        assert!(delta.parallel_calls >= 1);
        assert!(delta.serial_calls >= 1);
        assert!(delta.items_processed >= 25);
        assert!(delta.workers_spawned >= 4);
        assert!(delta.items_per_worker() > 0.0);
    }

    #[test]
    fn pool_stats_record_to_emits_counters() {
        let rec = bfree_obs::AggRecorder::new();
        let stats = PoolStats {
            parallel_calls: 2,
            serial_calls: 3,
            items_processed: 40,
            workers_spawned: 8,
        };
        stats.record_to(&rec);
        assert_eq!(rec.sum(Subsystem::Par, "pool/items"), 40.0);
        assert_eq!(rec.sum(Subsystem::Par, "pool/workers"), 8.0);
    }

    #[test]
    fn par_map_profiled_preserves_results_and_accounts_every_item() {
        use bfree_obs::critical::detail_field;

        let ring = bfree_obs::RingRecorder::new(256);
        let input: Vec<u64> = (0..64).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 2 + 1).collect();
        let got = par_map_profiled(&ring, "wall/test_map", input, |x| x * 2 + 1);
        assert_eq!(got, expected);
        let events = ring.events();
        let busy: Vec<_> = events
            .iter()
            .filter(|e| e.name == "wall/worker_busy")
            .collect();
        assert!(!busy.is_empty(), "at least one worker must report");
        // Every item is accounted to exactly one worker.
        let items: u64 = busy
            .iter()
            .map(|e| {
                detail_field(e.detail.as_deref().unwrap(), "items")
                    .unwrap()
                    .parse::<u64>()
                    .unwrap()
            })
            .sum();
        assert_eq!(items, 64);
        // The whole call is timed too.
        assert!(events.iter().any(|e| e.name == "wall/test_map"));
    }

    #[test]
    fn par_map_profiled_with_null_recorder_is_plain_par_map() {
        let got = par_map_profiled(&bfree_obs::NullRecorder, "wall/x", vec![1u32, 2, 3], |x| {
            x + 1
        });
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn jobs_env_and_override_resolution() {
        // set_max_jobs wins over everything; 0 restores auto-detect.
        set_max_jobs(3);
        assert_eq!(max_jobs(), 3);
        set_max_jobs(0);
        assert!(max_jobs() >= 1);
    }
}
