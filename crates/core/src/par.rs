//! Deterministic scoped-thread parallelism for sweeps and simulations.
//!
//! The workspace vendors its third-party crates as minimal offline
//! stubs, so rayon is not available; this module is the std-only
//! replacement the experiment sweeps and the layer-pricing loop use.
//! Three properties drive the design (DESIGN.md §9):
//!
//! 1. **Order preservation.** [`par_map`] writes result `i` into slot
//!    `i`, so the output vector is a pure function of the input vector —
//!    never of thread scheduling. Reductions downstream happen in input
//!    order, which keeps floating-point accumulation (and therefore
//!    every CSV and headline table) bit-identical to the serial path.
//! 2. **Bounded, scoped threads.** Workers are `std::thread::scope`
//!    threads that borrow the closure and die before the call returns:
//!    no global pool, no leaked state between calls, panics from any
//!    worker propagate to the caller on join.
//! 3. **Serial fallback.** With one job (or one item) no thread is
//!    spawned and the closure runs on the caller's stack, so
//!    `--jobs 1` *is* the serial path, not a one-worker emulation.
//!
//! Worker count resolution: [`set_max_jobs`] (the `--jobs` CLI flag)
//! wins, then the `BFREE_JOBS` environment variable, then
//! [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker-count override; 0 means "not set, auto-detect".
static MAX_JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on pool worker threads: nested parallel calls run serially
    /// instead of multiplying thread counts (an outer sweep already
    /// saturates the machine, and the serial path is bit-identical).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Forces the worker count for all subsequent parallel calls
/// (`experiments --jobs N`). Zero restores auto-detection.
pub fn set_max_jobs(jobs: usize) {
    MAX_JOBS.store(jobs, Ordering::SeqCst);
}

/// The worker count parallel calls will use: [`set_max_jobs`] override,
/// else the `BFREE_JOBS` environment variable, else
/// [`std::thread::available_parallelism`] (1 if undetectable).
pub fn max_jobs() -> usize {
    let forced = MAX_JOBS.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = std::env::var("BFREE_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Locks a mutex, recovering the guard if a sibling worker panicked
/// while holding it. The slot protocol below never leaves a slot
/// half-written (the lock covers a single assignment), so a poisoned
/// lock still guards a consistent value.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Maps `f` over `items` on up to [`max_jobs`] worker threads,
/// returning results **in input order**.
///
/// Work is distributed by an atomic index counter (work stealing at
/// item granularity), so uneven item costs balance across workers; the
/// output position of each result is fixed by its input position, so
/// the returned vector is identical to `items.into_iter().map(f)`
/// regardless of scheduling.
///
/// # Panics
///
/// Propagates the first panic raised inside `f` once all workers have
/// been joined.
///
/// ```
/// let squares = bfree::par::par_map(vec![1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_jobs(max_jobs(), items, f)
}

/// [`par_map`] with an explicit worker count (1 runs serially on the
/// caller's stack).
pub fn par_map_jobs<T, U, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n);
    if jobs <= 1 || IN_WORKER.with(Cell::get) {
        return items.into_iter().map(f).collect();
    }

    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                IN_WORKER.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Each index is claimed exactly once, so the input
                    // slot is always still populated for its claimant.
                    let item = match lock_unpoisoned(&inputs[i]).take() {
                        Some(item) => item,
                        None => break,
                    };
                    let result = f(item);
                    *lock_unpoisoned(&outputs[i]) = Some(result);
                }
            });
        }
    });

    outputs
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match lock_unpoisoned(&slot).take() {
            Some(result) => result,
            // Unreachable: the scope joins every worker, and a worker
            // that claimed index i either filled slot i or panicked —
            // and a worker panic propagates out of the scope above.
            None => unreachable!("parallel map slot {i} left unfilled"),
        })
        .collect()
}

/// Maps a fallible `f` over `items` in parallel, returning all results
/// in input order or the error of the **lowest-indexed** failing item.
///
/// Error selection is by input position, not completion time, so which
/// error surfaces is as deterministic as the results themselves.
pub fn try_par_map<T, U, E, F>(items: Vec<T>, f: F) -> Result<Vec<U>, E>
where
    T: Send,
    U: Send,
    E: Send,
    F: Fn(T) -> Result<U, E> + Sync,
{
    par_map(items, f).into_iter().collect()
}

/// Runs `f` over `items` in parallel for its side effects (each item
/// observed exactly once; no ordering guarantee *between* items while
/// running, which is why `f` takes items by value).
pub fn par_for_each<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    par_map(items, f);
}

/// Runs two independent closures, in parallel when more than one job is
/// available, and returns both results as `(a(), b())`.
///
/// # Panics
///
/// Propagates a panic from either closure.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if max_jobs() <= 1 || IN_WORKER.with(Cell::get) {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            IN_WORKER.with(|flag| flag.set(true));
            b()
        });
        let ra = a();
        let rb = match handle.join() {
            Ok(rb) => rb,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_at_every_job_count() {
        let input: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 4, 8, 16, 64] {
            let got = par_map_jobs(jobs, input.clone(), |x| x * 3 + 1);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        assert_eq!(par_map_jobs(8, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map_jobs(8, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_matches_serial_map_bit_for_bit_on_floats() {
        // The determinism contract: identical f64 bit patterns whether
        // one thread or many ran the map.
        let input: Vec<f64> = (1..100).map(|i| i as f64 * 0.37).collect();
        let f = |x: f64| (x.sin() * 1e6).exp().ln() / 3.0;
        let serial: Vec<u64> = input.iter().map(|&x| f(x).to_bits()).collect();
        let parallel: Vec<u64> = par_map_jobs(8, input, f)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn try_par_map_reports_lowest_index_error() {
        let items: Vec<u32> = (0..64).collect();
        let result: Result<Vec<u32>, u32> =
            try_par_map(items, |x| if x % 7 == 3 { Err(x) } else { Ok(x) });
        // 3 is the lowest index failing x % 7 == 3, however threads race.
        assert_eq!(result, Err(3));
    }

    #[test]
    fn try_par_map_collects_all_successes() {
        let items: Vec<u32> = (0..64).collect();
        let result: Result<Vec<u32>, ()> = try_par_map(items.clone(), Ok);
        assert_eq!(result, Ok(items));
    }

    #[test]
    fn par_for_each_observes_every_item_once() {
        use std::sync::atomic::AtomicU64;
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        par_for_each((1..=100u64).collect(), |x| {
            sum.fetch_add(x, Ordering::Relaxed);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map_jobs(4, vec![1u32, 2, 3], |x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_parallel_calls_run_serially_and_stay_correct() {
        let outer: Vec<u64> = (0..8).collect();
        let got = par_map_jobs(4, outer, |i| {
            // Inside a worker the nested call must not spawn more
            // threads, and must still return ordered results.
            let inner = par_map_jobs(4, (0..16u64).collect(), move |j| i * 100 + j);
            inner.iter().sum::<u64>()
        });
        let expected: Vec<u64> = (0..8u64)
            .map(|i| (0..16).map(|j| i * 100 + j).sum())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn jobs_env_and_override_resolution() {
        // set_max_jobs wins over everything; 0 restores auto-detect.
        set_max_jobs(3);
        assert_eq!(max_jobs(), 3);
        set_max_jobs(0);
        assert!(max_jobs() >= 1);
    }
}
