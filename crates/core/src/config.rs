//! The BFree machine description.

use pim_arch::{
    AreaModel, CacheGeometry, EnergyParams, LutRowDesign, MemoryTech, RingInterconnect,
    TimingParams,
};
use pim_nn::im2col::Im2colDims;
use pim_nn::{LayerOp, LayerSpec};
use serde::{Deserialize, Serialize};

use crate::precision::PrecisionPolicy;

/// How convolutions are mapped (paper §IV-A/B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ConvDataflow {
    /// Direct convolution in conv mode (Fig. 9(b)): filters across
    /// sub-array columns, channels across rows. 0.5 MAC/cycle per
    /// subarray at int8.
    Direct,
    /// im2col matrix multiplication in matmul mode (Fig. 9(c)):
    /// 4 MACs/cycle per subarray at int8, at the cost of dynamically
    /// unrolled input features.
    Im2col,
    /// The paper's decision rule (§IV): use the matrix formulation when
    /// there is enough cache space for the unrolled intermediates,
    /// otherwise fall back to direct convolution.
    #[default]
    Auto,
}

/// Full configuration of a BFree machine.
///
/// ```
/// use bfree::BfreeConfig;
/// let config = BfreeConfig::paper_default();
/// assert_eq!(config.geometry.total_subarrays(), 4480);
/// config.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BfreeConfig {
    /// Cache geometry (35 MB, 14 slices by default).
    pub geometry: CacheGeometry,
    /// Timing constants.
    pub timing: TimingParams,
    /// Energy constants.
    pub energy: EnergyParams,
    /// LUT-row integration design (decoupled bitline by default).
    pub lut_design: LutRowDesign,
    /// Area model for overhead reports.
    pub area: AreaModel,
    /// Main memory technology.
    pub memory: MemoryTech,
    /// The slice ring interconnect (Fig. 1(a)).
    pub ring: RingInterconnect,
    /// Convolution mapping policy.
    pub conv_dataflow: ConvDataflow,
    /// Per-layer operand precision policy.
    pub precision: PrecisionPolicy,
}

impl BfreeConfig {
    /// Starts a validating builder seeded with [`paper_default`]
    /// values.
    ///
    /// ```
    /// use bfree::{BfreeConfig, ConvDataflow};
    /// use pim_arch::MemoryTech;
    ///
    /// let config = BfreeConfig::builder()
    ///     .memory(MemoryTech::hbm())
    ///     .conv_dataflow(ConvDataflow::Im2col)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(config.conv_dataflow, ConvDataflow::Im2col);
    /// ```
    ///
    /// [`paper_default`]: BfreeConfig::paper_default
    pub fn builder() -> BfreeConfigBuilder {
        BfreeConfigBuilder::new()
    }

    /// The paper's evaluation machine: 35 MB L3, 1.5 GHz subarrays,
    /// decoupled-bitline LUT rows, 20 GB/s DRAM, uniform int8.
    #[doc(alias = "default")]
    pub fn paper_default() -> Self {
        BfreeConfig {
            geometry: CacheGeometry::xeon_l3_35mb(),
            timing: TimingParams::default(),
            energy: EnergyParams::default(),
            lut_design: LutRowDesign::DecoupledBitline,
            area: AreaModel::default(),
            memory: MemoryTech::dram(),
            ring: RingInterconnect::paper_default(),
            conv_dataflow: ConvDataflow::Auto,
            precision: PrecisionPolicy::uniform_int8(),
        }
    }

    /// A single 2.5 MB slice, the iso-area unit of the Eyeriss
    /// comparison (§V-D).
    pub fn single_slice() -> Self {
        BfreeConfig {
            geometry: CacheGeometry::single_slice_2_5mb(),
            ..BfreeConfig::paper_default()
        }
    }

    /// Replaces the memory technology (Fig. 14 sweeps).
    pub fn with_memory(mut self, memory: MemoryTech) -> Self {
        self.memory = memory;
        self
    }

    /// Replaces the cache geometry, keeping the ring's stop count in
    /// sync with the slice count (partial-cache tenancy runs).
    pub fn with_geometry(mut self, geometry: CacheGeometry) -> Self {
        self.ring.slices = geometry.slices();
        self.geometry = geometry;
        self
    }

    /// The same machine restricted to `slices` cache slices: the
    /// configuration a serving-layer tenant simulates against when a
    /// slice-pool allocator grants it a fraction of the cache.
    ///
    /// # Errors
    ///
    /// Returns [`pim_arch::ArchError::InvalidGeometry`] when `slices`
    /// is zero.
    pub fn with_slice_count(self, slices: usize) -> Result<Self, pim_arch::ArchError> {
        let geometry = self.geometry.with_slices(slices)?;
        Ok(self.with_geometry(geometry))
    }

    /// Replaces the convolution dataflow.
    pub fn with_conv_dataflow(mut self, dataflow: ConvDataflow) -> Self {
        self.conv_dataflow = dataflow;
        self
    }

    /// Replaces the precision policy.
    pub fn with_precision(mut self, precision: PrecisionPolicy) -> Self {
        self.precision = precision;
        self
    }

    /// Validates all underlying parameter sets.
    ///
    /// # Errors
    ///
    /// Propagates the first invalid parameter found.
    pub fn validate(&self) -> Result<(), pim_arch::ArchError> {
        self.timing.validate()?;
        self.energy.validate()?;
        self.area.validate()?;
        self.memory.validate()?;
        self.ring.validate()?;
        Ok(())
    }

    /// Whether a layer executes as a matrix multiplication (matmul mode)
    /// under this configuration, given the batch size.
    pub fn uses_matmul(&self, layer: &LayerSpec, batch: usize) -> bool {
        match layer.op() {
            LayerOp::Linear { .. }
            | LayerOp::Lstm { .. }
            | LayerOp::Gru { .. }
            | LayerOp::Attention { .. }
            | LayerOp::FeedForward { .. } => true,
            LayerOp::Conv2d {
                kernel,
                stride,
                padding,
                ..
            } => match self.conv_dataflow {
                ConvDataflow::Direct => false,
                ConvDataflow::Im2col => true,
                ConvDataflow::Auto => {
                    // §IV: matrix formulation only when the unrolled
                    // intermediates fit the cache alongside the weights.
                    let Ok(dims) =
                        Im2colDims::compute(layer.input_shape(), *kernel, *stride, *padding)
                    else {
                        return false;
                    };
                    let unrolled = dims.unrolled_elements() as u64 * batch.max(1) as u64;
                    let weights = layer.weight_bytes(8);
                    let budget = self.geometry.usable_capacity().get();
                    unrolled + weights < budget / 2
                }
            },
            _ => false,
        }
    }
}

impl Default for BfreeConfig {
    fn default() -> Self {
        BfreeConfig::paper_default()
    }
}

/// A validating builder for [`BfreeConfig`], seeded with the paper's
/// defaults.
///
/// Every setter is `#[must_use]` (the builder is by-value), and
/// [`build`](BfreeConfigBuilder::build) runs [`BfreeConfig::validate`]
/// so an invalid machine description is caught at construction, not at
/// simulation time. Struct-literal construction of [`BfreeConfig`]
/// keeps working; the builder is the ergonomic path for sweeps that
/// vary a few fields.
#[derive(Debug, Clone)]
#[must_use = "builders do nothing until .build() is called"]
pub struct BfreeConfigBuilder {
    config: BfreeConfig,
}

impl BfreeConfigBuilder {
    /// A builder seeded with [`BfreeConfig::paper_default`].
    pub fn new() -> Self {
        BfreeConfigBuilder {
            config: BfreeConfig::paper_default(),
        }
    }

    /// Sets the cache geometry, keeping the ring's stop count in sync
    /// with the slice count.
    pub fn geometry(mut self, geometry: CacheGeometry) -> Self {
        self.config.ring.slices = geometry.slices();
        self.config.geometry = geometry;
        self
    }

    /// Sets the timing constants.
    pub fn timing(mut self, timing: TimingParams) -> Self {
        self.config.timing = timing;
        self
    }

    /// Sets the energy constants.
    pub fn energy(mut self, energy: EnergyParams) -> Self {
        self.config.energy = energy;
        self
    }

    /// Sets the LUT-row integration design.
    pub fn lut_design(mut self, lut_design: LutRowDesign) -> Self {
        self.config.lut_design = lut_design;
        self
    }

    /// Sets the area model.
    pub fn area(mut self, area: AreaModel) -> Self {
        self.config.area = area;
        self
    }

    /// Sets the main memory technology.
    pub fn memory(mut self, memory: MemoryTech) -> Self {
        self.config.memory = memory;
        self
    }

    /// Sets the slice ring interconnect.
    pub fn ring(mut self, ring: RingInterconnect) -> Self {
        self.config.ring = ring;
        self
    }

    /// Sets the convolution mapping policy.
    pub fn conv_dataflow(mut self, conv_dataflow: ConvDataflow) -> Self {
        self.config.conv_dataflow = conv_dataflow;
        self
    }

    /// Sets the per-layer precision policy.
    pub fn precision(mut self, precision: PrecisionPolicy) -> Self {
        self.config.precision = precision;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Propagates the first invalid parameter found by
    /// [`BfreeConfig::validate`].
    pub fn build(self) -> Result<BfreeConfig, pim_arch::ArchError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl Default for BfreeConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::MemoryTechKind;
    use pim_nn::networks;

    #[test]
    fn paper_default_validates() {
        BfreeConfig::paper_default().validate().unwrap();
    }

    #[test]
    fn builders_replace_fields() {
        let c = BfreeConfig::paper_default()
            .with_memory(MemoryTech::hbm())
            .with_conv_dataflow(ConvDataflow::Im2col);
        assert_eq!(c.memory.kind, MemoryTechKind::Hbm);
        assert_eq!(c.conv_dataflow, ConvDataflow::Im2col);
    }

    #[test]
    fn matrix_layers_always_matmul() {
        let c = BfreeConfig::paper_default();
        let bert = networks::bert_base();
        for layer in bert.weight_layers() {
            assert!(c.uses_matmul(layer, 1), "{}", layer.name());
        }
    }

    #[test]
    fn direct_policy_keeps_convs_in_conv_mode() {
        let c = BfreeConfig::paper_default().with_conv_dataflow(ConvDataflow::Direct);
        let net = networks::inception_v3();
        let conv = net.weight_layers().next().unwrap();
        assert!(!c.uses_matmul(conv, 1));
    }

    #[test]
    fn auto_policy_unrolls_vgg_at_batch_1() {
        // §V-D: VGG-16's huge filters enable the matmul dataflow.
        let c = BfreeConfig::paper_default();
        let net = networks::vgg16();
        let matmul_layers = net.weight_layers().filter(|l| c.uses_matmul(l, 1)).count();
        assert!(matmul_layers as f64 > 0.8 * net.weight_layer_count() as f64);
    }

    #[test]
    fn builder_defaults_equal_paper_default() {
        let built = BfreeConfig::builder().build().unwrap();
        assert_eq!(built, BfreeConfig::paper_default());
    }

    #[test]
    fn builder_applies_every_setter() {
        let built = BfreeConfig::builder()
            .geometry(CacheGeometry::single_slice_2_5mb())
            .timing(TimingParams::paper_default())
            .energy(EnergyParams::paper_default())
            .lut_design(LutRowDesign::SharedBitline)
            .area(AreaModel::paper_default())
            .memory(MemoryTech::edram())
            .conv_dataflow(ConvDataflow::Direct)
            .precision(PrecisionPolicy::mixed())
            .build()
            .unwrap();
        assert_eq!(built.geometry.slices(), 1);
        assert_eq!(built.ring.slices, 1, "geometry setter syncs the ring");
        assert_eq!(built.lut_design, LutRowDesign::SharedBitline);
        assert_eq!(built.memory.kind, MemoryTechKind::Edram);
        assert_eq!(built.conv_dataflow, ConvDataflow::Direct);
        assert_eq!(built.precision, PrecisionPolicy::mixed());
    }

    #[test]
    fn builder_rejects_invalid_parameters() {
        let bad_timing = TimingParams {
            subarray_clock_ghz: -1.0,
            ..TimingParams::paper_default()
        };
        assert!(BfreeConfig::builder().timing(bad_timing).build().is_err());
    }

    #[test]
    fn single_slice_config_is_smaller() {
        let c = BfreeConfig::single_slice();
        assert_eq!(c.geometry.total_subarrays(), 320);
    }

    #[test]
    fn slice_count_restriction_scales_geometry_and_ring() {
        let c = BfreeConfig::paper_default().with_slice_count(4).unwrap();
        assert_eq!(c.geometry.slices(), 4);
        assert_eq!(c.ring.slices, 4);
        assert_eq!(c.geometry.total_subarrays(), 4 * 320);
        c.validate().unwrap();
        assert!(BfreeConfig::paper_default().with_slice_count(0).is_err());
    }
}
