//! The BFree performance and energy simulator (paper §IV-C, §V).
//!
//! For every layer the simulator prices the execution-flow phases of
//! Fig. 11: weight loading from main memory, systolic input streaming
//! (overlapped with compute — the core advantage over load-then-compute
//! designs, §V-D), the LUT/BCE compute itself, requantization and
//! writeback. Batch size > 1 follows the paper's policy of holding
//! intermediates in next-level memory (Fig. 14), which re-exposes input
//! load time; batch 1 keeps intermediates in SRAM.

use bfree_obs::{Component, NullRecorder, Recorder, Subsystem};
use pim_arch::obs::{phase_event_name, ENERGY_EVENT};
use pim_arch::{
    Bytes, Cycles, Energy, EnergyBreakdown, EnergyComponent, Latency, LatencyBreakdown, Phase,
};
use pim_baselines::{InferenceModel, LayerTiming, RunReport};
use pim_bce::power::{ADD_PJ, ROM_READ_PJ, SHIFT_PJ};
use pim_bce::{BceMode, Precision};
use pim_nn::{LayerOp, LayerSpec, Network};
use pim_systolic::SystolicSchedule;

use crate::config::BfreeConfig;
use crate::controller::ConfigurationPhase;
use crate::mapping::{Mapper, Mapping};

/// Fraction of peak MAC throughput conv mode sustains: the direct
/// dataflow streams dense input waves, so only pipeline bubbles and
/// filter-edge effects are lost.
const CONV_EFFICIENCY: f64 = 0.90;

/// Fraction of peak matmul-mode throughput sustained: tile edge effects
/// (outputs in groups of eight), output-register pressure and the shared
/// sub-bank data bus cost more here. Calibrated against the paper's
/// Fig. 13 iso-area Eyeriss comparison (3.97x with a 12x12 PE array);
/// see DESIGN.md §4.
const MATMUL_EFFICIENCY: f64 = 0.45;

/// Subarray row reads per MAC: in conv mode every 8-byte weight row
/// feeds eight int8 MACs.
const CONV_MACS_PER_ROW_READ: f64 = 8.0;

/// In matmul mode the hardwired ROM and the input registers halve the
/// subarray weight traffic (§III-C1: intermediates live in the
/// reduced-cost rows, weights are broadcast through the switch MUX).
const MATMUL_MACS_PER_ROW_READ: f64 = 16.0;

/// The BFree simulator.
///
/// ```
/// use bfree::{BfreeConfig, BfreeSimulator};
/// use pim_baselines::InferenceModel;
/// use pim_nn::networks;
///
/// let sim = BfreeSimulator::new(BfreeConfig::paper_default());
/// let report = sim.run(&networks::inception_v3(), 1);
/// // Weight loading from DRAM dominates (Fig. 12(b)).
/// assert!(report.latency.fraction(pim_arch::Phase::WeightLoad) > 0.3);
/// ```
#[derive(Debug, Clone)]
pub struct BfreeSimulator {
    config: BfreeConfig,
    mapper: Mapper,
}

impl BfreeSimulator {
    /// Creates a simulator from a configuration.
    pub fn new(config: BfreeConfig) -> Self {
        let mapper = Mapper::new(config.geometry.clone());
        BfreeSimulator { config, mapper }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BfreeConfig {
        &self.config
    }

    /// The mapper in use.
    pub fn mapper(&self) -> &Mapper {
        &self.mapper
    }

    /// The mapping the simulator will use for a layer at a batch size.
    pub fn layer_mapping(&self, layer: &LayerSpec, batch: usize) -> Option<Mapping> {
        if !layer.is_weight_layer() {
            return None;
        }
        let mode = if self.config.uses_matmul(layer, batch) {
            BceMode::MatMul
        } else {
            BceMode::Conv
        };
        Some(self.mapper.map_layer_tiled(layer, mode, Precision::Int8))
    }

    /// BCE dynamic energy per MAC at a mode and precision, from the
    /// datapath event counts (ROM reads, adds, shifts).
    fn per_mac_pj(mode: BceMode, precision: Precision) -> f64 {
        let (rom, adds, shifts) = match (mode, precision) {
            (_, Precision::Int4) => (1.0, 1.0, 1.0),
            (BceMode::Conv, Precision::Int8) => (4.0, 4.0, 2.0),
            (BceMode::MatMul, Precision::Int8) => (4.0, 2.0, 2.0),
            (_, Precision::Int16) => (16.0, 16.0, 4.0),
        };
        rom * ROM_READ_PJ + adds * ADD_PJ + shifts * SHIFT_PJ
    }

    /// Sequential steps a layer must serialize (LSTM time steps; 1 for
    /// everything else).
    fn sequential_steps(layer: &LayerSpec) -> u64 {
        match layer.op() {
            LayerOp::Lstm { .. } | LayerOp::Gru { .. } => layer.input_shape().dims()[0] as u64,
            _ => 1,
        }
    }

    fn clock_ghz(&self) -> f64 {
        self.config.timing.subarray_clock_ghz
    }

    /// Prices one layer in isolation. Layer pricing has no cross-layer
    /// state beyond "is this the first weight layer" (whose inputs come
    /// from DRAM), so the per-layer loop in [`run`] fans out through
    /// [`crate::par::par_map`] and re-reduces contributions in layer
    /// order — keeping every accumulated float bit-identical to the
    /// single-threaded path.
    ///
    /// [`run`]: InferenceModel::run
    fn price_layer(
        &self,
        layer: &LayerSpec,
        batch: u64,
        is_first_weight_layer: bool,
        weight_names: &[&str],
        lut_profile: &pim_arch::LutRowProfile,
    ) -> LayerContribution {
        let geom = &self.config.geometry;
        let energy_params = &self.config.energy;
        let mem = &self.config.memory;
        let grid_rows = geom.subarrays_per_subbank();
        let grid_cols = geom.subbanks_per_slice();

        let mut latency = LatencyBreakdown::new();
        let mut energy = EnergyBreakdown::new();
        let mut layer_latency = Latency::ZERO;
        let precision = self.config.precision.layer_precision(layer, weight_names);
        let bits = precision.bits() as u64;

        if layer.is_weight_layer() {
            let mode = if self.config.uses_matmul(layer, batch as usize) {
                BceMode::MatMul
            } else {
                BceMode::Conv
            };
            let mapping = self.mapper.map_layer_tiled(layer, mode, precision);

            // Phase 1: weights from main memory, once per batch.
            let weight_bytes = Bytes::new(layer.weight_bytes(precision.bits()));
            let t_weight = mem.transfer_time(weight_bytes);
            latency.add(Phase::WeightLoad, t_weight);
            energy.add(EnergyComponent::Dram, mem.transfer_energy(weight_bytes));
            // Distributing weights to the subarrays crosses the
            // slice interconnect once, and the replica broadcast to
            // all slices rides the ring (Fig. 1(a)); the ring's
            // bandwidth exceeds DRAM's, so only its energy shows.
            let lines = weight_bytes.get().div_ceil(64);
            energy.add(
                EnergyComponent::Interconnect,
                energy_params.slice_access() * lines,
            );
            let (_, ring_energy) = self.config.ring.broadcast(weight_bytes);
            energy.add(EnergyComponent::Interconnect, ring_energy);
            layer_latency += t_weight;

            // Phase 2: systolic compute, overlapped with input
            // streaming.
            let macs = layer.macs() * batch;
            let steps = Self::sequential_steps(layer);
            let efficiency = match mode {
                BceMode::Conv => CONV_EFFICIENCY,
                BceMode::MatMul => MATMUL_EFFICIENCY,
            };
            let compute_cycles =
                (macs as f64 / (mapping.macs_per_cycle() * efficiency)).ceil() as u64;
            let fill = SystolicSchedule::new(grid_rows, grid_cols, 1)
                .map(|s| s.fill_steps())
                .unwrap_or(0);
            let t_compute = Cycles::new(compute_cycles + fill * steps).at_ghz(self.clock_ghz());

            // Sequential layers also pay a state-broadcast between
            // steps (LSTM hidden-state feedback over the slice
            // interconnect).
            let t_seq = if steps > 1 {
                // Per-step hidden state (output elements / timesteps)
                // broadcasts over the slice interconnect.
                let state_elements = layer.output_elements() / steps;
                let lines = (state_elements * bits / 8).div_ceil(64).max(1);
                Latency::from_ns((steps * lines) as f64 * self.config.timing.slice_access_ns)
            } else {
                Latency::ZERO
            };

            // Input streaming: from DRAM for the first layer and for
            // batched runs (intermediates live in next-level memory,
            // Fig. 14); from SRAM otherwise.
            let input_bytes = Bytes::new(layer.input_elements() * batch * bits / 8);
            let input_from_dram = is_first_weight_layer || batch > 1;
            let t_input = if input_from_dram {
                energy.add(EnergyComponent::Dram, mem.transfer_energy(input_bytes));
                mem.transfer_time(input_bytes)
            } else {
                Latency::ZERO
            };

            let t_exec = t_compute.max(t_input) + t_seq;
            latency.add(Phase::Compute, t_compute + t_seq);
            latency.add(Phase::InputLoad, t_exec - t_compute - t_seq);
            layer_latency += t_exec;

            // Phase 3: requantization in place (§V-D: gemmlowp scale
            // + bias + shift by all hosting subarrays).
            let outputs = layer.output_elements() * batch;
            let quant_cycles = (outputs * 3).div_ceil(mapping.active_subarrays.max(1) as u64);
            let t_quant = Cycles::new(quant_cycles).at_ghz(self.clock_ghz());
            latency.add(Phase::Quantize, t_quant);
            layer_latency += t_quant;

            // Writeback: to DRAM when batching, to SRAM rows
            // otherwise.
            let output_bytes = Bytes::new(outputs * bits / 8);
            if batch > 1 {
                let t_wb = mem.transfer_time(output_bytes);
                latency.add(Phase::Writeback, t_wb);
                energy.add(EnergyComponent::Dram, mem.transfer_energy(output_bytes));
                layer_latency += t_wb;
            } else {
                let rows = output_bytes.get().div_ceil(geom.row_bytes().get());
                energy.add(
                    EnergyComponent::SubarrayAccess,
                    energy_params.subarray_row_access() * rows,
                );
            }

            // Energy: subarray weight reads, BCE datapath, partials
            // in the reduced-cost rows, router hops, BCE mode power.
            let macs_per_row = match mode {
                BceMode::Conv => CONV_MACS_PER_ROW_READ,
                BceMode::MatMul => MATMUL_MACS_PER_ROW_READ,
            };
            let row_reads = (macs as f64 / macs_per_row).ceil();
            energy.add(
                EnergyComponent::SubarrayAccess,
                energy_params.subarray_row_access() * row_reads,
            );
            energy.add(
                EnergyComponent::Bce,
                Energy::from_pj(Self::per_mac_pj(mode, precision)) * macs,
            );
            // One partial-product park + fetch in the fast rows per
            // 64-MAC reduction window.
            energy.add(
                EnergyComponent::LutAccess,
                lut_profile.read_energy * ((macs / 64) * 2),
            );
            // Partial sums hop between subarrays every reduction
            // window; inputs hop across sub-banks.
            let hops = macs / 64 + layer.input_elements() * batch;
            energy.add(
                EnergyComponent::Router,
                energy_params.router_transfer(1, 1) * (hops * 8),
            );
            // BCE active power over the compute window.
            let mode_mw = match mode {
                BceMode::Conv => energy_params.bce_conv_mode_mw,
                BceMode::MatMul => energy_params.bce_matmul_mode_mw,
            };
            energy.add(
                EnergyComponent::Bce,
                energy_params.bce_power_energy(mode_mw, t_compute, mapping.active_subarrays),
            );
        } else {
            // Non-MAC layers: pooling, activations, normalization,
            // residual adds, softmax — all LUT/BCE element work
            // spread across every subarray holding data.
            let ops = layer.element_ops() * batch;
            if ops > 0 {
                let active = geom.total_subarrays() as u64;
                let cycles = ops.div_ceil(active);
                let t = Cycles::new(cycles).at_ghz(self.clock_ghz());
                latency.add(Phase::Compute, t);
                layer_latency += t;
                let needs_lut = match layer.op() {
                    LayerOp::Activation(act) => act.needs_lut(),
                    LayerOp::Pool {
                        kind: pim_nn::PoolKind::Avg,
                        ..
                    } => true,
                    LayerOp::GlobalAvgPool | LayerOp::LayerNorm => true,
                    _ => false,
                };
                if needs_lut {
                    energy.add(EnergyComponent::LutAccess, lut_profile.read_energy * ops);
                }
                energy.add(EnergyComponent::Bce, Energy::from_pj(ADD_PJ) * ops);
            }
        }

        let timing = if layer.is_weight_layer() || layer.element_ops() > 0 {
            Some(LayerTiming {
                name: layer.name().to_string(),
                latency: layer_latency,
                macs: layer.macs() * batch,
            })
        } else {
            None
        };
        LayerContribution {
            latency,
            energy,
            timing,
        }
    }
}

/// One layer's additive share of the run breakdowns, produced
/// independently per layer and reduced in layer order.
struct LayerContribution {
    latency: LatencyBreakdown,
    energy: EnergyBreakdown,
    timing: Option<LayerTiming>,
}

impl BfreeSimulator {
    /// [`run`](InferenceModel::run) with structured event emission.
    ///
    /// Emits, in deterministic order: the configuration-phase cost, one
    /// span per layer (tagged with mode, precision, and mapping shape),
    /// every layer's phase-latency and component-energy breakdown, the
    /// final ring gather, and the controller static energy. All events
    /// are emitted from the ordered reduction on the calling thread, so
    /// the event stream is identical however many workers priced the
    /// layers — and folding the energy events in an
    /// [`bfree_obs::AggRecorder`] reproduces the report's
    /// [`EnergyBreakdown`] bit for bit.
    ///
    /// `run` itself delegates here with [`NullRecorder`], which
    /// monomorphizes every `is_enabled` guard to `false`: the
    /// uninstrumented path prices layers exactly as before.
    pub fn run_recorded<R: Recorder>(
        &self,
        network: &Network,
        batch: usize,
        recorder: &R,
    ) -> RunReport {
        let batch = batch.max(1) as u64;
        let geom = &self.config.geometry;
        let energy_params = &self.config.energy;
        let lut_profile = self
            .config
            .lut_design
            .profile(&self.config.timing, energy_params);

        let mut latency = LatencyBreakdown::new();
        let mut energy = EnergyBreakdown::new();
        let mut per_layer = Vec::new();

        // Configuration phase (Fig. 11): LUT rows + CBs, once.
        let configuration = ConfigurationPhase::price(geom, &self.config.timing, energy_params);
        latency.add(Phase::Config, configuration.latency);
        energy.add(EnergyComponent::SubarrayAccess, configuration.energy);
        recorder.span(
            Subsystem::Exec,
            "configure",
            0.0,
            configuration.latency.nanoseconds(),
        );
        recorder.counter(
            Subsystem::Exec,
            phase_event_name(Phase::Config),
            configuration.latency.nanoseconds(),
            bfree_obs::Unit::Nanoseconds,
        );
        recorder.energy(
            Subsystem::Exec,
            ENERGY_EVENT,
            Component::Subarray,
            configuration.energy.picojoules(),
        );

        let weight_names: Vec<&str> = network.weight_layers().map(|l| l.name()).collect();
        let first_weight_index = network.layers().iter().position(|l| l.is_weight_layer());

        // Layers price independently (the subarrays hosting one layer
        // never see another layer's state), so fan the loop out and
        // reduce contributions in layer order — the ordered reduction
        // keeps the summed breakdowns bit-identical however many
        // workers ran the pricing.
        let contributions = crate::par::par_map(
            network.layers().iter().enumerate().collect(),
            |(index, layer)| {
                self.price_layer(
                    layer,
                    batch,
                    Some(index) == first_weight_index,
                    &weight_names,
                    &lut_profile,
                )
            },
        );
        // Event emission happens here, on the calling thread, in layer
        // order — never inside the parallel pricing — so the recorded
        // stream is deterministic at every worker count.
        let mut cursor_ns = configuration.latency.nanoseconds();
        for (layer, contribution) in network.layers().iter().zip(contributions) {
            latency.merge(&contribution.latency);
            energy.merge(&contribution.energy);
            if recorder.is_enabled() {
                let dur_ns = contribution.latency.total().nanoseconds();
                if dur_ns > 0.0 {
                    recorder.span_with(Subsystem::Exec, "layer", cursor_ns, dur_ns, || match self
                        .layer_mapping(layer, batch as usize)
                    {
                        Some(mapping) => format!(
                            "{} mode={:?} precision={} subarrays={} replicas={} util={:.3}",
                            layer.name(),
                            mapping.mode,
                            mapping.precision.name(),
                            mapping.active_subarrays,
                            mapping.replicas,
                            mapping.utilization,
                        ),
                        None => layer.name().to_string(),
                    });
                    cursor_ns += dur_ns;
                }
                contribution.latency.record_to(recorder, Subsystem::Exec);
                contribution.energy.record_to(recorder, Subsystem::Exec);
            }
            if let Some(timing) = contribution.timing {
                per_layer.push(timing);
            }
        }

        // Final results gather across the ring to the port slice
        // (Fig. 1(a)); batch runs already paid DRAM writeback instead.
        if batch == 1 {
            if let Some(last) = network.layers().last() {
                let per_slice = Bytes::new(last.output_elements().div_ceil(geom.slices() as u64));
                let (ring_time, ring_energy) = self.config.ring.gather(per_slice);
                latency.add(Phase::Writeback, ring_time);
                energy.add(EnergyComponent::Interconnect, ring_energy);
                recorder.counter(
                    Subsystem::Exec,
                    phase_event_name(Phase::Writeback),
                    ring_time.nanoseconds(),
                    bfree_obs::Unit::Nanoseconds,
                );
                recorder.energy(
                    Subsystem::Exec,
                    ENERGY_EVENT,
                    Component::Interconnect,
                    ring_energy.picojoules(),
                );
            }
        }

        // Controllers run for the whole execution.
        let controller_static = energy_params.controller_static(latency.total(), geom.slices());
        energy.add(EnergyComponent::Controller, controller_static);
        recorder.energy(
            Subsystem::Exec,
            ENERGY_EVENT,
            Component::Controller,
            controller_static.picojoules(),
        );

        // Root span over the whole run: starts with the configure span
        // and outlives every layer, so interval nesting
        // (`bfree_obs::TraceForest`) reconstructs the run as one tree
        // with the configure/layer spans as its children.
        recorder.span_with(
            Subsystem::Exec,
            "run",
            0.0,
            latency.total().nanoseconds(),
            || format!("network={} batch={batch}", network.name()),
        );

        RunReport {
            device: self.device_name().to_string(),
            network: network.name().to_string(),
            batch: batch as usize,
            latency,
            energy,
            per_layer,
        }
    }
}

impl InferenceModel for BfreeSimulator {
    fn device_name(&self) -> &str {
        "BFree"
    }

    fn run(&self, network: &Network, batch: usize) -> RunReport {
        self.run_recorded(network, batch, &NullRecorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConvDataflow;
    use pim_arch::MemoryTech;
    use pim_nn::networks;

    fn sim() -> BfreeSimulator {
        BfreeSimulator::new(BfreeConfig::paper_default())
    }

    #[test]
    fn inception_batch1_runs_in_milliseconds() {
        let report = sim().run(&networks::inception_v3(), 1);
        let ms = report.total_latency().milliseconds();
        assert!((1.0..20.0).contains(&ms), "total {ms} ms");
    }

    #[test]
    fn weight_load_dominates_inception_runtime() {
        // Fig. 12(b): the majority of BFree runtime is DRAM filter
        // loading.
        let report = sim().run(&networks::inception_v3(), 1);
        let frac = report.latency.fraction(Phase::WeightLoad);
        assert!(frac > 0.35, "weight-load fraction {frac}");
    }

    #[test]
    fn dram_dominates_total_energy() {
        // §V-D: "almost 80% of the energy is attributed to the weight
        // loading phase from DRAM".
        let report = sim().run(&networks::inception_v3(), 1);
        let frac = report.energy.fraction(EnergyComponent::Dram);
        assert!((0.6..0.95).contains(&frac), "dram fraction {frac}");
    }

    #[test]
    fn sa_access_and_bce_dominate_cache_energy() {
        // Fig. 12(d): SA access + BCE ~ 85% of the non-DRAM energy.
        let report = sim().run(&networks::inception_v3(), 1);
        let sa = report
            .energy
            .fraction_excluding(EnergyComponent::SubarrayAccess, EnergyComponent::Dram);
        let bce = report
            .energy
            .fraction_excluding(EnergyComponent::Bce, EnergyComponent::Dram);
        assert!(
            (0.6..1.0).contains(&(sa + bce)),
            "sa {sa:.2} + bce {bce:.2} = {:.2}",
            sa + bce
        );
    }

    #[test]
    fn batch_16_amortizes_weight_loads_for_bert() {
        // Table III: BERT-base drops from 5.3 ms to 1.2 ms per inference
        // at batch 16 — weights dominate, so batching amortizes them.
        let s = sim();
        let b1 = s.run(&networks::bert_base(), 1);
        let b16 = s.run(&networks::bert_base(), 16);
        assert!(b16.per_inference_latency() < b1.per_inference_latency());
        // For Inception under 20 GB/s DRAM, batching instead exposes the
        // intermediate-feature traffic (Fig. 14's bottleneck): weight
        // load per inference shrinks, IO time grows.
        let i1 = s.run(&networks::inception_v3(), 1);
        let i16 = s.run(&networks::inception_v3(), 16);
        assert!(i16.latency.get(Phase::WeightLoad) == i1.latency.get(Phase::WeightLoad));
        assert!(
            i16.latency.get(Phase::InputLoad) + i16.latency.get(Phase::Writeback)
                > i1.latency.get(Phase::InputLoad) + i1.latency.get(Phase::Writeback)
        );
    }

    #[test]
    fn batch_16_exposes_input_load_time() {
        // Fig. 14: with batching, intermediates live in next-level
        // memory and input load time appears.
        let s = sim();
        let b16 = s.run(&networks::vgg16(), 16);
        let io = b16.latency.get(Phase::InputLoad) + b16.latency.get(Phase::Writeback);
        assert!(io.milliseconds() > 0.1, "io {}", io);
    }

    #[test]
    fn hbm_shrinks_load_phases() {
        let dram_sim = sim();
        let hbm_sim =
            BfreeSimulator::new(BfreeConfig::paper_default().with_memory(MemoryTech::hbm()));
        let a = dram_sim.run(&networks::vgg16(), 16);
        let b = hbm_sim.run(&networks::vgg16(), 16);
        assert!(b.latency.get(Phase::WeightLoad) < a.latency.get(Phase::WeightLoad) * 0.3);
        assert!(b.total_latency() < a.total_latency());
    }

    #[test]
    fn matmul_dataflow_beats_direct_for_vgg_compute() {
        let direct = BfreeSimulator::new(
            BfreeConfig::paper_default().with_conv_dataflow(ConvDataflow::Direct),
        );
        let matmul = BfreeSimulator::new(
            BfreeConfig::paper_default().with_conv_dataflow(ConvDataflow::Im2col),
        );
        let a = direct.run(&networks::vgg16(), 1);
        let b = matmul.run(&networks::vgg16(), 1);
        assert!(
            b.latency.get(Phase::Compute) < a.latency.get(Phase::Compute) / 3.0,
            "matmul {} vs direct {}",
            b.latency.get(Phase::Compute),
            a.latency.get(Phase::Compute)
        );
    }

    #[test]
    fn mixed_precision_halves_vgg_execution() {
        // Fig. 14: varied bit-precision cuts ~50% of execution versus
        // uniform 8-bit (weight load included).
        let int8 = sim();
        let mixed = BfreeSimulator::new(
            BfreeConfig::paper_default().with_precision(crate::precision::PrecisionPolicy::mixed()),
        );
        let a = int8.run(&networks::vgg16(), 1);
        let b = mixed.run(&networks::vgg16(), 1);
        let ratio = b.total_latency().ratio(a.total_latency());
        assert!((0.35..0.75).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn lstm_pays_sequential_broadcasts() {
        let report = sim().run(&networks::lstm_timit(), 1);
        // 300 sequential steps keep LSTM well above a pure
        // throughput-bound time but still far under a millisecond per
        // step.
        let ms = report.total_latency().milliseconds();
        assert!((0.05..5.0).contains(&ms), "lstm {ms} ms");
    }

    #[test]
    fn per_layer_timings_present_for_figures() {
        let report = sim().run(&networks::inception_v3(), 1);
        assert!(report.per_layer.len() > 90);
        let mixed_5b: Vec<_> = report
            .per_layer
            .iter()
            .filter(|l| l.name.starts_with("Mixed_5b"))
            .collect();
        assert!(!mixed_5b.is_empty());
    }

    #[test]
    fn int16_precision_slows_and_grows_weights() {
        let int8 = sim();
        let int16 = BfreeSimulator::new(
            BfreeConfig::paper_default()
                .with_precision(crate::precision::PrecisionPolicy::Uniform(Precision::Int16)),
        );
        let net = networks::lstm_timit();
        let a = int8.run(&net, 1);
        let b = int16.run(&net, 1);
        // Twice the weight bytes and a quarter of the matmul throughput.
        let weight_ratio = b
            .latency
            .get(Phase::WeightLoad)
            .ratio(a.latency.get(Phase::WeightLoad));
        assert!(
            (weight_ratio - 2.0).abs() < 0.01,
            "weight ratio {weight_ratio}"
        );
        assert!(b.latency.get(Phase::Compute) > a.latency.get(Phase::Compute) * 2.0);
        assert!(b.total_latency() > a.total_latency());
    }

    #[test]
    fn config_phase_is_negligible() {
        let report = sim().run(&networks::inception_v3(), 1);
        assert!(report.latency.fraction(Phase::Config) < 0.01);
    }

    #[test]
    fn agg_recorder_reproduces_report_breakdowns_bit_for_bit() {
        use bfree_obs::AggRecorder;
        use pim_arch::obs::obs_component;

        let s = sim();
        let recorder = AggRecorder::new();
        let report = s.run_recorded(&networks::inception_v3(), 1, &recorder);

        // Events fold in the exact order the report merges breakdowns,
        // so every component sum is bit-identical, not merely close.
        let by_component = recorder.energy_by_component();
        for component in EnergyComponent::ALL {
            let reported = report.energy.get(component).picojoules();
            let folded = by_component
                .get(&obs_component(component))
                .copied()
                .unwrap_or(0.0);
            assert_eq!(
                folded.to_bits(),
                reported.to_bits(),
                "{component:?}: folded {folded} vs reported {reported}"
            );
        }

        // Phase latencies fold back the same way (the gather writeback
        // and config counters join the per-layer phase counters).
        for phase in Phase::ALL {
            let reported = report.latency.get(phase).nanoseconds();
            // `+ 0.0` normalizes the empty-sum identity -0.0 to +0.0.
            let folded = recorder.sum(Subsystem::Exec, phase_event_name(phase)) + 0.0;
            assert_eq!(
                folded.to_bits(),
                reported.to_bits(),
                "{phase:?}: folded {folded} vs reported {reported}"
            );
        }
    }

    #[test]
    fn recorded_run_matches_unrecorded_run_exactly() {
        use bfree_obs::{AggRecorder, NullRecorder};

        let s = sim();
        let net = networks::lstm_timit();
        let plain = s.run(&net, 1);
        let null = s.run_recorded(&net, 1, &NullRecorder);
        let agg = s.run_recorded(&net, 1, &AggRecorder::new());
        for report in [&null, &agg] {
            assert_eq!(
                report.total_latency().nanoseconds().to_bits(),
                plain.total_latency().nanoseconds().to_bits()
            );
            assert_eq!(
                report.energy.total().picojoules().to_bits(),
                plain.energy.total().picojoules().to_bits()
            );
            assert_eq!(report.per_layer.len(), plain.per_layer.len());
        }
    }

    #[test]
    fn recorded_run_reconstructs_as_a_single_trace_tree() {
        use bfree_obs::{RingRecorder, TraceForest};

        let recorder = RingRecorder::new(16384);
        let report = sim().run_recorded(&networks::vgg16(), 1, &recorder);
        let forest = TraceForest::from_ring(&recorder);
        assert!(forest.is_balanced(), "issues: {:?}", forest.issues);
        assert_eq!(forest.roots.len(), 1, "the run span must own the trace");
        let root = &forest.roots[0];
        assert_eq!(root.event.name, "run");
        assert_eq!(
            root.dur_ns().to_bits(),
            report.total_latency().nanoseconds().to_bits(),
            "root span duration is the report total, bit for bit"
        );
        assert_eq!(root.children[0].event.name, "configure");
        assert!(root.children.len() > 10, "layer spans nest under the run");
        // Children tile the run except the final ring gather, so the
        // root keeps a non-negative self time.
        assert!(root.self_ns() >= 0.0, "self {}", root.self_ns());
    }

    #[test]
    fn layer_spans_tile_the_compute_timeline() {
        use bfree_obs::{EventKind, RingRecorder, Subsystem};

        let recorder = RingRecorder::new(16384);
        sim().run_recorded(&networks::vgg16(), 1, &recorder);
        let events = recorder.events();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Span && e.name == "layer")
            .collect();
        assert!(spans.len() > 10, "span count {}", spans.len());
        // Spans are contiguous: each starts where the previous ended.
        for pair in spans.windows(2) {
            let end = pair[0].time_ns + pair[0].dur_ns;
            assert!((end - pair[1].time_ns).abs() < 1e-6);
        }
        // Every span carries a mapping detail for weight layers.
        assert!(spans
            .iter()
            .any(|e| e.detail.as_deref().is_some_and(|d| d.contains("mode="))));
        assert!(events
            .iter()
            .all(|e| e.subsystem == Subsystem::Exec || e.subsystem == Subsystem::Par));
    }
}
