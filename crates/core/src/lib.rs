//! # bfree
//!
//! A from-scratch reproduction of **BFree**, the LUT-based
//! bitline-computing-free processing-in-cache architecture of
//! Ramanathan et al., *"Look-Up Table based Energy Efficient Processing
//! in Cache Support for Neural Network Acceleration"*, MICRO 2020.
//!
//! BFree turns every 8 KB subarray of a last-level SRAM cache into a
//! LUT-based compute engine: two decoupled-bitline rows per partition
//! hold lookup tables, a tiny BFree Compute Engine (BCE) at the subarray
//! edge combines LUT entries with shifts and adds, and lightweight
//! routers stream inputs systolically across sub-banks while partial
//! sums reduce within them. The result is DNN inference inside the cache
//! without the energy of bitline computing.
//!
//! This crate is the top of the workspace: it composes the architectural
//! substrate (`pim-arch`), the functional LUT arithmetic (`pim-lut`),
//! the compute engine (`pim-bce`), the systolic dataflow
//! (`pim-systolic`) and the workloads (`pim-nn`) into
//!
//! * [`BfreeConfig`] — the machine description (geometry, timing,
//!   energy, LUT-row design, memory technology, dataflow policy);
//! * [`Mapper`] — weight distribution and replication across the 4480
//!   subarrays;
//! * [`BfreeSimulator`] — the phase-level performance/energy simulator
//!   that implements [`InferenceModel`] like every baseline, producing
//!   the runtime and energy breakdowns of the paper's Figs. 12-14 and
//!   Table III;
//! * [`functional`] — value-level execution of quantized networks
//!   through the actual LUT datapath, validated against the f32
//!   reference.
//!
//! ```
//! use bfree::{BfreeConfig, BfreeSimulator};
//! use pim_baselines::InferenceModel;
//! use pim_nn::networks;
//!
//! let sim = BfreeSimulator::new(BfreeConfig::paper_default());
//! let report = sim.run(&networks::lstm_timit(), 1);
//! assert!(report.total_latency().milliseconds() < 10.0);
//! ```
//!
//! [`InferenceModel`]: pim_baselines::InferenceModel

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention_schedule;
pub mod config;
pub mod config_json;
pub mod controller;
pub mod exec;
pub mod flow;
pub mod functional;
pub mod interference;
pub mod mapping;
pub mod par;
pub mod precision;
pub mod storage;

pub use attention_schedule::AttentionSchedule;
pub use config::{BfreeConfig, BfreeConfigBuilder, ConvDataflow};
pub use controller::ConfigurationPhase;
pub use exec::BfreeSimulator;
pub use interference::InterferenceModel;
pub use mapping::{Mapper, Mapping};
pub use par::{pool_stats, PoolStats};
pub use precision::PrecisionPolicy;
pub use storage::WeightStore;

/// The structured observability layer, re-exported so downstream code
/// can name recorders without an extra dependency edge.
pub use bfree_obs as obs;

/// The deterministic fault-injection layer, re-exported so downstream
/// code can build [`FaultPlan`](bfree_fault::FaultPlan)s and
/// [`RetryPolicy`](bfree_fault::RetryPolicy)s without an extra
/// dependency edge.
pub use bfree_fault as fault;

/// Convenient glob import for downstream binaries.
///
/// ```
/// use bfree::prelude::*;
///
/// let config = BfreeConfig::builder().build()?;
/// let sim = BfreeSimulator::new(config);
/// let recorder = AggRecorder::new();
/// let report = sim.run_recorded(&networks::lstm_timit(), 1, &recorder);
/// assert!(report.total_latency().milliseconds() < 10.0);
/// # Ok::<(), pim_arch::ArchError>(())
/// ```
pub mod prelude {
    pub use crate::{
        BfreeConfig, BfreeConfigBuilder, BfreeSimulator, ConvDataflow, Mapper, Mapping,
        PrecisionPolicy,
    };
    pub use bfree_fault::{FaultInjector, FaultPlan, RetryPolicy};
    pub use bfree_obs::{AggRecorder, NullRecorder, Recorder, RingRecorder, Subsystem};
    pub use pim_arch::{
        ArchError, CacheGeometry, Energy, EnergyComponent, Latency, MemoryTech, MemoryTechKind,
        Phase, TimingParams,
    };
    pub use pim_baselines::{
        CpuModel, EyerissModel, GpuModel, InferenceModel, NeuralCacheModel, RunReport,
    };
    pub use pim_bce::{BceMode, Precision};
    pub use pim_nn::networks;
}
