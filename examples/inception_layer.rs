//! Mapping study: how one Inception-v3 module lands on the cache, and
//! what the direct-convolution versus im2col-matmul dataflows cost.
//!
//! Run with: `cargo run --example inception_layer`

use bfree::prelude::*;
use pim_nn::im2col::Im2colDims;
use pim_nn::LayerOp;

fn main() {
    let net = networks::inception_v3();
    let mapper = Mapper::new(CacheGeometry::xeon_l3_35mb());

    println!("Mapping of the Mixed_5b module (paper Fig. 9):");
    println!(
        "{:<22} {:>10} {:>8} {:>9} {:>8} {:>10}",
        "layer", "weights", "sub/rep", "replicas", "active", "util"
    );
    for layer in net
        .weight_layers()
        .filter(|l| l.name().starts_with("Mixed_5b"))
    {
        let mapping = mapper
            .map_layer(layer, BceMode::Conv, Precision::Int8)
            .expect("inception layers fit the cache");
        println!(
            "{:<22} {:>9}B {:>8} {:>9} {:>8} {:>9.1}%",
            mapping.layer,
            layer.weight_bytes(8),
            mapping.subarrays_per_replica,
            mapping.replicas,
            mapping.active_subarrays,
            mapping.utilization * 100.0
        );
    }

    println!("\nim2col storage blow-up per conv (paper Fig. 9(c) redundancy):");
    for layer in net.weight_layers().take(6) {
        if let LayerOp::Conv2d {
            kernel,
            stride,
            padding,
            ..
        } = *layer.op()
        {
            let dims = Im2colDims::compute(layer.input_shape(), kernel, stride, padding)
                .expect("valid conv");
            println!(
                "  {:<18} {}x{} kernel -> unrolled {:>9} elements ({:.2}x input)",
                layer.name(),
                kernel.0,
                kernel.1,
                dims.unrolled_elements(),
                dims.redundancy()
            );
        }
    }

    println!("\nWhole-network dataflow comparison, batch 1:");
    for (label, dataflow) in [
        ("direct conv (0.5 MAC/cyc)", ConvDataflow::Direct),
        ("im2col matmul (4 MAC/cyc)", ConvDataflow::Im2col),
        ("auto (paper policy)", ConvDataflow::Auto),
    ] {
        let sim = BfreeSimulator::new(BfreeConfig::paper_default().with_conv_dataflow(dataflow));
        let report = sim.run(&net, 1);
        println!(
            "  {:<28} total {:>12}  compute {:>12}",
            label,
            report.total_latency().to_string(),
            report.latency.get(Phase::Compute).to_string()
        );
    }
}
