//! Multi-tenant serving: LSTM-TIMIT and BERT-base sharing one BFree
//! cache, under mixed Poisson traffic, with tail-latency percentiles
//! per tenant.
//!
//! Run with: `cargo run -p bfree-serve --release --example serving_mixed_traffic`

use bfree_serve::{OpenLoopDriver, Outcome, ServeConfig, ServingSim, TenantSpec};
use pim_nn::request::NetworkKind;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let tenants = vec![
        TenantSpec::new("lstm-timit", NetworkKind::LstmTimit),
        TenantSpec::new("bert-base", NetworkKind::BertBase),
    ];
    let config = ServeConfig {
        max_batch: 8,
        batch_window_ns: 200_000,
        ..ServeConfig::default()
    };
    let mut sim = ServingSim::new(config, tenants).unwrap();
    for (i, tenant) in sim.tenants().iter().enumerate() {
        println!(
            "tenant {i} {:<12} demand {:>2} slices ({})",
            tenant.name(),
            tenant.demand_slices(),
            tenant.spec().network.label(),
        );
    }

    // One virtual second of Poisson traffic: chatty LSTM, occasional BERT.
    let submitted = OpenLoopDriver::new(42, vec![3_000.0, 40.0]).drive(&mut sim, 1_000_000_000);
    println!("\nsubmitted {submitted} requests over 1 s of virtual time");

    let telemetry = sim.run_to_idle();
    let summary = telemetry.summary();
    println!(
        "completed {}  rejected {}  throughput {:.0} req/s  pool util {:.1}%",
        summary.completed,
        summary.rejected,
        summary.throughput_rps,
        summary.pool_utilization * 100.0
    );
    println!(
        "energy/request {}   conventional-traffic slowdown {:.4}x",
        summary.energy_per_request, summary.avg_conventional_slowdown
    );

    println!(
        "\n{:<12} {:>9} {:>12} {:>12} {:>12}",
        "tenant", "requests", "p50", "p95", "p99"
    );
    for (i, tenant) in sim.tenants().iter().enumerate() {
        let mut lat: Vec<u64> = sim
            .telemetry()
            .records()
            .iter()
            .filter(|r| r.tenant == i && r.outcome == Outcome::Completed)
            .map(|r| r.latency_ns())
            .collect();
        lat.sort_unstable();
        println!(
            "{:<12} {:>9} {:>9.2} ms {:>9.2} ms {:>9.2} ms",
            tenant.name(),
            lat.len(),
            percentile(&lat, 50.0) as f64 * 1e-6,
            percentile(&lat, 95.0) as f64 * 1e-6,
            percentile(&lat, 99.0) as f64 * 1e-6,
        );
    }
}
