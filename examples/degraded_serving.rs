//! Graceful degradation under a slice failure: LSTM-TIMIT and BERT-base
//! share one BFree cache while the fault injector kills slices mid-run.
//! The pool quarantines and remaps around them, transient errors retry
//! with backoff, low-priority traffic sheds when healthy capacity dips,
//! and recovery restores the full pool — with the failure timeline read
//! back from the observability event stream and the p99 split into
//! healthy vs degraded windows.
//!
//! Run with: `cargo run -p bfree-serve --release --example degraded_serving`

use bfree_fault::{FaultInjector, FaultPlan, RetryPolicy};
use bfree_obs::{EventKind, RingRecorder, Subsystem};
use bfree_serve::{OpenLoopDriver, Outcome, SchedPolicy, ServeConfig, ServingSim, TenantSpec};
use pim_nn::request::NetworkKind;

const HORIZON_NS: u64 = 400_000_000;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let tenants = vec![
        TenantSpec::new("lstm-timit", NetworkKind::LstmTimit).with_priority(0),
        TenantSpec::new("bert-base", NetworkKind::BertBase).with_priority(5),
    ];
    let config = ServeConfig::builder()
        .policy(SchedPolicy::Priority)
        .max_batch(8)
        .batch_window_ns(100_000)
        .queue_capacity(512)
        .timeout_ns(Some(50_000_000))
        .retry(RetryPolicy::standard())
        .shed_watermark(0.8)
        .build()
        .unwrap();

    // A hostile but survivable plan: ~30% of slices fail somewhere in
    // the horizon and come back 80 ms later; 2% of service attempts hit
    // a transient error and get retried.
    let plan = FaultPlan::none()
        .with_slice_failures(0.3, HORIZON_NS, Some(80_000_000))
        .with_transient_errors(0.02);
    let slices = config.base.geometry.slices();
    let injector = FaultInjector::new(plan, 42, slices, 0).unwrap();
    let failures = injector.slice_failures().to_vec();

    let mut sim = ServingSim::builder(config, tenants)
        .recorder(RingRecorder::new(65_536))
        .injector(injector)
        .build()
        .unwrap();
    println!("pool: {slices} slices; scheduled failures:");
    for f in &failures {
        println!(
            "  slice {:>2} fails at {:>6.1} ms, recovers at {:>6.1} ms",
            f.slice,
            f.fail_at_ns as f64 * 1e-6,
            f.recover_at_ns.unwrap() as f64 * 1e-6,
        );
    }

    let submitted = OpenLoopDriver::new(0xBF_EE, vec![2_000.0, 50.0]).drive(&mut sim, HORIZON_NS);
    let summary = sim.run_to_idle().summary();
    println!(
        "\nsubmitted {submitted} requests over {} ms of virtual time",
        HORIZON_NS / 1_000_000
    );
    println!(
        "completed {}  rejected {}  retries {}  shed {}  availability {:.1}%  goodput {:.0} req/s",
        summary.completed,
        summary.rejected,
        summary.retries,
        summary.shed,
        summary.availability * 100.0,
        summary.goodput_rps,
    );
    assert!(
        sim.health().available_slices() == slices,
        "every quarantined slice must have recovered by idle"
    );

    // The failure timeline, read back from the obs event stream.
    println!("\nfault timeline (from the Recorder):");
    let events = sim.recorder().events();
    for e in events.iter().filter(|e| {
        e.subsystem == Subsystem::Fault
            && matches!(e.kind, EventKind::Instant)
            && (e.name == "fault/slice_failed" || e.name == "fault/slice_recovered")
    }) {
        println!(
            "  {:>7.1} ms  {:<22} {}",
            e.time_ns * 1e-6,
            e.name,
            e.detail.as_deref().unwrap_or(""),
        );
    }
    let count = |name: &str| events.iter().filter(|e| e.name == name).count();
    println!(
        "  plus {} quarantine remaps, {} retries, {} sheds, {} transient faults",
        count("pool/quarantine"),
        count("request/retry"),
        count("request/shed"),
        count("fault/injected"),
    );

    // p99 before/after: completions inside any failure window see the
    // shrunken pool, the rest see the full one.
    let degraded = |t: u64| {
        failures
            .iter()
            .any(|f| t >= f.fail_at_ns && t < f.recover_at_ns.unwrap_or(u64::MAX))
    };
    let (mut healthy, mut shrunk): (Vec<u64>, Vec<u64>) = (Vec::new(), Vec::new());
    for r in sim.telemetry().records() {
        if r.outcome == Outcome::Completed {
            if degraded(r.complete_ns) {
                shrunk.push(r.latency_ns());
            } else {
                healthy.push(r.latency_ns());
            }
        }
    }
    healthy.sort_unstable();
    shrunk.sort_unstable();
    println!(
        "\np99 with the full pool:     {:>7.2} ms  ({} completions)",
        percentile(&healthy, 99.0) as f64 * 1e-6,
        healthy.len(),
    );
    println!(
        "p99 with slices quarantined: {:>6.2} ms  ({} completions)",
        percentile(&shrunk, 99.0) as f64 * 1e-6,
        shrunk.len(),
    );
}
