//! The Fig. 14 study: VGG-16 latency under three memory technologies
//! (DRAM 20 GB/s, eDRAM 64 GB/s, HBM 100 GB/s), batch sizes 1 and 16,
//! uniform int8 versus learned mixed 4/8-bit precision.
//!
//! Run with: `cargo run --example mixed_precision`

use bfree::prelude::*;

fn main() {
    let net = networks::vgg16();
    println!("VGG-16 per-inference latency (paper Fig. 14):\n");
    println!(
        "{:<8} {:<6} {:>14} {:>14} {:>10}",
        "memory", "batch", "int8", "mixed 4/8", "saving"
    );

    for kind in MemoryTechKind::ALL {
        for batch in [1usize, 16] {
            let base = BfreeConfig::paper_default().with_memory(MemoryTech::from_kind(kind));
            let int8 = BfreeSimulator::new(base.clone()).run(&net, batch);
            let mixed =
                BfreeSimulator::new(base.with_precision(PrecisionPolicy::mixed())).run(&net, batch);
            let saving = 1.0
                - mixed
                    .per_inference_latency()
                    .ratio(int8.per_inference_latency());
            println!(
                "{:<8} {:<6} {:>14} {:>14} {:>9.0}%",
                kind.name(),
                batch,
                int8.per_inference_latency().to_string(),
                mixed.per_inference_latency().to_string(),
                saving * 100.0
            );
        }
    }

    // Phase breakdown for the DRAM, batch-16 point — the bandwidth-bound
    // corner the paper highlights.
    let report = BfreeSimulator::new(BfreeConfig::paper_default()).run(&net, 16);
    println!("\nDRAM batch-16 phase breakdown (whole batch):");
    for (phase, latency) in report.latency.iter() {
        println!(
            "  {:>12}: {:>12}  ({:.1}%)",
            phase.label(),
            latency.to_string(),
            report.latency.fraction(phase) * 100.0
        );
    }
    println!(
        "\nInput load exceeds compute under DRAM at batch 16: {}",
        report.latency.get(Phase::InputLoad) + report.latency.get(Phase::Writeback)
            > report.latency.get(Phase::Compute)
    );
}
