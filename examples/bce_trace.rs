//! Reproduces the paper's Fig. 6 walkthrough: a matrix-vector product
//! traced cycle by cycle through the BCE pipeline, showing when the
//! operand analyzer resolves a step with shifts and when it fetches the
//! odd x odd product from the subarray LUT.
//!
//! Run with: `cargo run --example bce_trace`

use pim_bce::{BceTrace, ConfigBlock, PimOp, Precision};

fn main() {
    // The Fig. 6 operands: M1 row [4, 6, 7] times M2 column [5, 7, 9].
    let weights = [4u8, 6, 7];
    let inputs = [5u8, 7, 9];
    let cb = ConfigBlock::new(
        PimOp::Conv {
            length: weights.len() as u32,
        },
        Precision::Int4,
        1,
        0,
        0,
    );

    let trace = BceTrace::dot_product(&cb, &weights, &inputs);
    println!("Fig. 6: [4, 6, 7] . [5, 7, 9] through the BCE pipeline\n");
    print!("{}", trace.render());
    println!(
        "\n{} cycles total, {} LUT access(es) — the analyzer resolved the \
         power-of-two and two-power-sum operands with shifts alone.",
        trace.cycles(),
        trace.lut_accesses()
    );

    // A longer dot product to show the steady-state pipeline.
    let w: Vec<u8> = vec![15, 8, 0, 3, 12, 1, 9, 6];
    let x: Vec<u8> = vec![11, 5, 7, 13, 2, 15, 4, 10];
    let cb = ConfigBlock::new(PimOp::Conv { length: 8 }, Precision::Int4, 1, 0, 0);
    let trace = BceTrace::dot_product(&cb, &w, &x);
    println!("\nAn 8-element dot product:\n");
    print!("{}", trace.render());
}
