//! Quickstart: simulate Inception-v3 inference on BFree and on the
//! Neural Cache baseline, and show the LUT datapath computing a real
//! multiplication.
//!
//! Run with: `cargo run --example quickstart`

use bfree::prelude::*;
use pim_lut::LutMultiplier;

fn main() {
    // 1. The functional heart: exact multiplication from a 49-entry LUT.
    let mul = LutMultiplier::new();
    let (product, cost) = mul.mul_u8(173, 219);
    println!(
        "LUT multiply: 173 x 219 = {product} (native: {})",
        173u32 * 219
    );
    println!(
        "  events: {} subarray-LUT reads, {} shifts, {} adds, {} cycles",
        cost.lut_reads, cost.shifts, cost.adds, cost.cycles
    );

    // 2. The machine: the paper's 35 MB, 14-slice Xeon-class L3.
    let config = BfreeConfig::paper_default();
    println!(
        "\nBFree machine: {} subarrays, {} usable for weights",
        config.geometry.total_subarrays(),
        config.geometry.usable_capacity()
    );

    // 3. Simulate Inception-v3, batch 1, on BFree and on Neural Cache.
    let bfree = BfreeSimulator::new(config);
    let neural_cache = NeuralCacheModel::paper_default();
    let net = networks::inception_v3();

    let ours = bfree.run(&net, 1);
    let theirs = neural_cache.run(&net, 1);

    println!("\nInception-v3, batch 1:");
    println!("  BFree       : {}", ours.latency);
    println!("  Neural Cache: {}", theirs.latency);
    println!(
        "\n  speedup: {:.2}x   energy gain: {:.2}x   (paper: 1.72x / 3.14x)",
        ours.speedup_over(&theirs),
        ours.energy_gain_over(&theirs)
    );

    println!("\nBFree energy by component:");
    for (component, energy) in ours.energy.iter() {
        println!(
            "  {:>12}: {:>12}  ({:.1}%)",
            component.label(),
            energy.to_string(),
            ours.energy.fraction(component) * 100.0
        );
    }
}
