//! Transformer support: run a real self-attention block through the LUT
//! datapath (values), then simulate BERT-base against the calibrated CPU
//! and GPU models (paper Fig. 10 and Table III).
//!
//! Run with: `cargo run --example bert_attention`

use bfree::functional::FunctionalPipeline;
use bfree::prelude::*;
use pim_nn::reference::{self, AttentionWeights};
use pim_nn::tensor::{Tensor, TensorShape};
use pim_nn::workload::WorkloadGen;

fn main() {
    // 1. Values: a 2-head self-attention block over an 8 x 32 sequence,
    //    with the Q/K/V/output projections executed as BCE matmul tiles
    //    and softmax through the exp + division LUTs.
    let (seq, hidden, heads) = (8, 32, 2);
    let mut gen = WorkloadGen::new(2020);
    let input = gen.uniform_f32(TensorShape::new(vec![seq, hidden]), -1.0, 1.0);
    let weights = AttentionWeights {
        w_q: gen.uniform_f32(TensorShape::new(vec![hidden, hidden]), -0.3, 0.3),
        w_k: gen.uniform_f32(TensorShape::new(vec![hidden, hidden]), -0.3, 0.3),
        w_v: gen.uniform_f32(TensorShape::new(vec![hidden, hidden]), -0.3, 0.3),
        w_o: gen.uniform_f32(TensorShape::new(vec![hidden, hidden]), -0.3, 0.3),
    };

    let pipeline = FunctionalPipeline::new().expect("default tables are valid");
    let lut_out = attention_via_lut(&pipeline, &input, &weights, heads);
    let exact = reference::self_attention(&input, &weights, heads).expect("shapes valid");

    let max_err = lut_out
        .data()
        .iter()
        .zip(exact.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("self-attention ({seq}x{hidden}, {heads} heads) through the LUT datapath:");
    println!("  max |lut - f32| = {max_err:.4} (quantized int8 projections)");
    println!("  BCE multiply-ROM reads: {}", pipeline.bce().rom_reads());

    // 2. Cost: BERT-base per Table III.
    let bfree = BfreeSimulator::new(BfreeConfig::paper_default());
    let cpu = CpuModel::paper_xeon();
    let gpu = GpuModel::paper_titan_v();
    let net = networks::bert_base();

    println!("\nBERT-base (seq 128), per-inference:");
    println!("{:<22} {:>12} {:>12}", "device", "batch 1", "batch 16");
    for model in [&bfree as &dyn InferenceModel, &cpu, &gpu] {
        let b1 = model.run(&net, 1);
        let b16 = model.run(&net, 16);
        println!(
            "{:<22} {:>12} {:>12}",
            model.device_name(),
            b1.per_inference_latency().to_string(),
            b16.per_inference_latency().to_string()
        );
    }
    let ours = bfree.run(&net, 16);
    println!(
        "\nBFree vs CPU: {:.0}x faster, {:.0}x less energy (paper: 101x / 91x)",
        ours.speedup_over(&cpu.run(&net, 16)),
        ours.energy_gain_over(&cpu.run(&net, 16))
    );
    println!(
        "BFree vs GPU: {:.1}x faster, {:.1}x less energy (paper: 3x / 11x)",
        ours.speedup_over(&gpu.run(&net, 16)),
        ours.energy_gain_over(&gpu.run(&net, 16))
    );
}

/// Multi-head attention with all four projections through the quantized
/// LUT matmul and softmax through the LUT softmax engine.
fn attention_via_lut(
    pipeline: &FunctionalPipeline,
    input: &Tensor<f32>,
    weights: &AttentionWeights,
    heads: usize,
) -> Tensor<f32> {
    let dims = input.shape().dims();
    let (seq, hidden) = (dims[0], dims[1]);
    let head_dim = hidden / heads;
    let q = pipeline.matmul(input, &weights.w_q).expect("shapes valid");
    let k = pipeline.matmul(input, &weights.w_k).expect("shapes valid");
    let v = pipeline.matmul(input, &weights.w_v).expect("shapes valid");

    let mut context = Tensor::zeros(TensorShape::new(vec![seq, hidden]));
    let scale = 1.0 / (head_dim as f32).sqrt();
    for head in 0..heads {
        let base = head * head_dim;
        for i in 0..seq {
            let scores: Vec<f32> = (0..seq)
                .map(|j| {
                    (0..head_dim)
                        .map(|d| q.data()[i * hidden + base + d] * k.data()[j * hidden + base + d])
                        .sum::<f32>()
                        * scale
                })
                .collect();
            let probs = pipeline.softmax(&scores).expect("non-empty scores");
            for d in 0..head_dim {
                let acc: f64 = (0..seq)
                    .map(|j| probs[j] * v.data()[j * hidden + base + d] as f64)
                    .sum();
                context.data_mut()[i * hidden + base + d] = acc as f32;
            }
        }
    }
    pipeline
        .matmul(&context, &weights.w_o)
        .expect("shapes valid")
}
