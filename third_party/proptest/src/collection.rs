//! Collection strategies (`proptest::collection::vec`).

use core::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.len.start + 1 >= self.len.end {
            self.len.start
        } else {
            rng.usize_in(self.len.start, self.len.end)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A vector of `element` samples with length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let strat = vec(0u8..10, 2..6);
        let mut rng = TestRng::from_name("vec_len");
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn empty_length_range_allowed() {
        let strat = vec(0u8..10, 0..1);
        let mut rng = TestRng::from_name("vec_empty");
        assert!(strat.sample(&mut rng).is_empty());
    }
}
