//! Value-generation strategies: ranges, tuples, `Just`, `prop_map`,
//! `prop_oneof` — the combinators this workspace's properties use.

use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Something that can generate values for a property.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Boxes a strategy for [`OneOf`]; a plain function (rather than an
/// `as` cast at the use site) so integer-literal inference unifies the
/// value types across `prop_oneof!` arms.
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    choices: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Wraps a non-empty choice list.
    ///
    /// # Panics
    ///
    /// Panics when `choices` is empty.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !choices.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        OneOf { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.choices.len());
        self.choices[idx].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..500 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-4.0f64..4.0).sample(&mut rng);
            assert!((-4.0..4.0).contains(&f));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (1usize..4, 10u64..20).prop_map(|(a, b)| a as u64 + b);
        let mut rng = TestRng::from_name("compose");
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((11..24).contains(&v));
        }
    }

    #[test]
    fn just_clones_value() {
        let mut rng = TestRng::from_name("just");
        assert_eq!(Just(9usize).sample(&mut rng), 9);
    }
}
