//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors this minimal property-testing harness implementing the subset
//! of the proptest API its tests use: the [`proptest!`] macro (both
//! `arg in strategy` and `arg: Type` forms), range / tuple / `Just` /
//! `prop_oneof!` / `prop_map` / `any::<T>()` / `collection::vec`
//! strategies, and the `prop_assume!` / `prop_assert*!` macros.
//!
//! Unlike the real crate there is no shrinking: a failing case panics
//! with the stringified assertion. Case generation is deterministic — the
//! RNG is seeded from the test name, so failures reproduce exactly across
//! runs and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every proptest-using module starts with.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests.
///
/// Each function runs [`test_runner::DEFAULT_CASES`] random cases; the
/// body is wrapped so `prop_assume!` rejects a case (resampled, not a
/// failure) and `prop_assert*!` failures panic with context.
#[macro_export]
macro_rules! proptest {
    () => {};
    // `arg in strategy` form.
    ($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = $crate::test_runner::DEFAULT_CASES * 16;
            while accepted < $crate::test_runner::DEFAULT_CASES && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed: {}", stringify!($name), msg);
                    }
                }
            }
            assert!(
                accepted >= $crate::test_runner::DEFAULT_CASES / 4,
                "property {} rejected too many cases ({} accepted of {} attempts)",
                stringify!($name),
                accepted,
                attempts,
            );
        }
        $crate::proptest! { $($rest)* }
    };
    // `arg: Type` shorthand for `arg in any::<Type>()`.
    ($(#[$meta:meta])* fn $name:ident($($arg:ident: $ty:ty),* $(,)?) $body:block $($rest:tt)*) => {
        $crate::proptest! {
            $(#[$meta])*
            fn $name($($arg in $crate::arbitrary::any::<$ty>()),*) $body
            $($rest)*
        }
    };
}

/// Rejects the current case (it is resampled, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Asserts within a property body, failing the case (no panic mid-body).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let left = $a;
        let right = $b;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} == {} (left: {:?}, right: {:?})",
                    stringify!($a),
                    stringify!($b),
                    left,
                    right
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let left = $a;
        let right = $b;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let left = $a;
        let right = $b;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} != {} (both: {:?})",
                    stringify!($a),
                    stringify!($b),
                    left
                ),
            ));
        }
    }};
}

/// Chooses uniformly among the listed strategies (all of one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
