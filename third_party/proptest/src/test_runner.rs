//! Deterministic case generation and the case-outcome type.

/// Cases each property runs (the real crate defaults to 256; this stub
/// trades a little coverage for test-suite speed).
pub const DEFAULT_CASES: u32 = 64;

/// Why a property case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is resampled.
    Reject(&'static str),
    /// A `prop_assert*!` failed; the property fails.
    Fail(String),
}

/// The deterministic RNG properties sample from.
///
/// SplitMix64 seeded from an FNV-1a hash of the test name: every run of
/// a given property sees the same case sequence, so failures reproduce
/// without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a property name.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::from_name("prop_x");
        let mut b = TestRng::from_name("prop_x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::from_name("prop_x");
        let mut b = TestRng::from_name("prop_y");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
