//! `any::<T>()`: full-domain strategies for primitive types.

use core::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_i8_covers_sign_range() {
        let mut rng = TestRng::from_name("any_i8");
        let mut neg = false;
        let mut pos = false;
        for _ in 0..200 {
            let v = any::<i8>().sample(&mut rng);
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos);
    }
}
