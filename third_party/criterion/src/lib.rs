//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors this tiny harness implementing the criterion surface the
//! `bfree-bench` targets use: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `group.sample_size(..)`,
//! `group.bench_function(..)`, `Bencher::iter` and [`black_box`]. Each
//! benchmark body runs a fixed number of iterations and reports mean
//! wall-clock time — enough to spot order-of-magnitude regressions, with
//! none of the real crate's statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark body.
    pub fn bench_function<N, F>(&mut self, name: N, mut body: F) -> &mut Self
    where
        N: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let name = name.as_ref();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            body(&mut bencher);
        }
        let mean_ns = if bencher.samples.is_empty() {
            0.0
        } else {
            bencher.samples.iter().sum::<f64>() / bencher.samples.len() as f64
        };
        println!(
            "  {name}: {mean_ns:.1} ns/iter (mean of {} samples)",
            self.sample_size
        );
        self
    }

    /// Ends the group (parity with the real API; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Runs and times a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `body`, recording mean nanoseconds per call for this sample.
    pub fn iter<O, F>(&mut self, mut body: F)
    where
        F: FnMut() -> O,
    {
        const ITERS: u32 = 16;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(body());
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        self.samples.push(elapsed / f64::from(ITERS));
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        let mut runs = 0u32;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| 1 + 1);
            runs += 1;
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
