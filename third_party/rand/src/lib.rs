//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors this minimal, dependency-free implementation of the
//! `rand` surface it actually uses: [`rngs::StdRng`], [`SeedableRng`],
//! and [`RngExt::random_range`] over integer and float ranges. The
//! generator is SplitMix64 — statistically solid for synthetic workload
//! generation and property-test case sampling, and fully deterministic
//! for a given seed, which is all the simulators here require.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::RngExt`.
pub trait RngExt: RngCore {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform sample over `T`'s whole value range.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Types with a canonical "any value, uniformly" distribution.
pub trait StandardSample {
    /// Draws one uniform sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_sample {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_sample!(i8, i16, i32, i64, u8, u16, u32, u64);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that knows how to draw a uniform sample from an RNG.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// The standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic SplitMix64 generator standing in for
    /// `rand::rngs::StdRng`.
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{RngExt, SeedableRng};
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.random_range(0u64..100), b.random_range(0u64..100));
    /// ```
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(-100i64..100), b.random_range(-100i64..100));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.random_range(-5i8..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn inclusive_range_hits_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            match rng.random_range(0u8..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
