//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (trait and derive-macro
//! namespaces) that the workspace imports, without any serialization
//! machinery behind them — nothing in-tree serializes through serde, the
//! derives exist for downstream consumers of the published crates. The
//! no-op derives in `serde_derive` emit no impls, so these traits carry
//! no methods and no code depends on them being implemented.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
