//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! downstream consumers, but nothing in-tree serializes through serde
//! (there is no `serde_json` or similar). With no registry access the
//! real derive stack (syn/quote/proc-macro2) cannot be built, so these
//! derives expand to nothing: the attribute positions stay valid and the
//! code compiles unchanged.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
