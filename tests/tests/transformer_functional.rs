//! A full transformer encoder block — attention, residual adds, layer
//! norm, feed-forward with GELU — executed value-level through the LUT
//! datapath and checked against the f32 reference (the paper's Fig. 10
//! dataflow, §IV-B2).

use bfree::functional::FunctionalPipeline;
use pim_nn::reference::{self, AttentionWeights};
use pim_nn::tensor::{Tensor, TensorShape};
use pim_nn::workload::WorkloadGen;

struct EncoderWeights {
    attention: AttentionWeights,
    ff_w1: Tensor<f32>, // (hidden, inner)
    ff_w2: Tensor<f32>, // (inner, hidden)
    ln1: (Vec<f32>, Vec<f32>),
    ln2: (Vec<f32>, Vec<f32>),
}

fn make_weights(gen: &mut WorkloadGen, hidden: usize, inner: usize) -> EncoderWeights {
    let square = |gen: &mut WorkloadGen| {
        gen.uniform_f32(TensorShape::new(vec![hidden, hidden]), -0.25, 0.25)
    };
    EncoderWeights {
        attention: AttentionWeights {
            w_q: square(gen),
            w_k: square(gen),
            w_v: square(gen),
            w_o: square(gen),
        },
        ff_w1: gen.uniform_f32(TensorShape::new(vec![hidden, inner]), -0.2, 0.2),
        ff_w2: gen.uniform_f32(TensorShape::new(vec![inner, hidden]), -0.2, 0.2),
        ln1: (vec![1.0; hidden], vec![0.0; hidden]),
        ln2: (vec![1.0; hidden], vec![0.0; hidden]),
    }
}

/// The attention sub-block via the LUT pipeline (projections through
/// quantized matmul tiles, softmax through the exp/division LUTs).
fn attention_lut(
    pipeline: &FunctionalPipeline,
    input: &Tensor<f32>,
    w: &AttentionWeights,
    heads: usize,
) -> Tensor<f32> {
    let dims = input.shape().dims();
    let (seq, hidden) = (dims[0], dims[1]);
    let head_dim = hidden / heads;
    let q = pipeline.matmul(input, &w.w_q).unwrap();
    let k = pipeline.matmul(input, &w.w_k).unwrap();
    let v = pipeline.matmul(input, &w.w_v).unwrap();
    let mut context = Tensor::zeros(TensorShape::new(vec![seq, hidden]));
    let scale = 1.0 / (head_dim as f32).sqrt();
    for head in 0..heads {
        let base = head * head_dim;
        for i in 0..seq {
            let scores: Vec<f32> = (0..seq)
                .map(|j| {
                    (0..head_dim)
                        .map(|d| q.data()[i * hidden + base + d] * k.data()[j * hidden + base + d])
                        .sum::<f32>()
                        * scale
                })
                .collect();
            let probs = pipeline.softmax(&scores).unwrap();
            for d in 0..head_dim {
                let acc: f64 = (0..seq)
                    .map(|j| probs[j] * v.data()[j * hidden + base + d] as f64)
                    .sum();
                context.data_mut()[i * hidden + base + d] = acc as f32;
            }
        }
    }
    pipeline.matmul(&context, &w.w_o).unwrap()
}

fn add(a: &Tensor<f32>, b: &Tensor<f32>) -> Tensor<f32> {
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect();
    Tensor::from_vec(a.shape().clone(), data).unwrap()
}

fn encoder_block_lut(
    pipeline: &FunctionalPipeline,
    input: &Tensor<f32>,
    w: &EncoderWeights,
    heads: usize,
) -> Tensor<f32> {
    let attn = attention_lut(pipeline, input, &w.attention, heads);
    let x = add(input, &attn);
    let x = reference::layer_norm(&x, &w.ln1.0, &w.ln1.1, 1e-5).unwrap();

    // Feed-forward with GELU approximated via the tanh LUT.
    let h1 = pipeline.matmul(&x, &w.ff_w1).unwrap();
    let tanh_arg: Vec<f32> = h1
        .data()
        .iter()
        .map(|&v| (2.0f32 / std::f32::consts::PI).sqrt() * (v + 0.044715 * v * v * v))
        .collect();
    let tanh_out = pipeline.tanh(&tanh_arg);
    let gelu: Vec<f32> = h1
        .data()
        .iter()
        .zip(tanh_out.iter())
        .map(|(&v, &t)| 0.5 * v * (1.0 + t as f32))
        .collect();
    let h1 = Tensor::from_vec(h1.shape().clone(), gelu).unwrap();
    let h2 = pipeline.matmul(&h1, &w.ff_w2).unwrap();
    let x = add(&x, &h2);
    reference::layer_norm(&x, &w.ln2.0, &w.ln2.1, 1e-5).unwrap()
}

fn encoder_block_reference(input: &Tensor<f32>, w: &EncoderWeights, heads: usize) -> Tensor<f32> {
    let attn = reference::self_attention(input, &w.attention, heads).unwrap();
    let x = add(input, &attn);
    let x = reference::layer_norm(&x, &w.ln1.0, &w.ln1.1, 1e-5).unwrap();
    let h1 = reference::matmul(&x, &w.ff_w1).unwrap();
    let h1g: Vec<f32> = h1.data().iter().map(|&v| reference::gelu(v)).collect();
    let h1 = Tensor::from_vec(h1.shape().clone(), h1g).unwrap();
    let h2 = reference::matmul(&h1, &w.ff_w2).unwrap();
    let x = add(&x, &h2);
    reference::layer_norm(&x, &w.ln2.0, &w.ln2.1, 1e-5).unwrap()
}

#[test]
fn encoder_block_through_lut_datapath_tracks_reference() {
    let (seq, hidden, inner, heads) = (6, 16, 32, 4);
    let mut gen = WorkloadGen::new(31415);
    let input = gen.uniform_f32(TensorShape::new(vec![seq, hidden]), -1.0, 1.0);
    let weights = make_weights(&mut gen, hidden, inner);
    let pipeline = FunctionalPipeline::new().unwrap();

    let lut_out = encoder_block_lut(&pipeline, &input, &weights, heads);
    let ref_out = encoder_block_reference(&input, &weights, heads);

    // Post-layer-norm outputs are O(1); the accumulated quantization and
    // PWL error across four matmuls, a softmax and a GELU stays small.
    let mut worst = 0.0f32;
    for (a, b) in lut_out.data().iter().zip(ref_out.data()) {
        worst = worst.max((a - b).abs());
    }
    assert!(worst < 0.35, "max deviation {worst}");

    // Correlation check: the two outputs must be essentially the same
    // signal, not merely bounded.
    let n = lut_out.len() as f32;
    let mean_a: f32 = lut_out.data().iter().sum::<f32>() / n;
    let mean_b: f32 = ref_out.data().iter().sum::<f32>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (a, b) in lut_out.data().iter().zip(ref_out.data()) {
        cov += (a - mean_a) * (b - mean_b);
        var_a += (a - mean_a) * (a - mean_a);
        var_b += (b - mean_b) * (b - mean_b);
    }
    let corr = cov / (var_a.sqrt() * var_b.sqrt());
    assert!(corr > 0.995, "correlation {corr}");
}

#[test]
fn gru_cell_through_lut_datapath_tracks_reference() {
    use pim_nn::reference::GruWeights;
    let (input_w, hidden) = (5usize, 8usize);
    let mut gen = WorkloadGen::new(2718);
    let weights = GruWeights {
        w_input: gen.uniform_f32(TensorShape::new(vec![3 * hidden, input_w]), -0.4, 0.4),
        w_hidden: gen.uniform_f32(TensorShape::new(vec![3 * hidden, hidden]), -0.4, 0.4),
        bias: gen.vector_f32(3 * hidden, -0.1, 0.1),
    };
    let x = gen.vector_f32(input_w, -1.0, 1.0);
    let h = gen.vector_f32(hidden, -0.5, 0.5);

    let pipeline = FunctionalPipeline::new().unwrap();
    let gx = pipeline
        .linear(&x, &weights.w_input, &weights.bias)
        .unwrap();
    let zero = vec![0.0f32; 3 * hidden];
    let gh = pipeline.linear(&h, &weights.w_hidden, &zero).unwrap();
    let r_in: Vec<f32> = (0..hidden).map(|j| gx[j] + gh[j]).collect();
    let z_in: Vec<f32> = (0..hidden)
        .map(|j| gx[hidden + j] + gh[hidden + j])
        .collect();
    let r = pipeline.sigmoid(&r_in);
    let z = pipeline.sigmoid(&z_in);
    let n_in: Vec<f32> = (0..hidden)
        .map(|j| gx[2 * hidden + j] + r[j] as f32 * gh[2 * hidden + j])
        .collect();
    let n = pipeline.tanh(&n_in);
    let h_next: Vec<f64> = (0..hidden)
        .map(|j| (1.0 - z[j]) * n[j] + z[j] * h[j] as f64)
        .collect();

    let reference_h = reference::gru_cell(&x, &h, &weights).unwrap();
    for j in 0..hidden {
        assert!(
            (h_next[j] - reference_h[j] as f64).abs() < 0.05,
            "h[{j}]: {} vs {}",
            h_next[j],
            reference_h[j]
        );
    }
}
