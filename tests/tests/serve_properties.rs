//! Property tests over the serving subsystem: the slice pool must never
//! double-allocate a subarray, the engine must conserve work, and every
//! submitted request must be accounted for exactly once — for arbitrary
//! traffic, not just the curated examples.

use bfree_serve::{SchedPolicy, ServeConfig, ServingSim, SlicePool, TenantSpec};
use pim_arch::CacheGeometry;
use pim_nn::request::NetworkKind;
use proptest::collection::vec;
use proptest::prelude::*;

fn specs() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("lstm", NetworkKind::LstmTimit),
        TenantSpec::new("bert", NetworkKind::BertBase).with_priority(3),
    ]
}

fn policy_strategy() -> impl Strategy<Value = SchedPolicy> {
    prop_oneof![
        Just(SchedPolicy::Fifo),
        Just(SchedPolicy::Sjf),
        Just(SchedPolicy::Priority)
    ]
}

proptest! {
    /// No subarray is ever owned by two live allocations, and the
    /// free/allocated split always sums to the whole pool, under any
    /// interleaving of allocations and releases.
    #[test]
    fn pool_never_double_allocates(
        ops in vec((1usize..=14, any::<bool>()), 1..40),
    ) {
        let mut pool = SlicePool::new(CacheGeometry::xeon_l3_35mb());
        let mut live = Vec::new();
        for (slices, prefer_release) in ops {
            if prefer_release && !live.is_empty() {
                pool.release(live.remove(0));
            } else if let Some(grant) = pool.allocate(slices) {
                live.push(grant);
            }
            let held: usize = live.iter().map(|g| g.slices()).sum();
            prop_assert_eq!(pool.free_slices() + held, pool.total_slices());
            // Pairwise disjointness over every live grant's subarrays.
            let mut seen = std::collections::BTreeSet::new();
            for grant in &live {
                for range in grant.subarray_ranges() {
                    for subarray in range {
                        prop_assert!(
                            seen.insert(subarray),
                            "subarray {} granted twice", subarray
                        );
                    }
                }
            }
        }
    }

    /// Every submission ends in exactly one bucket — completed,
    /// rejected, queued or in flight — at any observation point, and a
    /// drained run accounts completed + rejected == submitted with the
    /// pool fully returned and zero work-conservation violations.
    #[test]
    fn serving_accounts_for_every_request(
        arrivals in vec((0u64..3_000_000, 0usize..2), 1..25),
        queue_capacity in 1usize..48,
        max_batch in 1usize..9,
        batch_window_ns in prop_oneof![Just(0u64), Just(50_000u64), Just(400_000u64)],
        policy in policy_strategy(),
        observe_at in 1u64..6_000_000,
    ) {
        let config = ServeConfig {
            policy,
            max_batch,
            batch_window_ns,
            queue_capacity,
            timeout_ns: Some(8_000_000),
            ..ServeConfig::default()
        };
        let mut sim = ServingSim::new(config, specs()).unwrap();
        for &(at_ns, tenant) in &arrivals {
            sim.submit(tenant, at_ns);
        }

        // Mid-run: the identity must hold at an arbitrary cut.
        sim.run_until(observe_at);
        let mid = sim.telemetry().summary();
        prop_assert_eq!(
            mid.completed + mid.rejected + sim.queued() + sim.in_flight(),
            mid.submitted
        );

        // Drained: everything terminal, all slices home, no violations.
        let done = sim.run_to_idle().summary();
        prop_assert_eq!(done.submitted, arrivals.len() as u64);
        prop_assert_eq!(done.completed + done.rejected, done.submitted);
        prop_assert_eq!(sim.queued() + sim.in_flight(), 0);
        prop_assert_eq!(sim.free_slices(), 14);
        prop_assert_eq!(sim.work_conservation_violations(), 0);
    }

    /// Work conservation: with one tenant, an empty pool and pending
    /// eligible work, the engine never idles — total service time is
    /// wall-to-wall, so the makespan never exceeds the sum of dispatch
    /// service times plus the arrival span and batching window.
    #[test]
    fn single_tenant_engine_never_idles(
        n in 1usize..12,
        gap_ns in 0u64..200_000,
    ) {
        let config = ServeConfig { max_batch: 4, ..ServeConfig::default() };
        let mut sim = ServingSim::new(
            config,
            vec![TenantSpec::new("lstm", NetworkKind::LstmTimit)],
        ).unwrap();
        for i in 0..n {
            sim.submit(0, i as u64 * gap_ns);
        }
        let telemetry = sim.run_to_idle();
        let total_service: u64 = {
            // Each dispatch's service counted once, not per coalesced request.
            let mut windows: Vec<(u64, u64)> = telemetry
                .records()
                .iter()
                .map(|r| (r.dispatch_ns, r.complete_ns))
                .collect();
            windows.sort_unstable();
            windows.dedup();
            windows.iter().map(|(d, c)| c - d).sum()
        };
        let arrival_span = (n as u64 - 1) * gap_ns;
        let summary = telemetry.summary();
        prop_assert_eq!(summary.completed, n as u64);
        prop_assert!(
            summary.makespan_ns <= arrival_span + total_service,
            "engine idled: makespan {} > arrivals {} + service {}",
            summary.makespan_ns, arrival_span, total_service
        );
        prop_assert_eq!(sim.work_conservation_violations(), 0);
    }
}
