//! Cross-model consistency: every inference model must produce
//! internally consistent reports on every network at every batch size.

use bfree::prelude::*;

fn models() -> Vec<Box<dyn InferenceModel>> {
    vec![
        Box::new(BfreeSimulator::new(BfreeConfig::paper_default())),
        Box::new(NeuralCacheModel::paper_default()),
        Box::new(EyerissModel::paper_default()),
        Box::new(CpuModel::paper_xeon()),
        Box::new(GpuModel::paper_titan_v()),
    ]
}

fn all_networks() -> Vec<pim_nn::Network> {
    let mut nets: Vec<_> = networks::table2_networks()
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    nets.push(networks::resnet18());
    nets.push(networks::gru_timit());
    nets
}

#[test]
fn extension_networks_run_on_every_model() {
    for model in models() {
        for net in [networks::resnet18(), networks::gru_timit()] {
            let report = model.run(&net, 1);
            assert!(report.total_latency().nanoseconds() > 0.0);
            assert!(report.total_energy().picojoules() > 0.0);
        }
    }
    // ResNet-18 is lighter than Inception-v3 on BFree.
    let sim = BfreeSimulator::new(BfreeConfig::paper_default());
    let resnet = sim.run(&networks::resnet18(), 1);
    let inception = sim.run(&networks::inception_v3(), 1);
    assert!(resnet.total_latency() < inception.total_latency());
    let _ = all_networks();
}

#[test]
fn every_model_runs_every_network() {
    for model in models() {
        for (net, _) in networks::table2_networks() {
            for batch in [1usize, 4, 16] {
                let report = model.run(&net, batch);
                assert!(
                    report.total_latency().nanoseconds() > 0.0,
                    "{} on {} b{batch} has zero latency",
                    model.device_name(),
                    net.name()
                );
                assert!(
                    report.total_energy().picojoules() > 0.0,
                    "{} on {} b{batch} has zero energy",
                    model.device_name(),
                    net.name()
                );
                assert_eq!(report.batch, batch);
                assert_eq!(report.network, net.name());
            }
        }
    }
}

fn mechanistic_models() -> Vec<Box<dyn InferenceModel>> {
    vec![
        Box::new(BfreeSimulator::new(BfreeConfig::paper_default())),
        Box::new(NeuralCacheModel::paper_default()),
        Box::new(EyerissModel::paper_default()),
    ]
}

#[test]
fn whole_batch_cost_is_monotone_in_batch() {
    // Only the mechanistic models: the calibrated CPU/GPU devices mix
    // measured Table III points with a roofline fallback, and the seam
    // between the two is not monotone by construction.
    for model in mechanistic_models() {
        let net = networks::bert_base();
        let mut prev_latency = 0.0;
        let mut prev_energy = 0.0;
        for batch in [1usize, 2, 4, 8, 16] {
            let report = model.run(&net, batch);
            let latency = report.total_latency().nanoseconds();
            let energy = report.total_energy().picojoules();
            assert!(
                latency >= prev_latency,
                "{} latency not monotone at batch {batch}",
                model.device_name()
            );
            assert!(
                energy >= prev_energy,
                "{} energy not monotone at batch {batch}",
                model.device_name()
            );
            prev_latency = latency;
            prev_energy = energy;
        }
    }
}

#[test]
fn per_layer_latencies_do_not_exceed_total() {
    let sim = BfreeSimulator::new(BfreeConfig::paper_default());
    for (net, _) in networks::table2_networks() {
        let report = sim.run(&net, 1);
        let per_layer_sum: f64 = report
            .per_layer
            .iter()
            .map(|l| l.latency.nanoseconds())
            .sum();
        let total = report.total_latency().nanoseconds();
        // Per-layer times cover the phases attributed to layers; the
        // total additionally includes the configuration phase.
        assert!(
            per_layer_sum <= total * 1.001,
            "{}: per-layer sum {per_layer_sum} > total {total}",
            net.name()
        );
        assert!(
            per_layer_sum > total * 0.5,
            "{}: per-layer sum suspiciously small",
            net.name()
        );
    }
}

#[test]
fn faster_memory_never_hurts_bfree() {
    let nets = [
        networks::inception_v3(),
        networks::vgg16(),
        networks::bert_base(),
    ];
    for net in &nets {
        for batch in [1usize, 16] {
            let mut prev = f64::INFINITY;
            for kind in [
                MemoryTechKind::Dram,
                MemoryTechKind::Edram,
                MemoryTechKind::Hbm,
            ] {
                let sim = BfreeSimulator::new(
                    BfreeConfig::paper_default().with_memory(MemoryTech::from_kind(kind)),
                );
                let t = sim.run(net, batch).total_latency().nanoseconds();
                assert!(
                    t <= prev,
                    "{} b{batch}: {} slower than previous tech",
                    net.name(),
                    kind.name()
                );
                prev = t;
            }
        }
    }
}

#[test]
fn bfree_beats_neural_cache_on_every_network() {
    let bfree = BfreeSimulator::new(BfreeConfig::paper_default());
    let nc = NeuralCacheModel::paper_default();
    for (net, _) in networks::table2_networks() {
        let ours = bfree.run(&net, 1);
        let theirs = nc.run(&net, 1);
        assert!(
            ours.total_latency() < theirs.total_latency(),
            "{}: BFree {} vs NC {}",
            net.name(),
            ours.total_latency(),
            theirs.total_latency()
        );
        assert!(
            ours.total_energy() < theirs.total_energy(),
            "{} energy",
            net.name()
        );
    }
}

#[test]
fn energy_breakdown_components_sum_to_total() {
    let sim = BfreeSimulator::new(BfreeConfig::paper_default());
    let report = sim.run(&networks::inception_v3(), 1);
    let sum: f64 = EnergyComponent::ALL
        .iter()
        .map(|&c| report.energy.get(c).picojoules())
        .sum();
    assert!((sum - report.total_energy().picojoules()).abs() < 1.0);
}

#[test]
fn phase_fractions_sum_to_one() {
    let sim = BfreeSimulator::new(BfreeConfig::paper_default());
    for batch in [1usize, 16] {
        let report = sim.run(&networks::vgg16(), batch);
        let sum: f64 = Phase::ALL.iter().map(|&p| report.latency.fraction(p)).sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "batch {batch}: fractions sum {sum}"
        );
    }
}
