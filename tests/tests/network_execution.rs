//! Whole-network execution: the same layer table, the same weights, run
//! once through the f32 reference executor and once through the LUT
//! datapath — predictions and probabilities must agree.

use bfree::functional::{run_sequential_lut, FunctionalPipeline};
use pim_nn::executor::{run_sequential, tiny_cnn, NetworkWeights};
use pim_nn::tensor::TensorShape;
use pim_nn::workload::WorkloadGen;

fn argmax(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0
}

#[test]
fn tiny_cnn_lut_execution_matches_reference() {
    let net = tiny_cnn(16, 6);
    let mut gen = WorkloadGen::new(777);
    let weights = NetworkWeights::random(&net, &mut gen, 0.4).unwrap();
    let input = gen.uniform_f32(TensorShape::chw(1, 16, 16), -1.0, 1.0);

    let reference_out = run_sequential(&net, &weights, &input).unwrap();
    let pipeline = FunctionalPipeline::new().unwrap();
    let lut_out = run_sequential_lut(&pipeline, &net, &weights, &input).unwrap();

    assert_eq!(reference_out.shape(), lut_out.shape());
    assert_eq!(
        argmax(reference_out.data()),
        argmax(lut_out.data()),
        "prediction diverged"
    );
    for (a, b) in reference_out.data().iter().zip(lut_out.data()) {
        assert!((a - b).abs() < 0.1, "probability drifted: {a} vs {b}");
    }
    // The LUT run exercised the nibble ROM, not a host multiplier.
    assert!(pipeline.bce().rom_reads() > 10_000);
}

#[test]
fn predictions_stable_across_many_random_inputs() {
    let net = tiny_cnn(8, 4);
    let mut gen = WorkloadGen::new(888);
    let weights = NetworkWeights::random(&net, &mut gen, 0.4).unwrap();
    let pipeline = FunctionalPipeline::new().unwrap();

    let mut agreements = 0;
    const TRIALS: usize = 20;
    for _ in 0..TRIALS {
        let input = gen.uniform_f32(TensorShape::chw(1, 8, 8), -1.0, 1.0);
        let r = run_sequential(&net, &weights, &input).unwrap();
        let l = run_sequential_lut(&pipeline, &net, &weights, &input).unwrap();
        if argmax(r.data()) == argmax(l.data()) {
            agreements += 1;
        }
    }
    // Quantization may flip near-ties occasionally; demand near-total
    // agreement.
    assert!(
        agreements >= TRIALS - 1,
        "only {agreements}/{TRIALS} predictions agreed"
    );
}

#[test]
fn sigmoid_tanh_network_through_both_paths() {
    use pim_nn::layers::{Act, LayerOp, LayerSpec, Network};
    // A small MLP with sigmoid and tanh layers to cover the PWL tables
    // in network context.
    let layers = vec![
        LayerSpec::new(
            "fc1",
            LayerOp::Linear { out_features: 12 },
            TensorShape::vector(10),
        )
        .unwrap(),
        LayerSpec::new(
            "sig",
            LayerOp::Activation(Act::Sigmoid),
            TensorShape::vector(12),
        )
        .unwrap(),
        LayerSpec::new(
            "fc2",
            LayerOp::Linear { out_features: 8 },
            TensorShape::vector(12),
        )
        .unwrap(),
        LayerSpec::new(
            "tanh",
            LayerOp::Activation(Act::Tanh),
            TensorShape::vector(8),
        )
        .unwrap(),
        LayerSpec::new(
            "fc3",
            LayerOp::Linear { out_features: 3 },
            TensorShape::vector(8),
        )
        .unwrap(),
        LayerSpec::new(
            "softmax",
            LayerOp::Activation(Act::Softmax),
            TensorShape::vector(3),
        )
        .unwrap(),
    ];
    let net = Network::new("mlp", layers);
    let mut gen = WorkloadGen::new(999);
    let weights = NetworkWeights::random(&net, &mut gen, 0.5).unwrap();
    let input = gen.uniform_f32(TensorShape::vector(10), -1.0, 1.0);

    let r = run_sequential(&net, &weights, &input).unwrap();
    let pipeline = FunctionalPipeline::new().unwrap();
    let l = run_sequential_lut(&pipeline, &net, &weights, &input).unwrap();
    for (a, b) in r.data().iter().zip(l.data()) {
        assert!((a - b).abs() < 0.08, "{a} vs {b}");
    }
}
