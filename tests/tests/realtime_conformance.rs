//! Conformance properties for the realtime serving engine: randomized
//! traces replayed through both the virtual-clock oracle and the
//! wall-clock engine must agree *exactly* on per-request work counters
//! (ops, LUT reads, bytes), terminal outcome sets and retry counts, and
//! stay within a bounded telemetry divergence — no matter how the
//! realtime threads interleaved. Plus a stress test hammering the
//! sharded admission queue from N producer/consumer threads: every
//! pushed request is popped exactly once.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bfree::PrecisionPolicy;
use bfree_fault::{FaultInjector, FaultPlan};
use bfree_serve::realtime::run_conformance;
use bfree_serve::scheduler::QueuedRequest;
use bfree_serve::{
    RealtimeConfig, RequestTrace, SchedPolicy, ServeConfig, ShardedQueue, TenantSpec,
};
use pim_bce::Precision;
use pim_nn::request::NetworkKind;
use proptest::collection::vec;
use proptest::prelude::*;

fn specs() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("lstm", NetworkKind::LstmTimit),
        TenantSpec::new("bert", NetworkKind::BertBase),
    ]
}

fn config(workers: usize, shards: usize, max_batch: usize) -> RealtimeConfig {
    RealtimeConfig::builder()
        .workers(workers)
        .queue_shards(shards)
        .serve(
            ServeConfig::builder()
                .max_batch(max_batch)
                .batch_window_ns(100_000)
                .queue_capacity(4096)
                .build()
                .expect("constants are valid"),
        )
        .build()
        .expect("constants are valid")
}

/// An open-loop-style trace: explicit arrival gaps per request.
fn open_loop_trace(gaps: &[(u32, bool)]) -> RequestTrace {
    let mut trace = RequestTrace::new();
    let mut at_ns = 0u64;
    for &(gap, bert) in gaps {
        at_ns += u64::from(gap);
        trace.submit(at_ns, usize::from(bert));
    }
    trace
}

/// A closed-loop-style trace: `clients` waves of back-to-back requests
/// with a fixed think gap between waves.
fn closed_loop_trace(clients: usize, waves: usize, think_ns: u64) -> RequestTrace {
    let mut trace = RequestTrace::new();
    for wave in 0..waves {
        for client in 0..clients {
            trace.submit(wave as u64 * think_ns + client as u64, client % 2);
        }
    }
    trace
}

proptest! {
    /// Randomized open-loop traces conform: exact work-counter and
    /// outcome agreement for any arrival pattern, worker count and
    /// shard count.
    #[test]
    fn open_loop_traces_conform_exactly(
        gaps in vec((0u32..2_000_000, any::<bool>()), 1..24),
        workers in 1usize..5,
        shard_pow in 0u32..4,
        max_batch in 1usize..9,
    ) {
        let config = config(workers, 1 << shard_pow, max_batch);
        let trace = open_loop_trace(&gaps);
        let injector = FaultInjector::none(config.serve.base.geometry.slices());
        let report = run_conformance(&config, &specs(), &trace, &injector, 1e9)
            .expect("both engines must drive the trace");
        prop_assert!(report.work_exact, "work mismatch: {:?}", report.mismatches);
        prop_assert!(report.outcomes_exact, "outcome mismatch: {:?}", report.mismatches);
        prop_assert_eq!(report.submitted, gaps.len() as u64);
        prop_assert!(report.total_work.ops > 0);
    }

    /// Transient faults conform too: `transient_error(id, attempt)` is
    /// deterministic per request, so both engines see the same fault
    /// sequence and must agree on work (retried attempts are charged on
    /// both sides) and on every terminal outcome.
    #[test]
    fn transient_fault_traces_conform_exactly(
        gaps in vec((0u32..1_000_000, any::<bool>()), 1..16),
        rate in 0.0f64..0.4,
        seed in any::<u64>(),
    ) {
        let mut config = config(2, 4, 4);
        config.serve.retry = bfree_fault::RetryPolicy::standard();
        let plan = FaultPlan {
            transient_error_rate: rate,
            ..FaultPlan::none()
        };
        let slices = config.serve.base.geometry.slices();
        let injector = FaultInjector::new(plan, seed, slices, 512).expect("plan in range");
        let trace = open_loop_trace(&gaps);
        let report = run_conformance(&config, &specs(), &trace, &injector, 1e9)
            .expect("both engines must drive the trace");
        prop_assert!(report.work_exact, "work mismatch: {:?}", report.mismatches);
        prop_assert!(report.outcomes_exact, "outcome mismatch: {:?}", report.mismatches);
    }

    /// Model-swap traces conform when the trace quiesces the swapped
    /// tenant around the swap (the realtime feeder's per-tenant drain):
    /// requests before the swap are priced on v0, after on v1, and the
    /// ledgers must agree request for request.
    #[test]
    fn model_swap_traces_conform_exactly(
        before in 1usize..6,
        after in 1usize..6,
        seed in any::<u64>(),
    ) {
        let config = config(2, 2, 4);
        let _ = seed;
        let mut trace = RequestTrace::new();
        for i in 0..before {
            trace.submit(i as u64 * 200_000, 0);
            trace.submit(i as u64 * 200_000 + 1, 1);
        }
        // A long gap so tenant 0 is quiesced when the swap fires; the
        // int4 spec changes tenant 0's per-request work profile.
        let swap_at = 400_000_000u64;
        trace.swap(
            swap_at,
            0,
            1,
            TenantSpec::new("lstm", NetworkKind::LstmTimit)
                .with_precision(PrecisionPolicy::Uniform(Precision::Int4)),
        );
        for i in 0..after {
            trace.submit(swap_at + 100_000_000 + i as u64 * 200_000, 0);
        }
        let injector = FaultInjector::none(config.serve.base.geometry.slices());
        let report = run_conformance(&config, &specs(), &trace, &injector, 1e9)
            .expect("both engines must drive the trace");
        prop_assert!(report.work_exact, "work mismatch: {:?}", report.mismatches);
        prop_assert!(report.outcomes_exact, "outcome mismatch: {:?}", report.mismatches);
        prop_assert_eq!(report.submitted, (before * 2 + after) as u64);
    }
}

#[test]
fn closed_loop_trace_conforms_exactly() {
    let config = config(3, 4, 8);
    let trace = closed_loop_trace(4, 5, 5_000_000);
    let injector = FaultInjector::none(config.serve.base.geometry.slices());
    let report =
        run_conformance(&config, &specs(), &trace, &injector, 1e9).expect("trace must drive");
    assert!(report.work_exact, "work mismatch: {:?}", report.mismatches);
    assert!(
        report.outcomes_exact,
        "outcome mismatch: {:?}",
        report.mismatches
    );
    assert_eq!(report.submitted, 20);
}

#[test]
fn conformance_holds_across_scheduler_policies() {
    for policy in [SchedPolicy::Fifo, SchedPolicy::Sjf, SchedPolicy::Priority] {
        let mut config = config(2, 4, 4);
        config.serve.policy = policy;
        let trace = open_loop_trace(&[(0, false), (1_000, true), (2_000, false), (3_000, true)]);
        let injector = FaultInjector::none(config.serve.base.geometry.slices());
        let report =
            run_conformance(&config, &specs(), &trace, &injector, 1e9).expect("trace must drive");
        assert!(
            report.work_exact && report.outcomes_exact,
            "{policy:?}: {:?}",
            report.mismatches
        );
    }
}

/// N producers push a known ID set while N consumers pop concurrently:
/// nothing is lost, nothing is popped twice, and the queue drains to
/// empty. This is the lock-free-handoff invariant the conformance
/// ledger check relies on.
#[test]
fn sharded_queue_loses_nothing_under_concurrency() {
    const PRODUCERS: usize = 4;
    const CONSUMERS: usize = 4;
    const PER_PRODUCER: u64 = 500;
    let total = PRODUCERS as u64 * PER_PRODUCER;

    let queue = ShardedQueue::new(8, total as usize);
    let produced = AtomicU64::new(0);
    let popped = Mutex::new(Vec::<u64>::new());

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS as u64 {
            let queue = &queue;
            let produced = &produced;
            scope.spawn(move || {
                for i in 0..PER_PRODUCER {
                    let id = p * PER_PRODUCER + i;
                    let req = QueuedRequest {
                        request_id: id,
                        tenant: 0,
                        submit_ns: id,
                        attempt: 0,
                    };
                    queue.push(req).expect("capacity covers every push");
                    produced.fetch_add(1, Ordering::Release);
                }
            });
        }
        for c in 0..CONSUMERS {
            let queue = &queue;
            let produced = &produced;
            let popped = &popped;
            scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    match queue.pop(c) {
                        Some((req, _stolen)) => local.push(req.request_id),
                        None => {
                            if produced.load(Ordering::Acquire) == total && queue.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                popped.lock().unwrap().extend(local);
            });
        }
    });

    let popped = popped.into_inner().unwrap();
    assert_eq!(
        popped.len() as u64,
        total,
        "a request was lost or duplicated"
    );
    let unique: BTreeSet<u64> = popped.iter().copied().collect();
    assert_eq!(unique.len() as u64, total, "a request was popped twice");
    assert_eq!(*unique.iter().next().unwrap(), 0);
    assert_eq!(*unique.iter().last().unwrap(), total - 1);
    assert!(queue.is_empty());
}
