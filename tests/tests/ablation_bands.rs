//! Shape assertions over the design-choice ablations (DESIGN.md §5).

use bfree_experiments::ablations;

#[test]
fn lut_paths_beat_bitline_computing_by_an_order_of_magnitude() {
    let a = ablations::mul_path();
    assert!(
        a.hardwired_rom_pj < a.bitline_pj / 10.0,
        "rom {} vs bitline {}",
        a.hardwired_rom_pj,
        a.bitline_pj
    );
    assert!(a.subarray_lut_pj < a.bitline_pj / 10.0);
    // Both LUT paths are within the same order of magnitude.
    let ratio = a.hardwired_rom_pj / a.subarray_lut_pj;
    assert!((0.3..=3.0).contains(&ratio), "path ratio {ratio}");
}

#[test]
fn reduced_lut_saves_5x_storage_for_fractional_extra_work() {
    let a = ablations::lut_size();
    assert_eq!(a.reduced_bytes, 49);
    assert_eq!(a.full_bytes, 256);
    // The operand analyzer resolves most products without the table.
    assert!(
        a.reduced_reads_per_product < 0.5,
        "reads {}",
        a.reduced_reads_per_product
    );
    // And the extra shift/add work stays below one event per product.
    assert!(
        a.reduced_events_per_product < 2.0,
        "events {}",
        a.reduced_events_per_product
    );
}

#[test]
fn systolic_gain_approaches_grid_perimeter() {
    let a = ablations::dataflow();
    let last = a.waves.len() - 1;
    let gain = a.sequential_steps[last] as f64 / a.systolic_steps[last] as f64;
    // rows + cols = 48 for the 8 x 40 grid.
    assert!((40.0..=48.0).contains(&gain), "asymptotic gain {gain}");
    // Gain grows monotonically with stream length.
    for i in 1..a.waves.len() {
        let prev = a.sequential_steps[i - 1] as f64 / a.systolic_steps[i - 1] as f64;
        let cur = a.sequential_steps[i] as f64 / a.systolic_steps[i] as f64;
        assert!(cur >= prev);
    }
}

#[test]
fn im2col_beats_direct_convolution_end_to_end() {
    let a = ablations::conv_dataflow();
    assert!(
        a.second.1 < a.first.1,
        "im2col {} vs direct {}",
        a.second.1,
        a.first.1
    );
}

#[test]
fn decoupled_bitline_design_wins_on_energy() {
    let a = ablations::lut_rows();
    let energy_of = |name: &str| {
        a.rows
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, total, _)| total)
            .unwrap()
    };
    let decoupled = energy_of("decoupled bitline");
    let shared = energy_of("shared bitline");
    assert!(decoupled < shared);
    // LUT-access component collapses by orders of magnitude.
    let lut_of = |name: &str| {
        a.rows
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, _, lut)| lut)
            .unwrap()
    };
    assert!(lut_of("decoupled bitline") < lut_of("shared bitline") / 100.0);
}

#[test]
fn gru_is_proportionally_cheaper_than_lstm() {
    let a = ablations::lstm_vs_gru();
    let ratio = a.second.1 / a.first.1;
    // Three gates vs four, plus fixed sequential overheads: between 0.6
    // and 1.0 of the LSTM time.
    assert!((0.6..1.0).contains(&ratio), "gru/lstm {ratio}");
}

#[test]
fn batch_scaling_monotonically_amortizes_bert() {
    let sweep = ablations::batch_sweep();
    for window in sweep.windows(2) {
        assert!(
            window[1].1 <= window[0].1,
            "batch {} slower per inference than batch {}",
            window[1].0,
            window[0].0
        );
    }
    // And saturates: doubling 16 -> 32 gains far less than 1 -> 2.
    let gain_small = sweep[0].1 / sweep[1].1;
    let gain_large = sweep[4].1 / sweep[5].1;
    assert!(gain_small > gain_large);
}
