//! Property tests over span-tree reconstruction (ISSUE 5): whatever
//! fault plan chaos throws at the recorded serving engine, the
//! [`TraceForest`] rebuilt from the event stream is balanced and
//! lossless — every span and every non-span event survives — and the
//! per-request critical paths folded out of it agree *exactly* with
//! the engine's own telemetry records. A separate test walks job
//! counts to pin down that the exec trace (and therefore its
//! reconstruction) is identical at any `--jobs`.

use bfree_fault::{FaultInjector, FaultPlan, RetryPolicy};
use bfree_obs::{EventKind, RequestPaths, RingRecorder, TraceForest};
use bfree_serve::{
    OpenLoopDriver, Outcome, SchedPolicy, ServeConfig, ServeError, ServingSim, TenantSpec,
};
use pim_nn::request::NetworkKind;
use proptest::prelude::*;

/// Virtual time driven per case; kept short so the cases stay fast.
const HORIZON_NS: u64 = 50_000_000;
/// Ring capacity; must hold every event the horizon can emit so the
/// lossless property is about reconstruction, not eviction.
const TRACE_CAPACITY: usize = 1 << 17;

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("lstm", NetworkKind::LstmTimit),
        TenantSpec::new("bert", NetworkKind::BertBase).with_priority(5),
    ]
}

fn config(retry: bool, shed: bool, deadline: bool) -> Result<ServeConfig, ServeError> {
    let mut builder = ServeConfig::builder()
        .policy(SchedPolicy::Priority)
        .max_batch(8)
        .batch_window_ns(100_000)
        .queue_capacity(256)
        .timeout_ns(Some(25_000_000));
    if retry {
        builder = builder.retry(RetryPolicy::standard());
    }
    if shed {
        builder = builder.shed_watermark(0.8);
    }
    if deadline {
        builder = builder.deadline_ns(Some(30_000_000));
    }
    builder.build()
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        0.0..0.05f64,
        0.0..0.5f64,
        prop_oneof![Just(None), Just(Some(15_000_000u64))],
        0.0..0.4f64,
        1.0..4.0f64,
        0.0..0.3f64,
    )
        .prop_map(|(lut, fail, recover, strag_rate, strag_mult, transient)| {
            FaultPlan::none()
                .with_lut_corruption(lut, 40)
                .with_slice_failures(fail, HORIZON_NS, recover)
                .with_stragglers(strag_rate, strag_mult)
                .with_transient_errors(transient)
        })
}

proptest! {
    /// Reconstruction is total: balanced, span-lossless and
    /// event-lossless under any fault plan and resilience mix.
    #[test]
    fn chaos_traces_reconstruct_lossless_and_balanced(
        plan in plan_strategy(),
        seed in any::<u64>(),
        retry in any::<bool>(),
        shed in any::<bool>(),
        deadline in any::<bool>(),
    ) {
        let cfg = config(retry, shed, deadline).expect("constants are valid");
        let slices = cfg.base.geometry.slices();
        let injector = FaultInjector::new(plan, seed, slices, 512).expect("plan in range");
        let recorder = RingRecorder::new(TRACE_CAPACITY);
        let mut sim = ServingSim::builder(cfg, tenants())
            .recorder(recorder)
            .injector(injector)
            .build()
            .expect("constants are valid");
        let mut driver = OpenLoopDriver::new(seed, vec![2_000.0, 50.0]);
        driver.drive(&mut sim, HORIZON_NS);
        sim.run_to_idle();

        prop_assert_eq!(
            sim.recorder().dropped(), 0,
            "the capacity must hold the horizon for losslessness to be testable"
        );
        let events = sim.recorder().events();
        let spans = events.iter().filter(|e| e.kind == EventKind::Span).count();
        let forest = TraceForest::from_ring(sim.recorder());
        prop_assert!(forest.is_balanced(), "issues: {:?}", forest.issues);
        prop_assert_eq!(forest.span_count(), spans, "spans lost in reconstruction");
        prop_assert_eq!(
            forest.events_in_order().len() + spans,
            events.len(),
            "non-span events lost in reconstruction"
        );

        // Critical paths folded from the trace match telemetry exactly.
        let paths = RequestPaths::from_events(&events);
        let records = sim.telemetry().records();
        let completed: Vec<_> = records
            .iter()
            .filter(|r| r.outcome == Outcome::Completed)
            .collect();
        prop_assert_eq!(paths.len(), completed.len());
        for record in completed {
            let path = paths
                .paths()
                .iter()
                .find(|p| p.request_id == record.request_id);
            let Some(path) = path else {
                return Err(TestCaseError::Fail(format!(
                    "request {} completed without a reconstructed path",
                    record.request_id
                )));
            };
            prop_assert_eq!(path.total_ns, (record.complete_ns - record.submit_ns) as f64);
            prop_assert_eq!(path.queue_ns, record.queue_ns() as f64);
            let tiled: f64 = path.stages().iter().map(|(_, ns)| ns).sum();
            prop_assert_eq!(tiled, path.total_ns, "stages must tile the total exactly");
        }
    }
}

/// The recorded exec stream — and with it the reconstructed tree — is
/// byte-identical at any job count, and the root span stays
/// bit-identical to the report total. `set_max_jobs` is process-global,
/// so the job counts are walked inside one test (see
/// parallel_determinism.rs).
#[test]
fn exec_trace_reconstruction_is_identical_at_any_job_count() {
    let trace = || {
        let recorder = RingRecorder::new(TRACE_CAPACITY);
        let sim = bfree::BfreeSimulator::new(bfree::BfreeConfig::paper_default());
        let report = sim.run_recorded(&pim_nn::networks::inception_v3(), 1, &recorder);
        (recorder, report)
    };

    bfree::par::set_max_jobs(1);
    let (ring, report) = trace();
    let reference = format!("{:?}", ring.events());
    let forest = TraceForest::from_ring(&ring);
    assert!(forest.is_balanced(), "issues: {:?}", forest.issues);
    assert_eq!(forest.roots.len(), 1, "one run, one root");
    let root = &forest.roots[0];
    assert_eq!(root.event.name, "run");
    assert_eq!(
        root.dur_ns().to_bits(),
        report.total_latency().nanoseconds().to_bits(),
        "root span must be bit-identical to the report total"
    );

    for jobs in [3usize, 8] {
        bfree::par::set_max_jobs(jobs);
        let (ring, _) = trace();
        assert_eq!(
            format!("{:?}", ring.events()),
            reference,
            "jobs={jobs} changed the recorded stream"
        );
    }
    bfree::par::set_max_jobs(0); // restore auto-detection
}
