//! Property tests over the data-integrity layer: the SECDED(72,64)
//! code's correction/detection guarantees hold for *every* data word,
//! the scrubber restores a flipped LUT bit-identically to its
//! seed-regenerated golden image, and the bit-flip injector's decision
//! streams are pure functions of `(seed, stream, index)` — which is what
//! makes `results/sdc.csv` reproducible at any `--jobs` count.

use std::fmt::Write as _;

use bfree_experiments as exp;
use bfree_fault::{FaultInjector, FaultPlan};
use pim_lut::secded::{self, Decoded};
use pim_lut::{LutImage, MultLut, ProtectedLut, Protection};
use proptest::prelude::*;

fn golden_lut(protection: Protection) -> ProtectedLut {
    ProtectedLut::from_image(&LutImage::from_mult_table(&MultLut::new()), protection)
}

proptest! {
    /// Clean round-trip plus exhaustive single-flip correction: for any
    /// data word, every one of the 72 possible single flips is located
    /// and corrected back to the original data.
    #[test]
    fn secded_corrects_every_single_flip(data in any::<u64>()) {
        let code = secded::encode(data);
        prop_assert_eq!(secded::decode(code), Decoded::Clean { data });
        for bit in 0..secded::CODE_BITS {
            match secded::decode(secded::flip_bit(code, bit)) {
                Decoded::Corrected { data: decoded, bit: located } => {
                    prop_assert_eq!(decoded, data, "flip at {} miscorrected", bit);
                    prop_assert_eq!(located, bit);
                }
                other => prop_assert!(false, "flip at {} decoded as {:?}", bit, other),
            }
        }
    }

    /// Every double flip is *detected*, never silently (mis)corrected:
    /// any distinct pair of flipped code bits decodes `Uncorrectable`.
    #[test]
    fn secded_detects_every_double_flip(data in any::<u64>(), a in 0..72u32, offset in 1..72u32) {
        let b = (a + offset) % secded::CODE_BITS;
        let code = secded::flip_bit(secded::flip_bit(secded::encode(data), a), b);
        prop_assert_eq!(secded::decode(code), Decoded::Uncorrectable);
    }

    /// Scrubber conservation under SECDED: rows taking one or two flips
    /// (corrected in place, or detected and seed-regenerated) always
    /// come out of a scrub pass bit-identical to the golden image.
    #[test]
    fn secded_scrub_restores_the_golden_image(
        raw_hits in proptest::collection::vec((0usize..7, 0..72u32, 0..72u32), 1..7)
    ) {
        // One hit per row (first strategy entry wins): a third flip on a
        // row would exceed SECDED's detection guarantee by design.
        let mut hits: std::collections::BTreeMap<usize, (u32, u32)> = std::collections::BTreeMap::new();
        for (row, first, offset) in raw_hits {
            hits.entry(row).or_insert((first, offset));
        }
        let mut lut = golden_lut(Protection::Secded);
        let (mut singles, mut doubles) = (0u32, 0u32);
        for (&row, &(first, offset)) in &hits {
            lut.inject(row, first);
            if offset == 0 {
                singles += 1;
            } else {
                // A second, distinct flip makes the row uncorrectable.
                lut.inject(row, (first + offset) % 72);
                doubles += 1;
            }
        }
        let report = lut.scrub_pass();
        prop_assert_eq!(report.corrected, singles);
        prop_assert_eq!(report.repaired, doubles);
        prop_assert_eq!(report.silent, 0);
        prop_assert!(lut.matches_golden(), "scrub left the LUT diverged from golden");
        // A second pass over the restored LUT is a no-op.
        let quiet = lut.scrub_pass();
        prop_assert_eq!(quiet.corrected + quiet.repaired + quiet.silent, 0);
    }

    /// Parity conservation: any set of single-flipped rows is detected
    /// and seed-regenerated back to golden; bare rows stay corrupted
    /// and the audit sees exactly the flipped rows.
    #[test]
    fn parity_repairs_singles_and_bare_rows_stay_corrupt(
        raw_rows in proptest::collection::vec(0usize..7, 1..7),
        bit in 0..64u32,
    ) {
        let rows: std::collections::BTreeSet<usize> = raw_rows.into_iter().collect();
        let mut parity = golden_lut(Protection::Parity);
        let mut bare = golden_lut(Protection::None);
        for &row in &rows {
            parity.inject(row, bit);
            bare.inject(row, bit);
        }
        let report = parity.scrub_pass();
        prop_assert_eq!(report.repaired, rows.len() as u32);
        prop_assert!(parity.matches_golden());
        let report = bare.scrub_pass();
        prop_assert_eq!(report.corrected + report.repaired, 0);
        prop_assert_eq!(report.silent, rows.len() as u32);
        prop_assert!(!bare.matches_golden());
    }

    /// The injector's flip streams are pure: two injectors built from
    /// the same `(plan, seed)` agree on every draw, and the flip
    /// *decision* is independent of the protection scheme's word width
    /// (only the landing position varies) — the fairness contract the
    /// sdc sweep's cross-protection comparison rests on.
    #[test]
    fn bit_flip_streams_are_pure_and_scheme_fair(
        seed in any::<u64>(),
        slice in 0usize..14,
        row in 0..2240u32,
        epoch in 0..32u64,
    ) {
        let plan = FaultPlan::none().with_bit_flips(0.05, 0.01, 0.01);
        let a = FaultInjector::new(plan.clone(), seed, 14, 2240).unwrap();
        let b = FaultInjector::new(plan, seed, 14, 2240).unwrap();
        for word_bits in [64u32, 65, 72] {
            prop_assert_eq!(
                a.lut_row_flips(slice, row, epoch, word_bits),
                b.lut_row_flips(slice, row, epoch, word_bits)
            );
        }
        let hit = |bits: u32| a.lut_row_flips(slice, row, epoch, bits).map(|h| h.is_some());
        prop_assert_eq!(hit(64), hit(65));
        prop_assert_eq!(hit(64), hit(72));
        prop_assert_eq!(a.weight_byte_flip(epoch), b.weight_byte_flip(epoch));
        prop_assert_eq!(a.operand_flip(epoch, row as u64), b.operand_flip(epoch, row as u64));
    }
}

/// The end-to-end reproducibility claim: `sdc.csv` is byte-identical at
/// every job count. `set_max_jobs` is process-global, so the walk lives
/// in one test function and restores auto-detection at the end.
#[test]
fn sdc_sweep_is_identical_at_every_job_count() {
    let snapshot = || {
        let sweep = exp::sdc::run(exp::sdc::DEFAULT_SEED).expect("sdc sweep runs");
        let mut out = String::new();
        for row in exp::sdc::csv_rows(&sweep) {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    };
    bfree::par::set_max_jobs(1);
    let serial = snapshot();
    for jobs in [2, 8] {
        bfree::par::set_max_jobs(jobs);
        assert_eq!(serial, snapshot(), "sdc.csv diverged at jobs={jobs}");
    }
    bfree::par::set_max_jobs(0); // restore auto-detection
}
