//! Mapping and capacity invariants over all five evaluation networks.

use bfree::prelude::*;
use bfree::Mapping;
use pim_arch::CacheGeometry;
use proptest::prelude::*;

fn check_mapping(mapping: &Mapping, geom: &CacheGeometry) {
    let total = geom.total_subarrays();
    assert!(mapping.replicas >= 1);
    assert!(mapping.subarrays_per_replica >= 1);
    assert!(
        mapping.active_subarrays <= total,
        "{}: {} active > {total}",
        mapping.layer,
        mapping.active_subarrays
    );
    assert!(mapping.utilization > 0.0 && mapping.utilization <= 1.0);
    assert!(mapping.macs_per_cycle() > 0.0);
}

#[test]
fn every_layer_of_every_network_maps() {
    let geom = CacheGeometry::xeon_l3_35mb();
    let mapper = Mapper::new(geom.clone());
    for (net, _) in networks::table2_networks() {
        for layer in net.weight_layers() {
            for mode in [BceMode::Conv, BceMode::MatMul] {
                for precision in [Precision::Int4, Precision::Int8, Precision::Int16] {
                    let mapping = mapper.map_layer_tiled(layer, mode, precision);
                    check_mapping(&mapping, &geom);
                }
            }
        }
    }
}

#[test]
fn replica_capacity_is_respected() {
    // replicas * weight bytes never exceed the usable cache capacity
    // (for layers that fit at all).
    let geom = CacheGeometry::xeon_l3_35mb();
    let mapper = Mapper::new(geom.clone());
    let usable = geom.usable_capacity().get();
    for (net, _) in networks::table2_networks() {
        for layer in net.weight_layers() {
            if let Ok(mapping) = mapper.map_layer(layer, BceMode::Conv, Precision::Int8) {
                let per_replica_capacity =
                    mapping.subarrays_per_replica as u64 * geom.usable_subarray_capacity().get();
                assert!(
                    per_replica_capacity >= layer.weight_bytes(8),
                    "{}: replica too small",
                    layer.name()
                );
                assert!(
                    mapping.replicas as u64 * layer.weight_bytes(8) <= usable,
                    "{}: replicas overflow the cache",
                    layer.name()
                );
            }
        }
    }
}

#[test]
fn lstm_and_bert_fit_their_paper_claims() {
    let geom = CacheGeometry::xeon_l3_35mb();
    // §V-D: "The whole LSTM model fits within the SRAM cache."
    let lstm = networks::lstm_timit();
    assert!(lstm.weight_bytes(8) < geom.usable_capacity().get());
    // §V-D: BERT-base layers replicate; BERT-large replicates less.
    let mapper = Mapper::new(geom);
    let base_attn = networks::bert_base();
    let large_attn = networks::bert_large();
    let base_map = mapper
        .map_layer(
            base_attn.weight_layers().next().unwrap(),
            BceMode::MatMul,
            Precision::Int8,
        )
        .unwrap();
    let large_map = mapper
        .map_layer(
            large_attn.weight_layers().next().unwrap(),
            BceMode::MatMul,
            Precision::Int8,
        )
        .unwrap();
    assert!(base_map.replicas > large_map.replicas);
}

proptest! {
    #[test]
    fn prop_synthetic_conv_layers_map_consistently(
        out_c in 1usize..512,
        in_c in 1usize..256,
        k in 1usize..6,
        hw in 4usize..64,
    ) {
        prop_assume!(hw >= k);
        let layer = pim_nn::LayerSpec::new(
            "synthetic",
            pim_nn::LayerOp::Conv2d {
                out_channels: out_c,
                kernel: (k, k),
                stride: (1, 1),
                padding: (0, 0),
            },
            pim_nn::TensorShape::chw(in_c, hw, hw),
        ).unwrap();
        let geom = CacheGeometry::xeon_l3_35mb();
        let mapper = Mapper::new(geom.clone());
        let mapping = mapper.map_layer_tiled(&layer, BceMode::Conv, Precision::Int8);
        check_mapping(&mapping, &geom);
        // Work conservation: active subarrays never exceed what the
        // replicas provide.
        prop_assert!(
            mapping.active_subarrays
                <= mapping.replicas * mapping.subarrays_per_replica
        );
    }
}
