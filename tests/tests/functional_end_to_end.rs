//! End-to-end functional validation across crates: quantized inference
//! through the real LUT datapath (49-entry multiply table, nibble ROM,
//! PWL activations, Taylor division) must agree with the f32 reference
//! within analytic quantization bounds — on deeper pipelines than the
//! per-crate unit tests cover.

use bfree::functional::{dot_error_bound, FunctionalPipeline};
use pim_nn::reference::{self, LstmWeights};
use pim_nn::tensor::{Tensor, TensorShape};
use pim_nn::workload::WorkloadGen;

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[test]
fn three_layer_cnn_through_the_lut_datapath() {
    let mut gen = WorkloadGen::new(4242);
    let pipeline = FunctionalPipeline::new().unwrap();

    let input = gen.uniform_f32(TensorShape::chw(3, 16, 16), -1.0, 1.0);
    let f1 = gen.uniform_f32(TensorShape::new(vec![8, 3, 3, 3]), -0.4, 0.4);
    let f2 = gen.uniform_f32(TensorShape::new(vec![16, 8, 3, 3]), -0.25, 0.25);
    let fc = gen.uniform_f32(TensorShape::new(vec![10, 16 * 4 * 4]), -0.2, 0.2);
    let fc_b = gen.vector_f32(10, -0.05, 0.05);

    // LUT path.
    let c1 = pipeline
        .conv2d(&input, &f1, &[0.0; 8], (1, 1), (1, 1))
        .unwrap();
    let a1 = Tensor::from_vec(c1.shape().clone(), pipeline.relu(c1.data())).unwrap();
    let p1 = pipeline.max_pool2d(&a1, (2, 2), (2, 2)).unwrap();
    let c2 = pipeline
        .conv2d(&p1, &f2, &[0.0; 16], (1, 1), (1, 1))
        .unwrap();
    let a2 = Tensor::from_vec(c2.shape().clone(), pipeline.relu(c2.data())).unwrap();
    let p2 = pipeline.max_pool2d(&a2, (2, 2), (2, 2)).unwrap();
    let logits = pipeline.linear(p2.data(), &fc, &fc_b).unwrap();
    let probs = pipeline.softmax(&logits).unwrap();

    // Reference path.
    let rc1 = reference::conv2d(&input, &f1, &[0.0; 8], (1, 1), (1, 1)).unwrap();
    let ra1 = Tensor::from_vec(rc1.shape().clone(), reference::relu(rc1.data())).unwrap();
    let rp1 = reference::max_pool2d(&ra1, (2, 2), (2, 2)).unwrap();
    let rc2 = reference::conv2d(&rp1, &f2, &[0.0; 16], (1, 1), (1, 1)).unwrap();
    let ra2 = Tensor::from_vec(rc2.shape().clone(), reference::relu(rc2.data())).unwrap();
    let rp2 = reference::max_pool2d(&ra2, (2, 2), (2, 2)).unwrap();
    let rlogits = reference::linear(rp2.data(), &fc, &fc_b).unwrap();
    let rprobs = reference::softmax(&rlogits);

    // Layer-1 output within the conv quantization bound.
    let bound1 = dot_error_bound(27, 1.0 / 127.0, 0.4 / 127.0, 1.0, 0.4) as f32;
    assert!(max_abs_diff(c1.data(), rc1.data()) <= bound1);

    // Final prediction agrees.
    let argmax_f64 = |v: &[f64]| {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
    };
    let argmax_f32 = |v: &[f32]| {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
    };
    assert_eq!(
        argmax_f64(&probs),
        argmax_f32(&rprobs),
        "prediction diverged"
    );
    for (p, r) in probs.iter().zip(rprobs.iter()) {
        assert!(
            (p - *r as f64).abs() < 0.12,
            "probability drifted: {p} vs {r}"
        );
    }
}

#[test]
fn lstm_cell_with_lut_gate_activations() {
    // Run an LSTM step where the gate pre-activations come from the LUT
    // matmul and the sigmoids/tanh from the PWL tables; compare against
    // the pure-f32 cell.
    let mut gen = WorkloadGen::new(77);
    let pipeline = FunctionalPipeline::new().unwrap();
    let (input, hidden) = (6usize, 8usize);
    let weights = LstmWeights {
        w_input: gen.uniform_f32(TensorShape::new(vec![4 * hidden, input]), -0.4, 0.4),
        w_hidden: gen.uniform_f32(TensorShape::new(vec![4 * hidden, hidden]), -0.4, 0.4),
        bias: gen.vector_f32(4 * hidden, -0.1, 0.1),
    };
    let x = gen.vector_f32(input, -1.0, 1.0);
    let h = gen.vector_f32(hidden, -0.5, 0.5);
    let c = gen.vector_f32(hidden, -0.5, 0.5);

    // LUT path: gates = Wx*x + Wh*h + b through quantized matmuls.
    let gx = pipeline
        .linear(&x, &weights.w_input, &weights.bias)
        .unwrap();
    let zero = vec![0.0f32; 4 * hidden];
    let gh = pipeline.linear(&h, &weights.w_hidden, &zero).unwrap();
    let gates: Vec<f32> = gx.iter().zip(&gh).map(|(a, b)| a + b).collect();
    let i_gate = pipeline.sigmoid(&gates[0..hidden]);
    let f_gate = pipeline.sigmoid(&gates[hidden..2 * hidden]);
    let g_gate = pipeline.tanh(&gates[2 * hidden..3 * hidden]);
    let o_gate = pipeline.sigmoid(&gates[3 * hidden..4 * hidden]);
    let mut c_next = vec![0.0f64; hidden];
    let mut h_next = vec![0.0f64; hidden];
    for j in 0..hidden {
        c_next[j] = f_gate[j] * c[j] as f64 + i_gate[j] * g_gate[j];
        let (t, _) = (c_next[j].tanh(), ());
        h_next[j] = o_gate[j] * t;
    }

    // Reference.
    let (rh, rc) = reference::lstm_cell(&x, &h, &c, &weights).unwrap();
    for j in 0..hidden {
        assert!(
            (c_next[j] - rc[j] as f64).abs() < 0.05,
            "c[{j}] {c_next:?} vs {rc:?}"
        );
        assert!(
            (h_next[j] - rh[j] as f64).abs() < 0.05,
            "h[{j}] {h_next:?} vs {rh:?}"
        );
    }
}

#[test]
fn rom_and_subarray_lut_paths_agree() {
    // The two multiply paths (hardwired ROM vs 49-entry subarray LUT)
    // must be bit-identical on the integer datapath.
    use pim_bce::{Bce, BceMode, MulPath, Precision};
    let rom = Bce::with_mul_path(BceMode::Conv, MulPath::HardwiredRom).unwrap();
    let lut = Bce::with_mul_path(BceMode::Conv, MulPath::SubarrayLut).unwrap();
    let mut gen = WorkloadGen::new(5);
    let w = gen.random_i8(TensorShape::vector(256));
    let x = gen.random_i8(TensorShape::vector(256));
    let (a, _) = rom.dot_conv(w.data(), x.data(), Precision::Int8);
    let (b, _) = lut.dot_conv(w.data(), x.data(), Precision::Int8);
    assert_eq!(a, b);
}

#[test]
fn bce_and_nn_requantizers_agree() {
    use pim_bce::{Bce, BceMode};
    use pim_nn::Requantizer;
    let bce = Bce::new(BceMode::Conv).unwrap();
    for scale in [0.9f64, 0.5, 0.01, 0.0007] {
        for zp in [0i32, -5, 17] {
            let requant = Requantizer::from_scale(scale, zp);
            let accs: Vec<i32> = vec![0, 1, -1, 999, -999, 100_000, -100_000, i32::MAX / 4];
            let via_nn = requant.apply_all(&accs);
            let (via_bce, _) = bce.requantize(&accs, requant.multiplier(), requant.shift(), zp);
            assert_eq!(via_nn, via_bce, "scale {scale} zp {zp}");
        }
    }
}
