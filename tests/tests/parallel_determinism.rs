//! The parallel runner's determinism contract (ISSUE 2): every CSV and
//! headline number must be byte-identical whether the sweeps run
//! serially (`--jobs 1`) or on any number of workers, and across
//! repeated runs.
//!
//! `set_max_jobs` is process-global, and the test harness runs `#[test]`
//! functions concurrently, so everything lives in ONE test function that
//! walks the job counts sequentially and restores auto-detection at the
//! end.

use std::fmt::Write as _;

use bfree_experiments as exp;

/// Renders every swept experiment's numeric output into one string —
/// full precision via `{:?}`'s shortest-roundtrip floats, so a single
/// ulp of divergence between job counts fails the comparison.
fn snapshot() -> String {
    let mut out = String::new();

    let fig12 = exp::fig12::run();
    let _ = writeln!(
        out,
        "fig12 {:?} {:?} {:?}",
        fig12.speedup, fig12.energy_gain, fig12.module_runtimes
    );

    let fig13 = exp::fig13::run();
    let _ = writeln!(
        out,
        "fig13 {:?} {:?}",
        fig13.compute_speedup, fig13.layer_compute
    );

    let fig14 = exp::fig14::run();
    for p in &fig14.points {
        let _ = writeln!(
            out,
            "fig14 {:?} {} {} {:?} {:?}",
            p.memory, p.batch, p.mixed, p.latency_ms, p.load_fraction
        );
    }

    for r in exp::table3::run().expect("table3 rows valid") {
        let _ = writeln!(
            out,
            "table3 {} {} {:?} {:?}",
            r.network, r.batch, r.latency_ms, r.energy_j
        );
    }

    for r in exp::headline::run() {
        let _ = writeln!(out, "headline {} {} {:?}", r.network, r.batch, r.gains);
    }

    for (name, total, lut) in exp::ablations::lut_rows().rows {
        let _ = writeln!(out, "lut_rows {name} {total:?} {lut:?}");
    }
    for (b, ms) in exp::ablations::batch_sweep() {
        let _ = writeln!(out, "batch_sweep {b} {ms:?}");
    }

    for r in exp::extensions::run() {
        let _ = writeln!(
            out,
            "extensions {} {} {:?}",
            r.network, r.batch, r.latency_ms
        );
    }

    let serving = exp::serving::run().expect("serving sweep valid");
    for row in exp::serving::csv_rows(&serving) {
        let _ = writeln!(out, "serving {}", row.join(","));
    }

    // The chaos sweep carries the retry/backoff schedules: identical
    // rows across job counts means identical retry timing everywhere.
    let chaos = exp::chaos::run(exp::chaos::DEFAULT_SEED).expect("chaos sweep valid");
    for row in exp::chaos::csv_rows(&chaos) {
        let _ = writeln!(out, "chaos {}", row.join(","));
    }

    out
}

#[test]
fn outputs_are_byte_identical_across_job_counts_and_reruns() {
    // Serial reference, run twice: the sweeps themselves must be
    // deterministic before parallelism enters the picture.
    bfree::par::set_max_jobs(1);
    let serial = snapshot();
    assert_eq!(serial, snapshot(), "serial path must be reproducible");

    for jobs in [4usize, 8] {
        bfree::par::set_max_jobs(jobs);
        let parallel = snapshot();
        assert_eq!(
            serial, parallel,
            "jobs={jobs} output diverged from the serial path"
        );
    }

    bfree::par::set_max_jobs(0); // restore auto-detection
}
