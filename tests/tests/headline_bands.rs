//! The reproduction contract: every headline number of the paper must
//! come out of the simulator with the right *shape* — same winner,
//! comparable factor. Bands are deliberately generous (the substrate is
//! a simulator, not the authors' 16 nm testbed) but tight enough that a
//! regression in any model breaks them.

use bfree_experiments as exp;

fn assert_band(what: &str, measured: f64, lo: f64, hi: f64) {
    assert!(
        (lo..=hi).contains(&measured),
        "{what}: measured {measured:.3} outside [{lo}, {hi}]"
    );
}

#[test]
fn neural_cache_headline_shape_holds() {
    // Paper: 1.72x speedup, 3.14x energy on Inception-v3.
    let fig12 = exp::fig12::run();
    assert_band("speedup vs Neural Cache", fig12.speedup, 1.3, 2.3);
    assert_band("energy vs Neural Cache", fig12.energy_gain, 2.2, 4.2);
    // BFree must win both.
    assert!(fig12.speedup > 1.0);
    assert!(fig12.energy_gain > 1.0);
}

#[test]
fn neural_cache_phase_claims_hold() {
    let fig12 = exp::fig12::run();
    // §V-D: ~80% of BFree energy is DRAM weight loading.
    assert_band(
        "BFree DRAM energy share",
        fig12.bfree_dram_energy_fraction,
        0.6,
        0.9,
    );
    // Fig. 12(d): SA access + BCE dominate the cache energy.
    assert_band(
        "SA+BCE cache share",
        fig12.bfree_sa_bce_cache_fraction,
        0.7,
        1.0,
    );
    // Fig. 12(c): Neural Cache spends ~30% on input load + reduction.
    assert_band(
        "NC input-load+reduction share",
        fig12.neural_cache_overhead_fraction,
        0.2,
        0.4,
    );
}

#[test]
fn every_inception_module_favors_bfree() {
    // Fig. 12(a): BFree is faster on every plotted module.
    let fig12 = exp::fig12::run();
    for (module, ours, theirs) in &fig12.module_runtimes {
        assert!(
            theirs > ours,
            "module {module}: BFree {ours:.1} us vs Neural Cache {theirs:.1} us"
        );
    }
}

#[test]
fn eyeriss_headline_shape_holds() {
    // Paper: 3.97x compute speedup at iso-area.
    let fig13 = exp::fig13::run();
    assert_band(
        "compute speedup vs Eyeriss",
        fig13.compute_speedup,
        2.5,
        6.0,
    );
}

#[test]
fn table3_bfree_latencies_near_paper() {
    let rows = exp::table3::run().expect("table3 networks all resolve");
    for (row, paper) in rows.iter().zip(exp::table3::PAPER_ROWS.iter()) {
        let measured = row.latency_ms.2;
        let ratio = measured / paper.4;
        assert!(
            (0.3..=3.0).contains(&ratio),
            "{} b{}: BFree {measured:.3} ms vs paper {} ms",
            row.network,
            row.batch,
            paper.4
        );
        // The orderings the paper reports must hold everywhere.
        assert!(
            row.cpu_speedup() > 1.0,
            "{} b{} loses to CPU",
            row.network,
            row.batch
        );
        assert!(
            row.gpu_speedup() > 1.0,
            "{} b{} loses to GPU",
            row.network,
            row.batch
        );
        assert!(row.cpu_energy_gain() > 1.0);
        assert!(row.gpu_energy_gain() > 1.0);
    }
}

#[test]
fn abstract_headline_bert_base_batch16() {
    // Abstract: 101x / 3x faster and 91x / 11x more energy efficient
    // than CPU / GPU on BERT-base.
    let rows = exp::table3::run().expect("table3 networks all resolve");
    let row = rows
        .iter()
        .find(|r| r.network == "BERT-base" && r.batch == 16)
        .expect("table3 covers BERT-base b16");
    assert_band(
        "BERT-base b16 vs CPU speedup",
        row.cpu_speedup(),
        50.0,
        200.0,
    );
    assert_band("BERT-base b16 vs GPU speedup", row.gpu_speedup(), 1.5, 6.0);
    assert_band(
        "BERT-base b16 vs CPU energy",
        row.cpu_energy_gain(),
        45.0,
        240.0,
    );
    assert_band(
        "BERT-base b16 vs GPU energy",
        row.gpu_energy_gain(),
        5.0,
        30.0,
    );
}

#[test]
fn cnn_cpu_gpu_comparisons_shape_holds() {
    // §V-D: Inception-v3 259x/5.5x, VGG-16 193x/3x at batch 16.
    let rows = exp::headline::run();
    let inception = &rows[0];
    assert_band("Inception b16 vs CPU", inception.gains.0, 120.0, 600.0);
    assert_band("Inception b16 vs GPU", inception.gains.1, 2.0, 11.0);
    let vgg = &rows[1];
    assert_band("VGG b16 vs CPU", vgg.gains.0, 90.0, 500.0);
    assert_band("VGG b16 vs GPU", vgg.gains.1, 1.5, 7.0);
}

#[test]
fn fig2_and_fig4_match_paper_closely() {
    // These derive directly from the calibrated constants, so the band
    // is tight.
    for row in exp::fig2::comparisons(&exp::fig2::run()) {
        assert!(
            row.within(1.05),
            "{}: {} vs {}",
            row.label,
            row.measured,
            row.paper
        );
    }
    for row in exp::fig4::comparisons(&exp::fig4::run()) {
        assert!(
            row.within(1.05),
            "{}: {} vs {}",
            row.label,
            row.measured,
            row.paper
        );
    }
}

#[test]
fn fig14_mixed_precision_halves_runtime() {
    let fig14 = exp::fig14::run();
    for row in exp::fig14::comparisons(&fig14).expect("full sweep was run") {
        assert!(
            row.within(1.6),
            "{}: {} vs {}",
            row.label,
            row.measured,
            row.paper
        );
    }
    // Bandwidth ordering: HBM <= eDRAM <= DRAM at every point.
    use pim_arch::MemoryTechKind as M;
    for batch in [1usize, 16] {
        for mixed in [false, true] {
            let point = |m| fig14.point(m, batch, mixed).expect("full sweep was run");
            let d = point(M::Dram).latency_ms;
            let e = point(M::Edram).latency_ms;
            let h = point(M::Hbm).latency_ms;
            assert!(h <= e && e <= d, "batch {batch} mixed {mixed}: {d} {e} {h}");
        }
    }
}

#[test]
fn area_and_power_overheads_match_paper() {
    for row in exp::overheads::comparisons() {
        assert!(
            row.within(1.05),
            "{}: {} vs {}",
            row.label,
            row.measured,
            row.paper
        );
    }
}

#[test]
fn table2_statistics_within_tolerance() {
    for row in exp::table2::comparisons(&exp::table2::run()) {
        // Inception mults follow the original paper's convention and sit
        // ~1.2x above BFree's Table II; everything else is within 10%.
        let band = if row.label.contains("Inception-v3 mults") {
            1.3
        } else {
            1.1
        };
        assert!(
            row.within(band),
            "{}: {} vs {} (band {band})",
            row.label,
            row.measured,
            row.paper
        );
    }
}
