//! The observability layer's cross-crate contracts (ISSUE 3):
//!
//! * the uninstrumented path ([`bfree_obs::NullRecorder`]) leaves every
//!   experiment CSV bit-identical to the checked-in goldens under
//!   `results/`;
//! * folding the event stream reproduces the aggregate energy/latency
//!   models (the `attribution` experiment's 1% bound — exactly 0 in
//!   practice);
//! * configuration JSON round-trips across crates;
//! * the builder + prelude public API works end to end.

use std::path::Path;

use bfree::prelude::*;
use bfree_experiments as exp;
use bfree_serve::prelude::{SchedPolicy, ServeConfig, ServingSim, TenantSpec};
use pim_nn::request::NetworkKind;

#[test]
fn null_recorder_csvs_match_checked_in_goldens() {
    let dir = std::env::temp_dir().join("bfree_obs_golden_check");
    let written = exp::csv::write_all(&dir).expect("csv export succeeds");
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../results");
    assert!(
        written.len() >= 10,
        "expected a full export, got {written:?}"
    );
    for name in &written {
        let fresh = std::fs::read_to_string(dir.join(name)).expect("fresh csv readable");
        let golden = std::fs::read_to_string(golden_dir.join(name))
            .unwrap_or_else(|e| panic!("golden results/{name} missing: {e}"));
        assert_eq!(
            fresh, golden,
            "results/{name} diverged from the regenerated export"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn event_stream_attribution_matches_aggregates_within_tolerance() {
    let result = exp::attribution::run().expect("attribution runs");
    let worst = result.max_relative_error();
    assert!(
        worst <= exp::attribution::TOLERANCE,
        "attribution divergence {worst:.2e}"
    );
    // The construction is order-exact, so the bound is not merely met —
    // the two accounting paths agree bit for bit.
    assert_eq!(worst, 0.0);
}

#[test]
fn bfree_config_json_round_trips_through_text() {
    let config = BfreeConfig::builder()
        .memory(MemoryTech::hbm())
        .conv_dataflow(ConvDataflow::Im2col)
        .build()
        .expect("valid config");
    let text = config.to_json_string();
    let back = BfreeConfig::from_json_str(&text).expect("round-trip parses");
    assert_eq!(back, config);
    // A recorded run under the deserialized config matches the original.
    let net = networks::lstm_timit();
    let a = BfreeSimulator::new(config).run(&net, 1);
    let b = BfreeSimulator::new(back).run(&net, 1);
    assert_eq!(
        a.total_latency().nanoseconds().to_bits(),
        b.total_latency().nanoseconds().to_bits()
    );
}

#[test]
fn serve_config_json_round_trips_and_drives_identically() {
    let config = ServeConfig::builder()
        .policy(SchedPolicy::Sjf)
        .max_batch(4)
        .batch_window_ns(100_000)
        .timeout_ns(Some(20_000_000))
        .build()
        .expect("valid serve config");
    let back = ServeConfig::from_json_str(&config.to_json_string()).expect("round-trip parses");
    assert_eq!(back, config);

    let drive = |config: ServeConfig| {
        let specs = vec![TenantSpec::new("lstm", NetworkKind::LstmTimit)];
        let mut sim = ServingSim::new(config, specs).expect("sim builds");
        for i in 0..10 {
            sim.submit(0, i * 25_000);
        }
        sim.run_to_idle().csv_rows().join("\n")
    };
    assert_eq!(drive(config), drive(back));
}

#[test]
fn builder_and_prelude_cover_the_quickstart_path() {
    // Everything below resolves through the two preludes alone.
    let config = BfreeConfig::builder().build().expect("defaults validate");
    let sim = BfreeSimulator::new(config);
    let recorder = AggRecorder::new();
    let report = sim.run_recorded(&networks::lstm_timit(), 1, &recorder);
    assert!(report.total_latency().nanoseconds() > 0.0);
    let energy: f64 = recorder.energy_by_component().values().sum();
    assert_eq!(
        energy.to_bits(),
        report.energy.total().picojoules().to_bits()
    );
}

#[test]
fn serving_recorder_exports_a_chrome_loadable_trace() {
    use bfree_obs::{to_chrome_trace, JsonValue, RingRecorder};

    let mut sim = ServingSim::with_recorder(
        ServeConfig::paper_default(),
        vec![TenantSpec::new("lstm", NetworkKind::LstmTimit)],
        RingRecorder::new(8192),
    )
    .expect("sim builds");
    for i in 0..5 {
        sim.submit(0, i * 50_000);
    }
    sim.run_to_idle();
    let events = sim.recorder().events();
    assert!(!events.is_empty());
    let trace = to_chrome_trace(&events).to_string();
    let parsed = JsonValue::parse(&trace).expect("trace is valid JSON");
    let entries = parsed
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(entries.len() >= events.len());
}
