//! Release-effective guards for the LUT multiplier's accumulator width.
//!
//! `mul_u8`/`mul_u16` protect their partial-product accumulators with
//! `debug_assert!` only, which compiles away under `--release`. These
//! tests assert the *results* against native wide multiplication, so a
//! silent truncation cannot pass even in the release-mode CI job
//! (ISSUE 2: the `debug_assert!`-only bug class).

use pim_lut::LutMultiplier;

/// Every u8 x u8 product, bit-exact against native u16 multiplication —
/// 65,536 cases, including the 255 x 255 = 65,025 accumulator maximum
/// the `debug_assert!` guards.
#[test]
fn mul_u8_exhaustive_matches_native() {
    let mul = LutMultiplier::new();
    for a in 0..=u8::MAX {
        for b in 0..=u8::MAX {
            let (p, cost) = mul.mul_u8(a, b);
            assert_eq!(p, a as u16 * b as u16, "{a} x {b}");
            assert!(cost.lut_reads <= 4, "{a} x {b}: {} reads", cost.lut_reads);
        }
    }
}

/// u16 boundary operands: every combination of the values that maximize
/// or corner each nibble column of the 16-partial accumulation.
#[test]
fn mul_u16_boundaries_match_native() {
    let mul = LutMultiplier::new();
    let edges = [
        0u16,
        1,
        2,
        15,
        16,
        17,
        255,
        256,
        257,
        0x0F0F,
        0xF0F0,
        0x7FFF,
        0x8000,
        0x8001,
        0xFFF0,
        0xFFFE,
        u16::MAX,
    ];
    for &a in &edges {
        for &b in &edges {
            let (p, _) = mul.mul_u16(a, b);
            assert_eq!(p, a as u32 * b as u32, "{a} x {b}");
        }
    }
}

/// Pseudo-random u16 property sweep (deterministic LCG, no rand crate):
/// the LUT path must agree with native multiplication everywhere, not
/// just at the hand-picked edges.
#[test]
fn mul_u16_property_sweep_matches_native() {
    let mul = LutMultiplier::new();
    let mut state = 0x2545F4914F6CDD1Du64;
    for _ in 0..20_000 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = (state >> 16) as u16;
        let b = (state >> 40) as u16;
        let (p, _) = mul.mul_u16(a, b);
        assert_eq!(p, a as u32 * b as u32, "{a} x {b}");
    }
}

/// Signed paths ride on the unsigned ones; pin their extremes too
/// (`-128 * -128` is the i16 case the `debug_assert!` in `mul_i8`
/// watches).
#[test]
fn signed_extremes_match_native() {
    let mul = LutMultiplier::new();
    for &(a, b) in &[
        (i8::MIN, i8::MIN),
        (i8::MIN, i8::MAX),
        (i8::MAX, i8::MAX),
        (-1i8, i8::MIN),
    ] {
        let (p, _) = mul.mul_i8(a, b);
        assert_eq!(p as i32, a as i32 * b as i32, "{a} x {b}");
    }
    for &(a, b) in &[
        (i16::MIN, i16::MIN),
        (i16::MIN, i16::MAX),
        (i16::MAX, i16::MAX),
        (-1i16, i16::MIN),
    ] {
        let (p, _) = mul.mul_i16(a, b);
        assert_eq!(p as i64, a as i64 * b as i64, "{a} x {b}");
    }
}
