//! Property tests of the address-mapping substrate over *random*
//! geometries, not just the paper's: decompose/recompose must be a
//! bijection for any valid cache organization.

use pim_arch::{CacheAddress, CacheGeometry, SubarrayId};
use proptest::prelude::*;

fn arbitrary_geometry() -> impl Strategy<Value = CacheGeometry> {
    (
        1usize..8,  // slices
        1usize..5,  // banks
        1usize..8,  // subbanks
        1usize..10, // subarrays
        1usize..5,  // partitions
        4usize..64, // rows per partition
        prop_oneof![Just(32usize), Just(64), Just(128)],
    )
        .prop_map(|(sl, b, sb, sa, p, r, bits)| {
            CacheGeometry::new(sl, b, sb, sa, p, r, bits, (r / 4).clamp(1, 2))
                .expect("bounds keep the geometry valid")
        })
}

proptest! {
    #[test]
    fn decompose_recompose_is_identity(
        geom in arbitrary_geometry(),
        seed in any::<u64>(),
    ) {
        let capacity = geom.capacity().get();
        // Sample a handful of addresses including boundaries.
        let samples = [
            0,
            capacity - 1,
            seed % capacity,
            (seed / 3) % capacity,
            (seed / 7) % capacity,
        ];
        for &addr in &samples {
            let c = CacheAddress::decompose(&geom, addr).unwrap();
            prop_assert_eq!(c.recompose(&geom), addr);
            prop_assert!(c.subarray.slice < geom.slices());
            prop_assert!(c.subarray.bank < geom.banks_per_slice());
            prop_assert!(c.subarray.subbank < geom.subbanks_per_bank());
            prop_assert!(c.subarray.subarray < geom.subarrays_per_subbank());
            prop_assert!(c.partition < geom.partitions_per_subarray());
            prop_assert!(c.row < geom.rows_per_partition());
            prop_assert!(c.byte_in_row < geom.row_bytes().get() as usize);
        }
    }

    #[test]
    fn addresses_beyond_capacity_always_rejected(
        geom in arbitrary_geometry(),
        excess in 0u64..1_000_000,
    ) {
        let capacity = geom.capacity().get();
        prop_assert!(CacheAddress::decompose(&geom, capacity + excess).is_err());
    }

    #[test]
    fn flat_index_is_a_bijection(geom in arbitrary_geometry()) {
        let total = geom.total_subarrays();
        let mut seen = vec![false; total];
        for i in 0..total {
            let id = SubarrayId::from_flat_index(&geom, i).unwrap();
            let back = id.flat_index(&geom);
            prop_assert_eq!(back, i);
            prop_assert!(!seen[back], "index {} hit twice", back);
            seen[back] = true;
        }
        prop_assert!(SubarrayId::from_flat_index(&geom, total).is_err());
    }

    #[test]
    fn distinct_addresses_decompose_distinctly(
        geom in arbitrary_geometry(),
        seed in any::<u64>(),
    ) {
        let capacity = geom.capacity().get();
        let a = seed % capacity;
        let b = (seed.wrapping_mul(2654435761)) % capacity;
        prop_assume!(a != b);
        let ca = CacheAddress::decompose(&geom, a).unwrap();
        let cb = CacheAddress::decompose(&geom, b).unwrap();
        prop_assert_ne!(ca, cb);
    }

    #[test]
    fn capacity_equals_component_product(geom in arbitrary_geometry()) {
        let expected = geom.slices()
            * geom.banks_per_slice()
            * geom.subbanks_per_bank()
            * geom.subarrays_per_subbank()
            * geom.partitions_per_subarray()
            * geom.rows_per_partition()
            * geom.bits_per_row()
            / 8;
        prop_assert_eq!(geom.capacity().get(), expected as u64);
    }
}
