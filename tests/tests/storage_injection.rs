//! Failure injection against the byte-accurate storage model: corrupted
//! LUT rows must be detected by the configuration-integrity check, and
//! corrupted weight rows must change results (i.e. the execution really
//! reads the stored bytes).

use bfree::prelude::*;
use bfree::storage::WeightStore;
use pim_arch::SubarrayStorage;
use pim_bce::Bce;
use pim_lut::{LutImage, MultLut};
use pim_nn::workload::WorkloadGen;

fn place_layer() -> (WeightStore, Vec<i8>) {
    let config = BfreeConfig::paper_default();
    let mapper = Mapper::new(config.geometry.clone());
    let net = networks::vgg16();
    let layer = net.weight_layers().next().unwrap(); // conv1_1: 1792 params
    let mapping = mapper
        .map_layer(layer, BceMode::Conv, Precision::Int8)
        .expect("conv1_1 fits");
    let mut gen = WorkloadGen::new(321);
    let weights = gen
        .random_i8(pim_nn::TensorShape::vector(layer.params() as usize))
        .into_data();
    let store = WeightStore::place(&config.geometry, &mapping, &weights).unwrap();
    (store, weights)
}

#[test]
fn clean_store_passes_integrity_and_matches_direct_execution() {
    let (store, weights) = place_layer();
    store.verify_lut_integrity().unwrap();
    let mut gen = WorkloadGen::new(654);
    let inputs = gen
        .random_i8(pim_nn::TensorShape::vector(weights.len()))
        .into_data();
    let bce = Bce::new(BceMode::Conv).unwrap();
    let (stored, _, _) = store.dot(&bce, &inputs, Precision::Int8);
    let (direct, _) = bce.dot_conv(&weights, &inputs, Precision::Int8);
    assert_eq!(stored, direct);
}

#[test]
fn corrupted_lut_row_is_detected() {
    // A subarray configured with a bit-flipped multiply image must fail
    // the decode the integrity check relies on; a clean store passes.
    let geom = CacheGeometry::xeon_l3_35mb();
    let mut sa = SubarrayStorage::new(&geom);
    let image = LutImage::from_mult_table(&MultLut::new());
    let mut bytes = image.bytes().to_vec();
    bytes[17] ^= 0x08;
    sa.load_lut_image(&bytes).unwrap();
    let dumped = sa.dump_lut_image(49).unwrap();
    assert!(
        MultLut::from_image_bytes(&dumped).is_err(),
        "corruption went undetected"
    );

    let (store, _) = place_layer();
    store.verify_lut_integrity().unwrap();
}

#[test]
fn corrupted_weight_row_changes_results() {
    let geom = CacheGeometry::xeon_l3_35mb();
    let mut sa = SubarrayStorage::new(&geom);
    let weights: Vec<u8> = (0..64u8).collect();
    for (i, chunk) in weights.chunks(8).enumerate() {
        sa.write_row(0, 3 + i, chunk).unwrap();
    }
    // Baseline read-back.
    let mut original = Vec::new();
    for i in 0..8 {
        original.extend(sa.read_row(0, 3 + i).unwrap());
    }
    assert_eq!(original, weights);
    // Inject a bit flip into row 5.
    let mut row = sa.read_row(0, 5).unwrap();
    row[2] ^= 0x80;
    sa.write_row(0, 5, &row).unwrap();
    let mut corrupted = Vec::new();
    for i in 0..8 {
        corrupted.extend(sa.read_row(0, 3 + i).unwrap());
    }
    assert_ne!(corrupted, weights);
    // Exactly one byte differs.
    let diffs = corrupted
        .iter()
        .zip(&weights)
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(diffs, 1);
}

#[test]
fn storage_counters_track_injected_traffic() {
    let geom = CacheGeometry::xeon_l3_35mb();
    let mut sa = SubarrayStorage::new(&geom);
    assert_eq!(sa.data_reads() + sa.data_writes(), 0);
    sa.write_row(1, 100, &[7; 8]).unwrap();
    let _ = sa.read_row(1, 100).unwrap();
    let _ = sa.read_row(1, 100).unwrap();
    assert_eq!(sa.data_writes(), 1);
    assert_eq!(sa.data_reads(), 2);
    // Failed accesses do not count.
    assert!(sa.read_row(0, 0).is_err());
    assert_eq!(sa.data_reads(), 2);
}
