//! Property tests over the fault-injection layer (ISSUE 4): whatever
//! faults a plan throws at the serving engine, no request is ever lost
//! or duplicated — the conservation identity
//! `submitted = completed + rejected + queued + in_flight + pending_retries`
//! holds mid-run and fully drains at idle — and the retry schedule is a
//! pure function of the seed with its backoff capped at the ceiling,
//! jitter included.

use bfree_fault::{FaultInjector, FaultPlan, RetryPolicy};
use bfree_serve::{OpenLoopDriver, SchedPolicy, ServeConfig, ServeError, ServingSim, TenantSpec};
use pim_nn::request::NetworkKind;
use proptest::prelude::*;

/// Virtual time driven per case; kept short so 256 cases stay fast.
const HORIZON_NS: u64 = 50_000_000;

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("lstm", NetworkKind::LstmTimit),
        TenantSpec::new("bert", NetworkKind::BertBase).with_priority(5),
    ]
}

fn config(retry: bool, shed: bool, deadline: bool) -> Result<ServeConfig, ServeError> {
    let mut builder = ServeConfig::builder()
        .policy(SchedPolicy::Priority)
        .max_batch(8)
        .batch_window_ns(100_000)
        .queue_capacity(256)
        .timeout_ns(Some(25_000_000));
    if retry {
        builder = builder.retry(RetryPolicy::standard());
    }
    if shed {
        builder = builder.shed_watermark(0.8);
    }
    if deadline {
        builder = builder.deadline_ns(Some(30_000_000));
    }
    builder.build()
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        0.0..0.05f64,
        0.0..0.5f64,
        prop_oneof![Just(None), Just(Some(15_000_000u64))],
        0.0..0.4f64,
        1.0..4.0f64,
        0.0..0.3f64,
    )
        .prop_map(|(lut, fail, recover, strag_rate, strag_mult, transient)| {
            FaultPlan::none()
                .with_lut_corruption(lut, 40)
                .with_slice_failures(fail, HORIZON_NS, recover)
                .with_stragglers(strag_rate, strag_mult)
                .with_transient_errors(transient)
        })
}

/// Every bucket a request can sit in, summed at instant `now`.
fn accounted(sim: &ServingSim) -> u64 {
    let s = sim.telemetry().summary();
    s.completed + s.rejected + sim.queued() + sim.in_flight() + sim.pending_retries()
}

proptest! {
    /// Under an arbitrary fault plan and any mix of resilience
    /// mechanisms, the engine neither loses nor duplicates requests:
    /// the conservation identity holds at mid-run checkpoints and the
    /// terminal buckets absorb everything at idle.
    #[test]
    fn no_fault_plan_loses_or_duplicates_requests(
        plan in plan_strategy(),
        seed in any::<u64>(),
        retry in any::<bool>(),
        shed in any::<bool>(),
        deadline in any::<bool>(),
    ) {
        let cfg = config(retry, shed, deadline).expect("constants are valid");
        let slices = cfg.base.geometry.slices();
        let injector = FaultInjector::new(plan, seed, slices, 512).expect("plan in range");
        let mut sim = ServingSim::with_faults(cfg, tenants(), injector)
            .expect("constants are valid");
        let mut driver = OpenLoopDriver::new(seed, vec![2_000.0, 50.0]);
        driver.drive(&mut sim, HORIZON_NS);

        // Mid-run: run to a few checkpoints and audit the identity.
        for checkpoint in [HORIZON_NS / 4, HORIZON_NS / 2, HORIZON_NS] {
            sim.run_until(checkpoint);
            let submitted = sim.telemetry().summary().submitted;
            prop_assert_eq!(
                accounted(&sim), submitted,
                "conservation identity broken at {} ns", checkpoint
            );
        }

        let summary = sim.run_to_idle().summary();
        prop_assert_eq!(sim.queued(), 0);
        prop_assert_eq!(sim.in_flight(), 0);
        prop_assert_eq!(sim.pending_retries(), 0);
        prop_assert_eq!(summary.completed + summary.rejected, summary.submitted);
        prop_assert_eq!(sim.work_conservation_violations(), 0);
    }

    /// The backoff schedule is a pure function of
    /// `(seed, request, attempt)` — identical inputs give identical
    /// delays — and the ceiling holds with jitter included, at any
    /// attempt depth (including ones deep enough to overflow a naive
    /// `base << attempt`).
    #[test]
    fn backoff_is_deterministic_and_never_exceeds_the_ceiling(
        seed in any::<u64>(),
        request in any::<u64>(),
        attempt in 1u32..100,
        base in 1u64..10_000_000,
        headroom in 0u64..100_000_000,
        jitter in 0.0..1.0f64,
    ) {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff_ns: base,
            max_backoff_ns: base + headroom,
            jitter_frac: jitter,
        };
        policy.validate().expect("constructed within bounds");
        let delay = policy.backoff_ns(seed, request, attempt);
        prop_assert_eq!(
            delay,
            policy.backoff_ns(seed, request, attempt),
            "backoff must be pure in (seed, request, attempt)"
        );
        prop_assert!(
            delay <= policy.max_backoff_ns,
            "delay {} exceeds ceiling {} (jitter included)",
            delay, policy.max_backoff_ns
        );
        prop_assert!(delay >= 1, "an enabled policy always waits");
    }
}

/// Identical seeds produce identical runs down to the per-request
/// record stream — the retry schedule included — while a different seed
/// realizes a different fault trace.
#[test]
fn identical_seeds_give_identical_retry_schedules() {
    let run = |seed: u64| {
        let cfg = config(true, true, true).unwrap();
        let slices = cfg.base.geometry.slices();
        let plan = FaultPlan::none()
            .with_slice_failures(0.3, HORIZON_NS, Some(15_000_000))
            .with_stragglers(0.2, 3.0)
            .with_transient_errors(0.1);
        let injector = FaultInjector::new(plan, seed, slices, 512).unwrap();
        let mut sim = ServingSim::with_faults(cfg, tenants(), injector).unwrap();
        let mut driver = OpenLoopDriver::new(0xBF_EE, vec![2_000.0, 50.0]);
        driver.drive(&mut sim, HORIZON_NS);
        let telemetry = sim.run_to_idle();
        (
            format!("{:?}", telemetry.records()),
            telemetry.summary().retries,
        )
    };
    let (records_a, retries_a) = run(42);
    let (records_b, retries_b) = run(42);
    assert_eq!(
        records_a, records_b,
        "same seed must replay bit-identically"
    );
    assert_eq!(retries_a, retries_b);
    assert!(retries_a > 0, "10% transient errors must trigger retries");
    let (records_c, _) = run(43);
    assert_ne!(
        records_a, records_c,
        "a different seed must realize a different fault trace"
    );
}
