//! Property tests over the scheduling and program substrates: the ring,
//! kernel programs and the attention scheduler must satisfy their
//! invariants for arbitrary parameters, not just the paper's.

use bfree::AttentionSchedule;
use pim_arch::ring::RingInterconnect;
use pim_arch::Bytes;
use pim_bce::{ConfigBlock, KernelProgram, PimOp, Precision};
use pim_nn::networks::BertConfig;
use proptest::prelude::*;

proptest! {
    #[test]
    fn ring_hops_are_symmetric_and_bounded(
        slices in 2usize..32,
        from in 0usize..32,
        to in 0usize..32,
    ) {
        prop_assume!(from < slices && to < slices);
        let ring = RingInterconnect { slices, ..RingInterconnect::paper_default() };
        let forward = ring.hops_between(from, to);
        let backward = ring.hops_between(to, from);
        prop_assert_eq!(forward, backward);
        prop_assert!(forward <= ring.diameter());
    }

    #[test]
    fn ring_transfer_monotone_in_payload(
        slices in 2usize..16,
        kib in 1u64..512,
    ) {
        let ring = RingInterconnect { slices, ..RingInterconnect::paper_default() };
        let small = ring.transfer_time(Bytes::from_kib(kib), 0, 1);
        let large = ring.transfer_time(Bytes::from_kib(kib * 2), 0, 1);
        prop_assert!(large > small);
        let (t1, e1) = ring.broadcast(Bytes::from_kib(kib));
        let (t2, e2) = ring.broadcast(Bytes::from_kib(kib * 2));
        prop_assert!(t2 > t1);
        prop_assert!(e2 > e1);
    }

    #[test]
    fn kernel_program_total_is_sum_of_instructions(
        lengths in proptest::collection::vec(1u32..256, 1..12),
    ) {
        let mut program = KernelProgram::new();
        for &len in &lengths {
            program = program.push(ConfigBlock::new(
                PimOp::Conv { length: len },
                Precision::Int8,
                1,
                2,
                63,
            ));
        }
        let (timings, total) = program.execute();
        prop_assert_eq!(timings.len(), lengths.len());
        let sum: u64 = timings.iter().map(|t| t.end - t.start).sum();
        prop_assert_eq!(sum, total.count());
        // Windows tile the timeline without gaps or overlap.
        for pair in timings.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn attention_schedule_invariants_hold_for_any_throughput(
        matmul in 100.0f64..100_000.0,
        softmax in 1.0f64..10_000.0,
    ) {
        let s = AttentionSchedule::plan(&BertConfig::base(), matmul, softmax);
        // Overlap never loses to serial, and never beats the critical
        // path.
        prop_assert!(s.overlapped_cycles <= s.serial_cycles);
        let critical: u64 = ["Q", "P", "P'", "O", "out-proj"]
            .iter()
            .map(|n| {
                let (start, end) = s.window(n).unwrap();
                end - start
            })
            .sum();
        prop_assert!(s.overlapped_cycles >= critical);
        // Dependencies respected for every task.
        for (task, start, _) in &s.timeline {
            for dep in &task.deps {
                let (_, dep_end) = s.window(dep).unwrap();
                prop_assert!(*start >= dep_end, "{} started before {}", task.name, dep);
            }
        }
    }
}
