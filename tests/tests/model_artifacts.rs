//! Property tests over the `bfree-model` artifact format: encoding any
//! workload must round-trip bit-identically, and *no* corrupted,
//! truncated, misversioned or misaligned buffer may panic, UB or parse
//! — every rejection is a typed [`ModelError`].

use std::sync::OnceLock;

use bfree::{BfreeConfig, PrecisionPolicy};
use bfree_model::{encode_kind, ArtifactSpec, ModelArtifact, ModelError, WeightPayload};
use pim_bce::Precision;
use pim_nn::request::NetworkKind;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = NetworkKind> {
    prop_oneof![
        Just(NetworkKind::InceptionV3),
        Just(NetworkKind::Vgg16),
        Just(NetworkKind::LstmTimit),
        Just(NetworkKind::BertBase),
        Just(NetworkKind::BertLarge),
    ]
}

fn policy_strategy() -> impl Strategy<Value = PrecisionPolicy> {
    prop_oneof![
        Just(PrecisionPolicy::Uniform(Precision::Int8)),
        Just(PrecisionPolicy::Uniform(Precision::Int4)),
        Just(PrecisionPolicy::Uniform(Precision::Int16)),
        Just(PrecisionPolicy::mixed()),
    ]
}

/// A small seeded artifact, encoded once: the corruption properties
/// mutate copies of it.
fn lstm_seeded() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        encode_kind(
            NetworkKind::LstmTimit,
            &BfreeConfig::paper_default(),
            &ArtifactSpec::default(),
        )
    })
}

/// An inline-weights artifact, encoded once.
fn lstm_inline() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        encode_kind(
            NetworkKind::LstmTimit,
            &BfreeConfig::paper_default(),
            &ArtifactSpec {
                payload: WeightPayload::Inline,
                ..ArtifactSpec::default()
            },
        )
    })
}

proptest! {
    /// Any (workload, precision, version, seed) encodes to an artifact
    /// that parses, reports the same metadata back, and re-encodes from
    /// the *parsed* header byte-for-byte: nothing is lost in the
    /// round trip.
    #[test]
    fn any_spec_round_trips_bit_identically(
        kind in kind_strategy(),
        precision in policy_strategy(),
        model_version in 1u64..1 << 48,
        seed in any::<u64>(),
    ) {
        let config = BfreeConfig::paper_default();
        let spec = ArtifactSpec {
            model_version,
            precision: precision.clone(),
            payload: WeightPayload::Seeded,
            seed,
        };
        let bytes = encode_kind(kind, &config, &spec);
        let artifact = ModelArtifact::parse(&bytes).expect("fresh encode must parse");
        prop_assert_eq!(artifact.model_version(), model_version);
        prop_assert_eq!(artifact.weight_seed(), seed);
        prop_assert!(artifact.layer_count() > 0);
        prop_assert!(!artifact.inline_weights());
        // Re-encode purely from what the artifact reports.
        let rebuilt = encode_kind(
            kind,
            &config,
            &ArtifactSpec {
                model_version: artifact.model_version(),
                precision: artifact.precision_policy(),
                payload: WeightPayload::Seeded,
                seed: artifact.weight_seed(),
            },
        );
        prop_assert_eq!(&bytes, &rebuilt, "re-encode from parsed metadata drifted");
    }

    /// Inline payloads round-trip too, and every weight layer's bytes
    /// are exactly recoverable from the buffer.
    #[test]
    fn inline_weights_are_recoverable(model_version in 1u64..1 << 32) {
        let bytes = encode_kind(
            NetworkKind::LstmTimit,
            &BfreeConfig::paper_default(),
            &ArtifactSpec {
                model_version,
                payload: WeightPayload::Inline,
                ..ArtifactSpec::default()
            },
        );
        let artifact = ModelArtifact::parse(&bytes).expect("inline encode must parse");
        prop_assert!(artifact.inline_weights());
        for layer in artifact.layers() {
            if layer.is_weight_layer() {
                let weights = layer.weights().expect("inline weight layer has bytes");
                prop_assert_eq!(weights.len() as u64, layer.weight_len());
            } else {
                prop_assert!(layer.weights().is_none());
            }
        }
    }

    /// Truncating an artifact at *any* point is a typed error, never a
    /// panic — including cutting inside the header, a layer record, the
    /// LUT section or the footer.
    #[test]
    fn truncation_at_any_length_is_a_typed_error(cut in any::<usize>()) {
        let bytes = lstm_seeded();
        let cut = cut % bytes.len(); // every prefix, 0..len-1
        prop_assert!(ModelArtifact::parse(&bytes[..cut]).is_err());
        // Appending trailing garbage is rejected too: the header's
        // total length must match the buffer exactly.
        let mut padded = bytes.to_vec();
        padded.push(0);
        prop_assert!(matches!(
            ModelArtifact::parse(&padded),
            Err(ModelError::Truncated { .. })
        ));
    }

    /// Flipping any single bit anywhere in the buffer is rejected: the
    /// FNV-1a footer (or an earlier structural check) catches it.
    #[test]
    fn any_single_bit_flip_is_rejected(index in any::<usize>(), bit in 0u32..8) {
        let mut bytes = lstm_seeded().to_vec();
        let index = index % bytes.len();
        bytes[index] ^= 1 << bit;
        prop_assert!(
            ModelArtifact::parse(&bytes).is_err(),
            "bit {bit} of byte {index} flipped silently"
        );
    }

    /// Any format version other than the supported one is rejected with
    /// [`ModelError::UnsupportedVersion`] naming both versions.
    #[test]
    fn wrong_format_versions_are_rejected(version in any::<u16>()) {
        prop_assume!(version != bfree_model::FORMAT_VERSION);
        let mut bytes = lstm_seeded().to_vec();
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        match ModelArtifact::parse(&bytes) {
            Err(ModelError::UnsupportedVersion { found, supported }) => {
                prop_assert_eq!(found, version);
                prop_assert_eq!(supported, bfree_model::FORMAT_VERSION);
            }
            other => prop_assert!(false, "expected UnsupportedVersion, got {other:?}"),
        }
    }

    /// Parsing is alignment-independent: the same artifact at any byte
    /// offset inside a larger buffer yields identical metadata and
    /// weights (the zero-copy reader never assumes its input is
    /// aligned).
    #[test]
    fn misaligned_buffers_parse_identically(offset in 1usize..8) {
        let bytes = lstm_inline();
        let mut shifted = vec![0u8; offset];
        shifted.extend_from_slice(bytes);
        let aligned = ModelArtifact::parse(bytes).expect("aligned parse");
        let misaligned =
            ModelArtifact::parse(&shifted[offset..]).expect("misaligned parse must succeed");
        prop_assert_eq!(aligned.checksum(), misaligned.checksum());
        prop_assert_eq!(aligned.layer_count(), misaligned.layer_count());
        for (a, b) in aligned.layers().zip(misaligned.layers()) {
            prop_assert_eq!(a.name(), b.name());
            prop_assert_eq!(a.scale(), b.scale());
            prop_assert_eq!(a.weights(), b.weights());
        }
    }
}

#[test]
fn corrupt_magic_and_checksum_report_their_fields() {
    let mut bytes = lstm_seeded().to_vec();
    bytes[0] = b'X';
    assert!(matches!(
        ModelArtifact::parse(&bytes),
        Err(ModelError::BadMagic { .. })
    ));
    let mut bytes = lstm_seeded().to_vec();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    match ModelArtifact::parse(&bytes) {
        Err(ModelError::ChecksumMismatch { stored, computed }) => assert_ne!(stored, computed),
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}
