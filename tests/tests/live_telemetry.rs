//! Property tests over the live telemetry plane: log-bucketed histogram
//! merges must be associative, commutative, and lossless (merging is
//! how per-worker state becomes a fleet view, so any loss or order
//! dependence would corrupt every downstream snapshot); snapshot
//! sequences must be identical at any `--jobs` setting; and the
//! OpenMetrics exposition must carry every family with escaped labels.

use bfree_experiments as exp;
use bfree_obs::{LiveAccumulator, LiveEvent, LiveMetric, LogHistogram};
use proptest::collection::vec;
use proptest::prelude::*;

/// Histogram bounds used across the merge properties — merging requires
/// identical bounds, which is how the engines configure them.
const MIN_NS: u64 = 1_000;
const MAX_NS: u64 = 10_000_000_000;

fn histogram_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new(MIN_NS, MAX_NS).expect("bounds are valid");
    for &v in values {
        h.record(v);
    }
    h
}

fn merged(a: &LogHistogram, b: &LogHistogram) -> LogHistogram {
    let mut out = a.clone();
    out.merge(b).expect("bounds match");
    out
}

proptest! {
    /// Merge order never matters: a+b == b+a, bucket for bucket.
    #[test]
    fn histogram_merge_is_commutative(
        a in vec(any::<u64>(), 0..200),
        b in vec(any::<u64>(), 0..200),
    ) {
        let (ha, hb) = (histogram_of(&a), histogram_of(&b));
        prop_assert_eq!(merged(&ha, &hb), merged(&hb, &ha));
    }

    /// Merge grouping never matters: (a+b)+c == a+(b+c) — per-worker
    /// partials can be folded in any tree shape.
    #[test]
    fn histogram_merge_is_associative(
        a in vec(any::<u64>(), 0..150),
        b in vec(any::<u64>(), 0..150),
        c in vec(any::<u64>(), 0..150),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));
        prop_assert_eq!(
            merged(&merged(&ha, &hb), &hc),
            merged(&ha, &merged(&hb, &hc))
        );
    }

    /// Merging loses nothing: the merged histogram equals the histogram
    /// of the concatenated sample stream — same buckets, same count,
    /// same sum, same extrema.
    #[test]
    fn histogram_merge_is_lossless(
        a in vec(any::<u64>(), 0..200),
        b in vec(any::<u64>(), 0..200),
    ) {
        let (ha, hb) = (histogram_of(&a), histogram_of(&b));
        let m = merged(&ha, &hb);
        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        let direct = histogram_of(&concat);
        prop_assert_eq!(&m, &direct);
        prop_assert_eq!(m.count(), ha.count() + hb.count());
        prop_assert_eq!(m.sum(), ha.sum() + hb.sum());
        prop_assert_eq!(m.min_seen(), ha.min_seen().min(hb.min_seen()).or(ha.min_seen()).or(hb.min_seen()));
        prop_assert_eq!(m.max_seen(), ha.max_seen().max(hb.max_seen()));
    }

    /// `record_n` is exactly n `record`s.
    #[test]
    fn record_n_matches_repeated_record(value in any::<u64>(), n in 0u64..500) {
        let mut bulk = LogHistogram::new(MIN_NS, MAX_NS).unwrap();
        bulk.record_n(value, n);
        let mut one_by_one = LogHistogram::new(MIN_NS, MAX_NS).unwrap();
        for _ in 0..n {
            one_by_one.record(value);
        }
        prop_assert_eq!(bulk, one_by_one);
    }
}

/// A populated two-tenant snapshot exercising every event kind, with a
/// label value that needs every escape rule.
fn exercised_snapshot() -> bfree_obs::TelemetrySnapshot {
    let names = ["lstm-timit".to_string(), "bert \"v2\"\\\nprod".to_string()];
    let mut acc = LiveAccumulator::new(2, MIN_NS, MAX_NS, 20_000_000).unwrap();
    let events = [
        (LiveMetric::Latency, 0u32, 5_000_000u64, 1u64),
        (LiveMetric::Latency, 0, 45_000_000, 2),
        (LiveMetric::Energy, 0, 120_000, 1),
        (LiveMetric::Latency, 1, 1_500_000, 3),
        (LiveMetric::Energy, 1, 9_000_000, 3),
        (LiveMetric::Rejected, 0, 0, 4), // QueueFull
        (LiveMetric::Rejected, 1, 4, 5), // Shed
        (LiveMetric::Retry, 0, 1, 6),
        (LiveMetric::QueueDepth, 0, 17, 0),
        (LiveMetric::Integrity, 0, 1, 7),
    ];
    for (metric, tenant, value, id) in events {
        acc.observe(LiveEvent {
            metric,
            tenant,
            value,
            time_ns: 1_000,
            id,
        });
    }
    acc.snapshot(3, 250_000_000, 9, 0.42, 0, &names)
}

/// Every metric family the schema promises appears in the exposition,
/// exactly one TYPE line each, counters `_total`-suffixed, histograms
/// with a closing `+Inf` bucket, and label values escaped.
#[test]
fn openmetrics_exposition_is_exhaustive() {
    let snapshot = exercised_snapshot();
    let text = snapshot.to_openmetrics();

    let families = [
        "bfree_live_snapshot_seq",
        "bfree_live_up_to_ns",
        "bfree_live_completed_total",
        "bfree_live_rejected_total",
        "bfree_live_shed_total",
        "bfree_live_slo_good_total",
        "bfree_live_latency_ns",
        "bfree_live_energy_pj",
        "bfree_live_latency_quantile_ns",
        "bfree_live_retries_total",
        "bfree_live_integrity_events_total",
        "bfree_live_dropped_events_total",
        "bfree_live_queue_depth",
    ];
    for family in families {
        let type_lines = text
            .lines()
            .filter(|l| l.starts_with(&format!("# TYPE {family} ")))
            .count();
        assert_eq!(
            type_lines, 1,
            "family {family} must have exactly one TYPE line"
        );
        assert!(
            text.lines()
                .any(|l| l.starts_with(family) && !l.starts_with('#')),
            "family {family} has no samples"
        );
    }

    // The exotic tenant name is escaped per the exposition rules:
    // backslash, quote, and newline all become two-character sequences.
    assert!(text.contains(r#"tenant="bert \"v2\"\\\nprod""#));
    assert!(!text.contains('\u{0}'));
    for line in text.lines() {
        assert!(!line.is_empty(), "exposition has a blank line");
    }

    // Histograms close with +Inf and agree with their _count.
    for family in ["bfree_live_latency_ns", "bfree_live_energy_pj"] {
        for tenant in &snapshot.tenants {
            let histo = if family == "bfree_live_latency_ns" {
                &tenant.latency
            } else {
                &tenant.energy
            };
            let label = format!("{family}_count{{tenant=");
            assert!(text.contains(&label), "{family} is missing _count");
            assert!(
                text.contains(&format!("le=\"+Inf\"}} {}", histo.count())),
                "{family} +Inf bucket must equal the count"
            );
        }
    }

    // The worst-latency exemplar rides on a latency bucket.
    assert!(
        text.contains("# {trace_id=\"req-2\"}"),
        "worst-latency exemplar (request 2) missing:\n{text}"
    );

    // Counter families never emit a non-suffixed duplicate.
    assert!(!text.lines().any(|l| l.starts_with("bfree_live_completed ")));

    // Scalar content sanity.
    assert!(text.contains("bfree_live_snapshot_seq 3"));
    assert!(text.contains("bfree_live_up_to_ns 250000000"));
    assert!(text.contains("bfree_live_retries_total 1"));
    assert!(text.contains("bfree_live_integrity_events_total 1"));
    assert!(text.contains("bfree_live_queue_depth 9"));
    assert!(text.contains("bfree_live_queue_depth_max 17"));
}

/// The SLO sweep's snapshot sequences are bit-identical at any jobs
/// setting: the fan-out is over independent seeded virtual-clock runs,
/// so parallelism must never leak into the rows.
#[test]
fn slo_snapshots_are_jobs_invariant() {
    let saved = bfree::par::max_jobs();
    let loads = vec![0.5, 2.0];
    bfree::par::set_max_jobs(1);
    let serial = exp::slo::run_with_loads(loads.clone()).unwrap();
    bfree::par::set_max_jobs(8);
    let parallel = exp::slo::run_with_loads(loads).unwrap();
    bfree::par::set_max_jobs(saved);

    let a = exp::slo::csv_rows(&serial).unwrap();
    let b = exp::slo::csv_rows(&parallel).unwrap();
    assert_eq!(a, b, "slo rows must not depend on the worker pool size");
    assert!(!a.is_empty());
    for (ra, rb) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(ra.snapshot, rb.snapshot);
    }
}
